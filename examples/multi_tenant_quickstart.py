"""Multi-tenant quickstart: two tenants, one durable server.

This example drives the multi-tenant serving stack (``repro.serving``
+ ``repro.storage``) end to end over a SQLite backend:

1. open a :class:`~repro.storage.SQLiteBackend` and a
   :class:`~repro.serving.TenantManager` with a default-tenant config,
2. create a second tenant over HTTP (``POST /tenants``) with its own
   mechanism and privacy budget,
3. interleave ingest and query traffic across both tenants — every
   ingest batch is WAL-appended before it is applied, and receipts
   carry the durable ``wal_seq``,
4. round-trip the admin surface (``GET /tenants``,
   ``GET /tenants/<name>``, ``/healthz`` storage section),
5. snapshot both tenants, stop the server, and recover everything
   from the SQLite file alone into a fresh manager — the recovered
   answers must be bitwise identical to the live ones.

Run with:  python examples/multi_tenant_quickstart.py

It doubles as the CI multi-tenant serving smoke: any drift between
live and recovered answers, or a broken admin round trip, raises.
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro import WorkloadGenerator, make_dataset
from repro.serving import TenantManager, build_server, query_to_wire
from repro.storage import open_backend


def http_json(port: int, path: str, payload: dict | None = None,
              method: str | None = None) -> dict:
    """One JSON request against the in-process server."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                     data=data, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        db = Path(scratch) / "tenants.db"
        run(db)


def run(db: Path) -> None:
    # ------------------------------------------------------------------
    # 1. A durable multi-tenant server over SQLite.
    # ------------------------------------------------------------------
    backend = open_backend("sqlite", db)
    manager = TenantManager(backend, default_config={
        "mechanism": "HDG", "epsilon": 1.0, "seed": 0, "domain_size": 16})
    server = build_server(tenant_manager=manager, port=0)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"multi-tenant service up on http://127.0.0.1:{port}")

    # ------------------------------------------------------------------
    # 2. A second tenant, created over the admin surface.
    # ------------------------------------------------------------------
    created = http_json(port, "/tenants", {
        "name": "acme",
        "config": {"mechanism": "TDG", "epsilon": 2.0, "seed": 7,
                   "domain_size": 16}})
    print(f"created tenant: {created}")

    # ------------------------------------------------------------------
    # 3. Interleaved ingest and query traffic across both tenants.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    dataset = make_dataset("normal", n_users=4_000, n_attributes=2,
                           domain_size=16, rng=rng)
    generator = WorkloadGenerator(2, 16, rng=np.random.default_rng(1))
    wire = [query_to_wire(query)
            for query in generator.random_workload(8, 2, 0.5)]

    for index in range(4):
        rows = dataset.values[index * 1_000:(index + 1) * 1_000].tolist()
        tenant = "default" if index % 2 == 0 else "acme"
        receipt = http_json(port, "/ingest",
                            {"tenant": tenant, "rows": rows})
        print(f"ingested batch {index} into {tenant!r}: "
              f"wal_seq={receipt['wal_seq']} "
              f"total={receipt['total_reports']}")

    live = {}
    for tenant in ("default", "acme"):
        http_json(port, "/refinalize", {"tenant": tenant})
        live[tenant] = http_json(port, "/query", {
            "tenant": tenant, "queries": wire})["answers"]
        print(f"{tenant!r} answered {len(live[tenant])} queries; "
              f"first: {round(live[tenant][0], 4)}")

    # ------------------------------------------------------------------
    # 4. Admin round trip: listing, inspection, health.
    # ------------------------------------------------------------------
    listing = http_json(port, "/tenants")
    names = sorted(row["name"] for row in listing["tenants"])
    assert names == ["acme", "default"], names
    detail = http_json(port, "/tenants/acme")
    assert detail["config"]["mechanism"] == "TDG", detail
    health = http_json(port, "/healthz")
    storage = health["storage"]
    print(f"healthz storage: backend={storage['backend']} "
          f"tenants={storage['tenants']} "
          f"pending_ingest_log={storage['pending_ingest_log']}")
    assert storage["backend"] == "sqlite" and storage["tenants"] == 2

    # ------------------------------------------------------------------
    # 5. Snapshot, stop, recover from the SQLite file alone.
    # ------------------------------------------------------------------
    for tenant in ("default", "acme"):
        info = http_json(port, "/snapshot", {"tenant": tenant},
                         method="POST")
        print(f"snapshotted {tenant!r}: version {info['version']} "
              f"at wal_seq {info['wal_seq']}")
    server.shutdown()
    server.server_close()
    backend.close()

    recovered = TenantManager(open_backend("sqlite", db))
    for tenant in ("default", "acme"):
        answers = recovered.service(tenant).query_wire(wire)["answers"]
        if answers != live[tenant]:
            raise AssertionError(
                f"recovered answers for {tenant!r} drifted from live")
    print("recovered answers are bitwise identical for both tenants")
    print("done")


if __name__ == "__main__":
    main()
