"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.metrics import (RepeatedRunSummary, absolute_errors, error_histogram,
                           mean_absolute_error, mean_squared_error)


def test_absolute_errors_elementwise():
    errors = absolute_errors(np.array([0.1, 0.5]), np.array([0.2, 0.4]))
    np.testing.assert_allclose(errors, [0.1, 0.1])


def test_mae_and_mse():
    estimates = np.array([0.0, 1.0, 0.5])
    truths = np.array([0.5, 0.5, 0.5])
    assert mean_absolute_error(estimates, truths) == pytest.approx(1 / 3)
    assert mean_squared_error(estimates, truths) == pytest.approx(
        (0.25 + 0.25 + 0.0) / 3)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        mean_absolute_error(np.zeros(3), np.zeros(4))


def test_repeated_run_summary():
    summary = RepeatedRunSummary.from_values([0.1, 0.2, 0.3])
    assert summary.mean == pytest.approx(0.2)
    assert summary.n_runs == 3
    assert summary.std == pytest.approx(np.std([0.1, 0.2, 0.3]))
    with pytest.raises(ValueError):
        RepeatedRunSummary.from_values([])


def test_error_histogram_counts_all_queries():
    errors = np.array([0.01, 0.02, 0.5, 0.03])
    counts, edges = error_histogram(errors, n_bins=5)
    assert counts.sum() == 4
    assert len(edges) == 6
