"""Post-processing: non-negativity, cross-grid consistency, constrained inference."""

from .consistency import (GridView, enforce_attribute_consistency,
                          enforce_attribute_consistency_loop)
from .constrained_inference import (constrained_inference,
                                    constrained_inference_2d,
                                    mean_consistency_pass,
                                    weighted_average_pass)
from .norm_sub import clip_to_zero, norm_sub

__all__ = [
    "GridView",
    "clip_to_zero",
    "constrained_inference",
    "constrained_inference_2d",
    "enforce_attribute_consistency",
    "enforce_attribute_consistency_loop",
    "mean_consistency_pass",
    "norm_sub",
    "weighted_average_pass",
]
