"""Synthetic dataset generators used in the paper's evaluation.

The paper evaluates on two synthetic families: records drawn from a
multivariate Normal and from a multivariate Laplace distribution, both with
zero mean, unit standard deviation and pairwise covariance 0.8 (Figure 28
additionally sweeps the covariance from 0 to 1).  Continuous draws are
discretised into the common ordinal domain ``[c]`` by equal-width binning
over a clipped range, mirroring the standard preprocessing for this family
of experiments.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset


def _covariance_matrix(n_attributes: int, covariance: float) -> np.ndarray:
    """Equicorrelation covariance matrix with unit variances."""
    if not 0.0 <= covariance <= 1.0:
        raise ValueError(f"covariance must be in [0, 1], got {covariance}")
    matrix = np.full((n_attributes, n_attributes), covariance)
    np.fill_diagonal(matrix, 1.0)
    return matrix


def discretize(continuous: np.ndarray, domain_size: int,
               clip_sigma: float = 3.0) -> np.ndarray:
    """Equal-width binning of continuous values into ``[0, domain_size)``.

    Values are clipped to ``[-clip_sigma, clip_sigma]`` (they are generated
    with unit standard deviation) before binning so a handful of extreme
    draws cannot stretch the grid.
    """
    if domain_size < 2:
        raise ValueError("domain_size must be >= 2")
    clipped = np.clip(continuous, -clip_sigma, clip_sigma)
    unit = (clipped + clip_sigma) / (2.0 * clip_sigma)
    binned = np.floor(unit * domain_size).astype(np.int64)
    return np.clip(binned, 0, domain_size - 1)


def generate_normal(n_users: int, n_attributes: int, domain_size: int,
                    covariance: float = 0.8,
                    rng: np.random.Generator | None = None) -> Dataset:
    """Multivariate Normal dataset (mean 0, std 1, pairwise covariance)."""
    rng = rng if rng is not None else np.random.default_rng()
    cov = _covariance_matrix(n_attributes, covariance)
    # "eigh" handles the singular covariance = 1.0 case (all attributes equal).
    draws = rng.multivariate_normal(np.zeros(n_attributes), cov, size=n_users,
                                    method="eigh")
    return Dataset(discretize(draws, domain_size), domain_size,
                   name=f"normal_cov{covariance:g}")


def generate_laplace(n_users: int, n_attributes: int, domain_size: int,
                     covariance: float = 0.8,
                     rng: np.random.Generator | None = None) -> Dataset:
    """Multivariate Laplace dataset (mean 0, std 1, pairwise covariance).

    Generated with the Gaussian scale-mixture representation: a correlated
    Gaussian vector multiplied by an independent ``sqrt(Exponential(1))``
    radius per record yields a multivariate Laplace with the same
    correlation structure and heavier (spikier) marginals, matching the
    paper's description of Laplace as a spike distribution.
    """
    rng = rng if rng is not None else np.random.default_rng()
    cov = _covariance_matrix(n_attributes, covariance)
    gaussian = rng.multivariate_normal(np.zeros(n_attributes), cov, size=n_users,
                                       method="eigh")
    radius = np.sqrt(rng.exponential(scale=1.0, size=(n_users, 1)))
    draws = gaussian * radius
    return Dataset(discretize(draws, domain_size), domain_size,
                   name=f"laplace_cov{covariance:g}")


def generate_uniform(n_users: int, n_attributes: int, domain_size: int,
                     rng: np.random.Generator | None = None) -> Dataset:
    """Independent uniform dataset (useful as a sanity-check workload)."""
    rng = rng if rng is not None else np.random.default_rng()
    values = rng.integers(0, domain_size, size=(n_users, n_attributes))
    return Dataset(values, domain_size, name="uniform")
