"""Deadlines and bounded, seeded-jitter retry for storage calls.

Two small primitives bound every storage operation the serving tier
performs:

:class:`Deadline`
    A wall-clock budget carried through a call chain.  Created once
    at the operation's entry point (``Deadline.after(0.5)``) and
    checked cooperatively (``deadline.check("wal append")``) wherever
    waiting could happen — between retry attempts, before an expensive
    snapshot serialization.  ``None`` means "no deadline" everywhere a
    deadline is accepted.
:class:`RetryPolicy`
    Exponential backoff with *seeded* jitter and a bounded attempt
    count.  Seeding matters for the same reason everything else in
    this repository is seeded: a retry schedule that jitters from a
    seeded generator reproduces bit-for-bit, so chaos tests and
    benchmarks measuring retry behaviour are deterministic.

:meth:`RetryPolicy.call` composes both with the failure taxonomy:
transient errors (see :func:`repro.resilience.classify_error`) are
retried until attempts or the deadline run out; permanent errors
surface immediately.  The last transient error is re-raised unchanged
when retries are exhausted, so callers match on the original
exception type.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .errors import DeadlineExceededError, classify_error

__all__ = ["Deadline", "RetryPolicy"]


class Deadline:
    """A monotonic-clock budget for one logical operation.

    Parameters
    ----------
    expires_at:
        Absolute expiry on the ``clock`` timeline.
    clock:
        Time source (``time.monotonic``); injectable for tests.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, expires_at: float, clock=time.monotonic):
        self.expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        if seconds < 0:
            raise ValueError("deadline must be >= 0 seconds away")
        return cls(clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self._clock() >= self.expires_at

    def check(self, operation: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline exceeded before {operation} could complete")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    Attempt ``k`` (0-based) sleeps ``min(base_delay * multiplier**k,
    max_delay)`` scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` out of a seeded generator.  With
    ``attempts=1`` the policy never retries (the no-retry baseline the
    benchmark's overhead gate compares against).

    ``sleep`` is injectable so tests measure retry *schedules* without
    actually waiting.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None
    sleep: object = time.sleep
    #: Transient errors retried + total sleep, for health reporting.
    retries_performed: int = field(default=0, init=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that performs the call once and never retries."""
        return cls(attempts=1)

    def delay_for(self, attempt: int) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def call(self, fn, *, classify=classify_error, deadline=None,
             operation: str = "storage operation", on_retry=None):
        """Run ``fn()`` with transient-error retries under ``deadline``.

        ``classify`` maps a raised exception to ``"transient"`` or
        ``"permanent"``; permanent errors (and the final exhausted
        transient error) re-raise unchanged.  ``on_retry(error,
        attempt, delay)`` is called before each backoff sleep —
        the circuit breaker and tests hook it.
        """
        for attempt in range(self.attempts):
            if deadline is not None:
                deadline.check(operation)
            try:
                return fn()
            except Exception as error:
                last_attempt = attempt == self.attempts - 1
                if last_attempt or classify(error) != "transient":
                    raise
                delay = self.delay_for(attempt)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        raise DeadlineExceededError(
                            f"deadline exceeded retrying {operation}"
                        ) from error
                    delay = min(delay, remaining)
                if on_retry is not None:
                    on_retry(error, attempt, delay)
                self.retries_performed += 1
                self.sleep(delay)
        raise AssertionError("unreachable: the loop returns or raises")

    def describe(self) -> dict:
        """Health-document summary of the policy."""
        return {
            "attempts": self.attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "retries_performed": self.retries_performed,
        }
