"""Estimation of a λ-D range-query answer from its 2-D sub-answers.

Algorithm 2 of the paper: a λ-D query ``q`` (λ > 2) is split into its
``C(λ,2)`` associated 2-D queries; their (already estimated) answers are
then combined into an estimate of ``q``'s answer.  The combination works
over the ``2^λ`` "orthant" queries ``Q(q)`` obtained by either keeping or
complementing each attribute's interval: every 2-D answer is the sum of
the ``2^(λ-2)`` orthants in which both of its attributes keep their
interval, which gives one Weighted Update constraint per pair.  The final
answer is the orthant in which every attribute keeps its interval.

The alternative combiner from Appendix A.8 (Maximum Entropy, solved by
iterative proportional fitting) is exposed through ``method="max_entropy"``
for the ablation benchmark.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..estimation import Constraint, max_entropy_estimate, weighted_update
from ..queries import RangeQuery

#: Signature of the callable that answers an associated 2-D sub-query.
PairAnswerFn = Callable[[RangeQuery], float]


def orthant_index(keep_mask: tuple[bool, ...]) -> int:
    """Index of an orthant in the 2^λ vector (bit i set = attribute i kept)."""
    index = 0
    for bit, keep in enumerate(keep_mask):
        if keep:
            index |= 1 << bit
    return index


def pair_constraint_indices(dimension: int, pos_a: int, pos_b: int) -> np.ndarray:
    """Orthant indices contributing to the 2-D answer of attributes at
    positions ``pos_a`` and ``pos_b`` (both intervals kept, others free)."""
    indices = []
    for mask in range(1 << dimension):
        if (mask >> pos_a) & 1 and (mask >> pos_b) & 1:
            indices.append(mask)
    return np.asarray(indices, dtype=np.int64)


def build_constraints(query: RangeQuery,
                      pair_answers: dict[tuple[int, int], float]) -> list[Constraint]:
    """Turn the 2-D sub-answers into Weighted Update constraints.

    ``pair_answers`` maps attribute-index pairs (as they appear in the
    query, sorted) to the estimated 2-D answers.  Targets are clipped at 0
    — negative 2-D answers would break the multiplicative update, and the
    mechanisms run Norm-Sub before reaching this point anyway.
    """
    attributes = query.attributes
    position = {attribute: pos for pos, attribute in enumerate(attributes)}
    constraints = []
    for (attr_a, attr_b), answer in pair_answers.items():
        indices = pair_constraint_indices(query.dimension,
                                          position[attr_a], position[attr_b])
        constraints.append(Constraint(indices=indices,
                                      target=max(0.0, float(answer))))
    return constraints


def estimate_lambda_query(query: RangeQuery, answer_pair: PairAnswerFn,
                          method: str = "weighted_update",
                          threshold: float = 1e-7,
                          max_iterations: int = 100,
                          track_history: bool = False):
    """Estimate a λ-D query's answer from a 2-D answering primitive.

    Parameters
    ----------
    query:
        The λ-D range query (λ >= 2).  For λ == 2 the 2-D primitive is
        called directly.
    answer_pair:
        Callable that returns the mechanism's estimate for any 2-D
        sub-query of ``query``.
    method:
        ``"weighted_update"`` (Algorithm 2, default) or ``"max_entropy"``
        (Appendix A.8).
    threshold, max_iterations:
        Convergence controls for the Weighted Update iteration.
    track_history:
        If True, also return the per-sweep change history (Figure 18).

    Returns
    -------
    float or (float, list[float])
        The estimated answer, plus the change history when requested.
    """
    if query.dimension < 2:
        raise ValueError("estimate_lambda_query requires a query with λ >= 2")
    if query.dimension == 2:
        answer = float(answer_pair(query))
        return (answer, []) if track_history else answer

    pair_answers: dict[tuple[int, int], float] = {}
    for sub_query in query.pairwise_subqueries():
        pair = sub_query.attributes
        pair_answers[pair] = float(answer_pair(sub_query))

    constraints = build_constraints(query, pair_answers)
    size = 1 << query.dimension
    target_index = size - 1  # every attribute keeps its interval
    # The orthants of Q(q) partition the population, so their answers sum to
    # 1; adding this normalisation constraint keeps the multiplicative update
    # on the probability simplex (matching the Maximum-Entropy formulation's
    # implicit normalisation).
    constraints.append(Constraint(indices=np.arange(size), target=1.0))

    if method == "weighted_update":
        result = weighted_update(size, constraints, threshold=threshold,
                                 max_iterations=max_iterations,
                                 track_history=track_history)
        answer = float(result.estimate[target_index])
        history = result.change_history
    elif method == "max_entropy":
        estimate = max_entropy_estimate(size, constraints,
                                        max_iterations=max_iterations * 5)
        answer = float(estimate[target_index])
        history = []
    else:
        raise ValueError(
            f"method must be 'weighted_update' or 'max_entropy', got {method!r}")

    return (answer, history) if track_history else answer
