"""Shared scale settings and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
paper's own settings (n = 10^6 users, 200 queries, 10 repetitions, four
datasets, ten ε values) take hours; by default the harness runs a reduced
but shape-preserving configuration and scales up when the environment
variable ``REPRO_BENCH_SCALE`` is set:

* ``quick``  (default) — minutes on a laptop; per-figure subsets.
* ``paper``  — the paper's settings; expect hours.

Results are printed to stdout (run pytest with ``-s`` to see them live)
and also written to ``benchmarks/results/<name>.txt`` so the series survive
the pytest capture.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Machine-readable trajectory of the fit/sweep performance benchmarks;
#: every run appends one record so speedups can be tracked across PRs.
BENCH_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_fit.json"


@dataclass(frozen=True)
class BenchScale:
    """Knobs shared by every figure driver at benchmark time."""

    n_users: int
    n_queries: int
    n_repeats: int
    datasets: tuple[str, ...]
    epsilons: tuple[float, ...]
    volumes: tuple[float, ...]
    domain_size: int
    n_attributes: int


_QUICK = BenchScale(
    n_users=40_000,
    n_queries=50,
    n_repeats=1,
    datasets=("ipums", "normal"),
    epsilons=(0.2, 0.5, 1.0, 2.0),
    volumes=(0.1, 0.3, 0.5, 0.7, 0.9),
    domain_size=64,
    n_attributes=6,
)

_PAPER = BenchScale(
    n_users=1_000_000,
    n_queries=200,
    n_repeats=10,
    datasets=("ipums", "bfive", "normal", "laplace"),
    epsilons=(0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    volumes=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    domain_size=64,
    n_attributes=6,
)


def current_scale() -> BenchScale:
    """Scale selected through the REPRO_BENCH_SCALE environment variable."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name == "paper":
        return _PAPER
    return _QUICK


def report(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def append_trajectory(section: str, entry: dict) -> None:
    """Record one benchmark run in the ``BENCH_fit.json`` trajectory.

    The artifact keeps the latest record per section plus the full
    append-only history; a corrupt or missing file is recreated rather
    than failing the benchmark.
    """
    data: dict = {}
    if BENCH_TRAJECTORY.exists():
        try:
            data = json.loads(BENCH_TRAJECTORY.read_text())
        except ValueError:
            data = {}
    record = dict(entry)
    record["section"] = section
    record["unix_time"] = round(time.time(), 3)
    data.setdefault("history", []).append(record)
    data.setdefault("latest", {})[section] = record
    BENCH_TRAJECTORY.write_text(json.dumps(data, indent=2) + "\n")
