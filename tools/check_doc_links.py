#!/usr/bin/env python3
"""Offline link checker for the markdown documentation.

Three checks run over the given markdown files (or all ``*.md`` under
given directories), all working offline so CI needs no network:

1. **Relative links/images** — every ``[text](target)`` target that is
   not an external URL must resolve to an existing file or directory.
2. **Anchor fragments** — in-page ``#anchor`` links and the ``#anchor``
   part of cross-file links must match a heading of the target markdown
   file (GitHub slug rules: lowercase, punctuation stripped, spaces to
   hyphens, ``-N`` suffixes for duplicates).
3. **Code-path references** — inline code spans that look like
   repository paths (`` `src/...` ``, `` `tests/...` ``,
   `` `benchmarks/...` ``, `` `docs/...` ``, `` `examples/...` ``,
   `` `tools/...` ``) must exist relative to the repository root, so
   prose never points at moved or deleted code.

Fenced code blocks are ignored throughout.

Usage: python tools/check_doc_links.py README.md docs
Exit status is non-zero when any link is broken.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — reference-style links
#: are not used in this repository.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings (the only heading style used in this repository).
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.+?)\s*$")

#: Inline code spans; candidates for the code-path check.
CODE_SPAN_PATTERN = re.compile(r"`([^`\n]+)`")

#: A code span counts as a repository path when it starts with one of
#: the top-level code directories and contains only path characters
#: (globs, placeholders and ellipses fall through).
CODE_PATH_PATTERN = re.compile(
    r"^(?:src|tests|benchmarks|docs|examples|tools)/[\w\-./]+$")

#: The repository root the code-path references are resolved against.
REPO_ROOT = Path(__file__).resolve().parent.parent


def collect_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def strip_fenced_blocks(text: str) -> str:
    """Drop ``` fenced code blocks (their content is not markdown)."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(line)
    return "\n".join(lines)


def github_slug(heading: str) -> str:
    """The GitHub anchor slug of one heading's text."""
    # Inline markup contributes its text only.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    return text.strip().replace(" ", "-")


def heading_anchors(text: str) -> set[str]:
    """All anchor slugs a markdown document exposes (with -N duplicates)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for line in strip_fenced_blocks(text).splitlines():
        match = HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


class _AnchorCache:
    """Per-file memo of heading anchors (targets are parsed once)."""

    def __init__(self) -> None:
        self._anchors: dict[Path, set[str]] = {}

    def of(self, path: Path) -> set[str]:
        path = path.resolve()
        if path not in self._anchors:
            self._anchors[path] = heading_anchors(
                path.read_text(encoding="utf-8"))
        return self._anchors[path]


def check_file(path: Path, anchors: _AnchorCache) -> list[str]:
    errors = []
    body = strip_fenced_blocks(path.read_text(encoding="utf-8"))

    for target in LINK_PATTERN.findall(body):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path.resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if fragment and resolved.is_file() and resolved.suffix == ".md":
            if fragment not in anchors.of(resolved):
                errors.append(f"{path}: broken anchor -> {target} "
                              f"(no heading slugs to '#{fragment}' in "
                              f"{resolved.name})")

    for span in CODE_SPAN_PATTERN.findall(body):
        if CODE_PATH_PATTERN.match(span) and "..." not in span:
            if not (REPO_ROOT / span).exists():
                errors.append(f"{path}: missing code path -> {span}")
    return errors


def main(arguments: list[str]) -> int:
    files = collect_files(arguments or ["README.md", "docs"])
    missing = [str(f) for f in files if not f.exists()]
    errors = [f"no such file: {name}" for name in missing]
    anchors = _AnchorCache()
    for path in files:
        if path.exists():
            errors.extend(check_file(path, anchors))
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(files) - len(missing)
    print(f"checked {checked} markdown file(s): "
          f"{'OK' if not errors else f'{len(errors)} problem(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
