"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets import Dataset


@pytest.fixture
def dataset():
    values = np.array([[0, 1, 2],
                       [3, 3, 0],
                       [1, 2, 3],
                       [0, 0, 0]])
    return Dataset(values, domain_size=4, name="toy")


def test_basic_properties(dataset):
    assert dataset.n_users == 4
    assert dataset.n_attributes == 3
    assert dataset.domain_size == 4
    assert dataset.attribute_names == ["a1", "a2", "a3"]


def test_column_and_columns(dataset):
    np.testing.assert_array_equal(dataset.column(1), [1, 3, 2, 0])
    np.testing.assert_array_equal(dataset.columns((0, 2)),
                                  [[0, 2], [3, 0], [1, 3], [0, 0]])


def test_marginal_sums_to_one(dataset):
    marginal = dataset.marginal(0)
    assert marginal.sum() == pytest.approx(1.0)
    assert marginal[0] == pytest.approx(0.5)


def test_joint_marginal_consistent_with_marginals(dataset):
    joint = dataset.joint_marginal(0, 1)
    assert joint.shape == (4, 4)
    assert joint.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(joint.sum(axis=1), dataset.marginal(0))
    np.testing.assert_allclose(joint.sum(axis=0), dataset.marginal(1))


def test_subset_and_sample(dataset, rng):
    subset = dataset.subset(np.array([0, 2]))
    assert subset.n_users == 2
    sample = dataset.sample_users(10, rng)
    assert sample.n_users == 10
    assert sample.domain_size == dataset.domain_size


def test_restrict_attributes(dataset):
    restricted = dataset.restrict_attributes(2)
    assert restricted.n_attributes == 2
    assert restricted.attribute_names == ["a1", "a2"]
    with pytest.raises(ValueError):
        dataset.restrict_attributes(5)


def test_rescale_domain_preserves_shape(rng):
    values = rng.integers(0, 64, size=(1000, 2))
    dataset = Dataset(values, 64)
    rescaled = dataset.rescale_domain(16)
    assert rescaled.domain_size == 16
    assert rescaled.values.max() < 16
    # Proportional rescaling: value v maps to floor(v / 4).
    np.testing.assert_array_equal(rescaled.values, values // 4)


def test_rescale_domain_up(rng):
    values = rng.integers(0, 8, size=(500, 2))
    dataset = Dataset(values, 8)
    upscaled = dataset.rescale_domain(32)
    assert upscaled.domain_size == 32
    np.testing.assert_array_equal(upscaled.values, values * 4)


def test_validation_errors():
    with pytest.raises(ValueError):
        Dataset(np.array([1, 2, 3]), 4)          # not 2-D
    with pytest.raises(ValueError):
        Dataset(np.zeros((0, 2), dtype=int), 4)  # empty
    with pytest.raises(ValueError):
        Dataset(np.array([[5]]), 4)              # out of domain
    with pytest.raises(ValueError):
        Dataset(np.array([[0]]), 1)              # domain too small
    with pytest.raises(ValueError):
        Dataset(np.array([[0, 1]]), 4, attribute_names=["only_one"])


def test_attribute_index_bounds(dataset):
    with pytest.raises(ValueError):
        dataset.column(3)
    with pytest.raises(ValueError):
        dataset.joint_marginal(0, 7)
