"""Dataset container used throughout the library.

A :class:`Dataset` is an ``n x d`` integer matrix of ordinal attribute
values, each attribute sharing the same domain ``[0, c)`` (the paper
assumes a common power-of-two domain; real attributes are rescaled to it
during loading).  The container carries the metadata the mechanisms need
(domain size, attribute names) and offers the slicing helpers they use
(per-attribute columns, attribute pairs, user sub-sampling and grouping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Dataset:
    """An in-memory collection of user records over ordinal attributes.

    Parameters
    ----------
    values:
        Integer array of shape ``(n_users, n_attributes)`` with entries in
        ``[0, domain_size)``.
    domain_size:
        Common per-attribute domain size ``c``.
    name:
        Human-readable dataset name (used in experiment reports).
    attribute_names:
        Optional list of attribute labels; defaults to ``a1..ad``.
    """

    values: np.ndarray
    domain_size: int
    name: str = "dataset"
    attribute_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.values.ndim != 2:
            raise ValueError("values must be a 2-D (n_users, n_attributes) array")
        if self.values.size == 0:
            raise ValueError("dataset must contain at least one record")
        if self.domain_size < 2:
            raise ValueError("domain_size must be >= 2")
        if self.values.min() < 0 or self.values.max() >= self.domain_size:
            raise ValueError(
                "all attribute values must lie in [0, domain_size); got "
                f"[{self.values.min()}, {self.values.max()}] with c={self.domain_size}"
            )
        if not self.attribute_names:
            self.attribute_names = [f"a{i + 1}" for i in range(self.n_attributes)]
        if len(self.attribute_names) != self.n_attributes:
            raise ValueError("attribute_names length must match number of columns")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of user records ``n``."""
        return self.values.shape[0]

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``d``."""
        return self.values.shape[1]

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def column(self, attribute: int) -> np.ndarray:
        """Return the value vector of a single attribute."""
        self._check_attribute(attribute)
        return self.values[:, attribute]

    def columns(self, attributes: tuple[int, ...] | list[int]) -> np.ndarray:
        """Return the sub-matrix restricted to the given attributes."""
        for attribute in attributes:
            self._check_attribute(attribute)
        return self.values[:, list(attributes)]

    def subset(self, user_indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to the given user rows."""
        return Dataset(self.values[user_indices], self.domain_size,
                       name=self.name, attribute_names=list(self.attribute_names))

    def sample_users(self, n: int, rng: np.random.Generator) -> "Dataset":
        """Sample ``n`` users with replacement if needed (to scale n up/down)."""
        if n <= 0:
            raise ValueError("sample size must be positive")
        replace = n > self.n_users
        idx = rng.choice(self.n_users, size=n, replace=replace)
        return self.subset(idx)

    def restrict_attributes(self, n_attributes: int) -> "Dataset":
        """Keep only the first ``n_attributes`` columns (paper's d sweep)."""
        if not 1 <= n_attributes <= self.n_attributes:
            raise ValueError(
                f"n_attributes must be in [1, {self.n_attributes}], got {n_attributes}")
        return Dataset(self.values[:, :n_attributes], self.domain_size,
                       name=self.name,
                       attribute_names=self.attribute_names[:n_attributes])

    def rescale_domain(self, new_domain_size: int) -> "Dataset":
        """Re-bucket all attributes into a new common domain size.

        Used by the domain-size sweep (Figure 3): values are mapped
        proportionally so the underlying distribution shape is preserved.
        """
        if new_domain_size < 2:
            raise ValueError("new_domain_size must be >= 2")
        scaled = (self.values.astype(float) * new_domain_size / self.domain_size)
        scaled = np.clip(scaled.astype(np.int64), 0, new_domain_size - 1)
        return Dataset(scaled, new_domain_size, name=self.name,
                       attribute_names=list(self.attribute_names))

    def _check_attribute(self, attribute: int) -> None:
        if not 0 <= attribute < self.n_attributes:
            raise ValueError(
                f"attribute index {attribute} out of range [0, {self.n_attributes})")

    # ------------------------------------------------------------------
    # Serialization (used by the mechanism snapshot payloads)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {"values": self.values.tolist(),
                "domain_size": self.domain_size,
                "name": self.name,
                "attribute_names": list(self.attribute_names)}

    @classmethod
    def from_dict(cls, state: dict) -> "Dataset":
        """Rebuild a dataset serialized with :meth:`to_dict`."""
        return cls(np.asarray(state["values"], dtype=np.int64),
                   int(state["domain_size"]), name=state.get("name", "dataset"),
                   attribute_names=list(state.get("attribute_names") or []))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def marginal(self, attribute: int) -> np.ndarray:
        """Exact 1-D marginal distribution (frequencies summing to 1)."""
        return self.marginal_table((attribute,))

    def joint_marginal(self, attr_a: int, attr_b: int) -> np.ndarray:
        """Exact 2-D joint distribution of an attribute pair (c x c)."""
        return self.marginal_table((attr_a, attr_b))

    def marginal_table(self, attributes: tuple[int, ...] | list[int]) -> np.ndarray:
        """Exact joint distribution over any attribute tuple.

        Returns a ``(c,) * len(attributes)`` table of frequencies summing
        to 1 — the ground truth of a
        :class:`~repro.queries.MarginalQuery` (and the table a
        :class:`~repro.queries.TopKQuery` is scored against).
        """
        attributes = tuple(attributes)
        if not attributes:
            raise ValueError("marginal_table needs at least one attribute")
        for attribute in attributes:
            self._check_attribute(attribute)
        c = self.domain_size
        flat = np.zeros(self.n_users, dtype=np.int64)
        for attribute in attributes:
            flat = flat * c + self.values[:, attribute]
        counts = np.bincount(flat, minlength=c ** len(attributes))
        return counts.reshape((c,) * len(attributes)) / self.n_users

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Dataset(name={self.name!r}, n_users={self.n_users}, "
                f"n_attributes={self.n_attributes}, domain_size={self.domain_size})")
