"""Cross-grid consistency enforcement (Phase 2, Section 4.2).

Each attribute ``a`` appears in several grids — its own 1-D grid (HDG
only) and the ``d - 1`` 2-D grids of pairs containing it.  Because every
grid is estimated from an independent user group, the marginal frequencies
of ``a`` implied by different grids disagree.  The consistency step
computes, for each coarse bucket ``j`` of ``a`` (the 2-D granularity
``g2`` defines the buckets), the variance-optimal weighted average of the
per-grid bucket totals and then shifts each grid's cells so its bucket
total matches the average.

The weights follow the analysis in the paper / CALM: a grid in which the
bucket total is the sum of ``|S_i|`` cells contributes weight proportional
to ``1 / |S_i|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GridView:
    """A view of one grid's cells as seen from a single attribute.

    Parameters
    ----------
    frequencies:
        The grid's cell-frequency array (1-D of length ``g1`` for a 1-D
        grid, 2-D of shape ``(g2, g2)`` for a 2-D grid).  Updated in place
        by :func:`enforce_attribute_consistency`.
    axis:
        Which axis of ``frequencies`` corresponds to the attribute being
        reconciled (ignored for 1-D grids).
    cells_per_bucket:
        How many of the attribute's own cells fall inside one consistency
        bucket.  With a common bucket count of ``g2``, a 2-D grid has 1
        cell per bucket along the attribute axis and a 1-D grid has
        ``g1 / g2`` cells per bucket.
    """

    frequencies: np.ndarray
    axis: int
    cells_per_bucket: int

    def bucket_totals(self, n_buckets: int) -> np.ndarray:
        """Sum of frequencies per consistency bucket along the attribute axis."""
        return _grouped_cells(self, n_buckets).sum(axis=(1, 2))

    def cells_contributing(self) -> int:
        """Number of cells whose frequencies sum into one bucket total (|S_i|)."""
        other = self.frequencies.size // self.frequencies.shape[self.axis]
        return self.cells_per_bucket * other

    def apply_adjustment(self, bucket_deltas: np.ndarray) -> None:
        """Distribute each bucket's total adjustment equally over its cells."""
        grouped = _grouped_cells(self, bucket_deltas.shape[0])
        per_cell = bucket_deltas / (self.cells_per_bucket * grouped.shape[2])
        grouped += per_cell[:, None, None]
        # ``grouped`` shares memory with the grid, so += updates it.


def _grouped_cells(view: GridView, n_buckets: int) -> np.ndarray:
    """The view's cells as a writable ``(buckets, cells_per_bucket, other)``
    tensor sharing memory with the grid's frequency array."""
    moved = np.moveaxis(view.frequencies, view.axis, 0)
    attr_cells = moved.shape[0]
    if attr_cells != n_buckets * view.cells_per_bucket:
        raise ValueError(
            f"grid has {attr_cells} cells along the attribute axis, which is "
            f"not {n_buckets} buckets x {view.cells_per_bucket} cells")
    return moved.reshape(n_buckets, view.cells_per_bucket, -1)


def enforce_attribute_consistency(views: list[GridView], n_buckets: int) -> np.ndarray:
    """Make all grids agree on one attribute's bucket totals.

    Views with identical grouped shapes — the ``d - 1`` 2-D grids of an
    attribute all view as ``(g2, 1, g2)`` — are stacked into one tensor,
    so one consistency round costs a handful of whole-stack reductions
    instead of one reduction and one adjustment pass per view (the
    original per-view path is kept as
    :func:`enforce_attribute_consistency_loop`).

    Returns the consensus bucket totals (mainly for testing/inspection);
    the grids referenced by ``views`` are modified in place.
    """
    if not views:
        raise ValueError("need at least one grid view")
    grouped = [_grouped_cells(view, n_buckets) for view in views]
    totals = np.empty((len(views), n_buckets))
    by_shape: dict[tuple[int, ...], list[int]] = {}
    for position, cells in enumerate(grouped):
        by_shape.setdefault(cells.shape, []).append(position)
    for members in by_shape.values():
        if len(members) == 1:
            totals[members[0]] = grouped[members[0]].sum(axis=(1, 2))
        else:
            stacked = np.stack([grouped[position] for position in members])
            totals[members] = stacked.sum(axis=(2, 3))
    weights = np.array([1.0 / view.cells_contributing() for view in views])
    weights = weights / weights.sum()
    consensus = weights @ totals
    # Distribute each view's bucket deltas equally over its cells; the
    # grouped tensors share memory with the grids, so += updates them.
    for view, cells, current in zip(views, grouped, totals):
        per_cell = (consensus - current) / (view.cells_per_bucket
                                            * cells.shape[2])
        cells += per_cell[:, None, None]
    return consensus


def enforce_attribute_consistency_loop(views: list[GridView],
                                       n_buckets: int) -> np.ndarray:
    """Original per-view implementation (equivalence reference)."""
    if not views:
        raise ValueError("need at least one grid view")
    totals = np.stack([view.bucket_totals(n_buckets) for view in views])
    weights = np.array([1.0 / view.cells_contributing() for view in views])
    weights = weights / weights.sum()
    consensus = weights @ totals
    for view, current in zip(views, totals):
        view.apply_adjustment(consensus - current)
    return consensus
