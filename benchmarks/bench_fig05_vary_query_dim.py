"""Figure 5: MAE vs query dimension λ.

Paper shape: MAEs of LDP approaches change with λ — they drop on real
(skewed) datasets as λ grows because true answers approach zero and the
post-processing pulls estimates toward zero; on synthetic datasets the
estimation error first grows then the same effect kicks in.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_5(benchmark):
    scale = current_scale()
    dims = (2, 3, 4, 6) if scale.n_users <= 100_000 else (2, 3, 4, 5, 6, 7, 8, 9, 10)

    def run():
        return figures.figure_5_vary_query_dimension(
            datasets=scale.datasets, query_dimensions=dims,
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            domain_size=scale.domain_size, epsilon=1.0, volume=0.5,
            n_queries=scale.n_queries, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig05_vary_query_dim",
           figures.format_figure_results(results, "Figure 5: MAE vs query dimension"))
    for dataset, sweep in results.items():
        series = sweep.series()
        assert all(value >= 0 for value in series["HDG"])
