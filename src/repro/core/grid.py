"""1-D and 2-D grids over ordinal attribute domains (Phase 1 of TDG/HDG).

A grid partitions an attribute's domain ``[c]`` (or a pair's domain
``[c] x [c]``) into equal-width cells, has each user of its group report
the cell containing their value through an ε-LDP frequency oracle, and
stores the resulting noisy cell frequencies.  Grids also implement the
range-answering primitives of Phase 3: summing fully-covered cells and
estimating partially-covered cells either under the uniformity assumption
(TDG) or from a response matrix (HDG).

Range answering runs on prefix-sum indexes (:mod:`repro.core.prefix_sum`)
that are built lazily from the current frequencies and invalidated by
every mutation through the grid API; each answer is then O(1) corner
lookups instead of a Python cell loop, and the ``answer_ranges`` batch
entry points answer whole query groups in one vectorised call.  The
original cell loops survive as ``answer_range_loop`` — they are the
ground truth the engine is property-tested against and the baseline the
throughput benchmark measures.
"""

from __future__ import annotations

import numpy as np

from ..frequency_oracles import FrequencyOracle, SupportAccumulator
from .prefix_sum import (PrefixIndex1D, PrefixIndex2D, SummedAreaTable,
                         full_cell_range)


def _check_divisible(domain_size: int, granularity: int) -> int:
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    if granularity > domain_size:
        raise ValueError(
            f"granularity {granularity} cannot exceed domain size {domain_size}")
    if domain_size % granularity != 0:
        raise ValueError(
            f"granularity {granularity} must divide the domain size {domain_size}")
    return domain_size // granularity


class Grid1D:
    """Equal-width binning of a single attribute into ``granularity`` cells.

    Parameters
    ----------
    attribute:
        Index of the attribute this grid summarises.
    domain_size:
        Attribute domain size ``c``.
    granularity:
        Number of cells ``g1``; must divide ``c``.
    """

    def __init__(self, attribute: int, domain_size: int, granularity: int):
        self.attribute = int(attribute)
        self.domain_size = int(domain_size)
        self.granularity = int(granularity)
        self.cell_width = _check_divisible(self.domain_size, self.granularity)
        self._frequencies = np.zeros(self.granularity)
        self._index: PrefixIndex1D | None = None

    # ------------------------------------------------------------------
    # Prefix-sum index
    # ------------------------------------------------------------------
    @property
    def frequencies(self) -> np.ndarray:
        """Cell frequencies (read-only view).

        Exposed read-only because answering runs on a prefix-sum index
        derived from these values; silent in-place edits would serve
        stale answers.  Use :meth:`set_frequencies` to replace them or
        :meth:`mutable_frequencies` for in-place post-processing.
        """
        view = self._frequencies.view()
        view.flags.writeable = False
        return view

    def mutable_frequencies(self) -> np.ndarray:
        """Writable handle for in-place post-processing (drops the index)."""
        self.invalidate_index()
        return self._frequencies

    def invalidate_index(self) -> None:
        """Drop the prefix-sum index (call after mutating ``frequencies``)."""
        self._index = None

    def build_index(self) -> PrefixIndex1D:
        """Prefix-sum index over the current frequencies (cached)."""
        if self._index is None:
            self._index = PrefixIndex1D(self._frequencies, self.cell_width)
        return self._index

    # ------------------------------------------------------------------
    # Cell geometry
    # ------------------------------------------------------------------
    def cell_index(self, value: int | np.ndarray) -> np.ndarray:
        """Cell index containing each attribute value."""
        return np.asarray(value, dtype=np.int64) // self.cell_width

    def cell_bounds(self, cell: int) -> tuple[int, int]:
        """Inclusive value range ``[low, high]`` covered by a cell."""
        if not 0 <= cell < self.granularity:
            raise ValueError(f"cell index {cell} out of range [0, {self.granularity})")
        low = cell * self.cell_width
        return low, low + self.cell_width - 1

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, values: np.ndarray, oracle: FrequencyOracle) -> None:
        """Collect noisy cell frequencies from the grid's user group."""
        if oracle.domain_size != self.granularity:
            raise ValueError(
                f"oracle domain {oracle.domain_size} does not match grid "
                f"granularity {self.granularity}")
        cells = self.cell_index(values)
        self._frequencies = oracle.estimate_frequencies(cells)
        self.invalidate_index()

    def accumulate(self, values: np.ndarray,
                   oracle: FrequencyOracle) -> SupportAccumulator:
        """Collect one user batch into an additive support accumulator.

        The returned accumulator can be merged with accumulators of other
        batches of this grid (from any shard) and turned into cell
        frequencies once at the end with :meth:`finalize_from`.
        """
        if oracle.domain_size != self.granularity:
            raise ValueError(
                f"oracle domain {oracle.domain_size} does not match grid "
                f"granularity {self.granularity}")
        return oracle.accumulate(self.cell_index(values))

    def finalize_from(self, accumulator: SupportAccumulator | None,
                      oracle: FrequencyOracle) -> None:
        """Set cell frequencies from merged support counts.

        An empty accumulator (``None`` or zero reports) leaves the grid
        all-zero, matching the one-shot behaviour for empty user groups.
        """
        self.invalidate_index()
        if accumulator is None or accumulator.n_reports == 0:
            self._frequencies = np.zeros(self.granularity)
            return
        self._frequencies = oracle.estimate_from_accumulator(accumulator)

    def set_frequencies(self, frequencies: np.ndarray) -> None:
        """Directly set cell frequencies (used by tests and post-processing)."""
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.shape != (self.granularity,):
            raise ValueError(
                f"expected shape ({self.granularity},), got {frequencies.shape}")
        self._frequencies = frequencies.copy()
        self.invalidate_index()

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer_range(self, low: int, high: int) -> float:
        """1-D range answer with the uniformity assumption inside cells."""
        if not 0 <= low <= high < self.domain_size:
            raise ValueError(f"invalid interval [{low}, {high}]")
        return float(self.build_index().answer(low, high))

    def answer_ranges(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorised range answers for arrays of inclusive intervals.

        Intervals are assumed valid (the mechanisms validate queries
        before batching).
        """
        return np.asarray(self.build_index().answer(lows, highs), dtype=float)

    def answer_range_loop(self, low: int, high: int) -> float:
        """Original per-cell loop (benchmark baseline and engine ground truth)."""
        if not 0 <= low <= high < self.domain_size:
            raise ValueError(f"invalid interval [{low}, {high}]")
        answer = 0.0
        first_cell = low // self.cell_width
        last_cell = high // self.cell_width
        for cell in range(first_cell, last_cell + 1):
            cell_low, cell_high = self.cell_bounds(cell)
            overlap = min(high, cell_high) - max(low, cell_low) + 1
            answer += self._frequencies[cell] * overlap / self.cell_width
        return float(answer)


class Grid2D:
    """Equal-width 2-D binning of an attribute pair into ``g2 x g2`` cells.

    Parameters
    ----------
    attributes:
        Pair ``(j, k)`` of attribute indices (order defines the row/column
        axes of the grid).
    domain_size:
        Common attribute domain size ``c``.
    granularity:
        Number of cells per axis ``g2``; must divide ``c``.
    """

    def __init__(self, attributes: tuple[int, int], domain_size: int,
                 granularity: int):
        if len(attributes) != 2 or attributes[0] == attributes[1]:
            raise ValueError("attributes must be a pair of distinct indices")
        self.attributes = (int(attributes[0]), int(attributes[1]))
        self.domain_size = int(domain_size)
        self.granularity = int(granularity)
        self.cell_width = _check_divisible(self.domain_size, self.granularity)
        self._frequencies = np.zeros((self.granularity, self.granularity))
        self._index: PrefixIndex2D | None = None

    # ------------------------------------------------------------------
    # Prefix-sum index
    # ------------------------------------------------------------------
    @property
    def frequencies(self) -> np.ndarray:
        """Cell frequencies (read-only view; see :class:`Grid1D`)."""
        view = self._frequencies.view()
        view.flags.writeable = False
        return view

    def mutable_frequencies(self) -> np.ndarray:
        """Writable handle for in-place post-processing (drops the index)."""
        self.invalidate_index()
        return self._frequencies

    def invalidate_index(self) -> None:
        """Drop the prefix-sum index (call after mutating ``frequencies``)."""
        self._index = None

    def build_index(self) -> PrefixIndex2D:
        """Prefix-sum index over the current frequencies (cached)."""
        if self._index is None:
            self._index = PrefixIndex2D(self._frequencies, self.cell_width)
        return self._index

    # ------------------------------------------------------------------
    # Cell geometry
    # ------------------------------------------------------------------
    def cell_index(self, values_pair: np.ndarray) -> np.ndarray:
        """Flattened cell index for each record's ``(v_j, v_k)`` pair."""
        values_pair = np.asarray(values_pair, dtype=np.int64)
        rows = values_pair[:, 0] // self.cell_width
        cols = values_pair[:, 1] // self.cell_width
        return rows * self.granularity + cols

    def cell_bounds(self, row: int, col: int) -> tuple[int, int, int, int]:
        """Inclusive bounds ``(row_low, row_high, col_low, col_high)`` of a cell."""
        if not (0 <= row < self.granularity and 0 <= col < self.granularity):
            raise ValueError(f"cell ({row}, {col}) out of range")
        row_low = row * self.cell_width
        col_low = col * self.cell_width
        return (row_low, row_low + self.cell_width - 1,
                col_low, col_low + self.cell_width - 1)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, values_pair: np.ndarray, oracle: FrequencyOracle) -> None:
        """Collect noisy cell frequencies from the grid's user group."""
        n_cells = self.granularity * self.granularity
        if oracle.domain_size != n_cells:
            raise ValueError(
                f"oracle domain {oracle.domain_size} does not match grid cell "
                f"count {n_cells}")
        cells = self.cell_index(values_pair)
        flat = oracle.estimate_frequencies(cells)
        self._frequencies = flat.reshape(self.granularity, self.granularity)
        self.invalidate_index()

    def accumulate(self, values_pair: np.ndarray,
                   oracle: FrequencyOracle) -> SupportAccumulator:
        """Collect one user batch into an additive support accumulator."""
        n_cells = self.granularity * self.granularity
        if oracle.domain_size != n_cells:
            raise ValueError(
                f"oracle domain {oracle.domain_size} does not match grid cell "
                f"count {n_cells}")
        return oracle.accumulate(self.cell_index(values_pair))

    def finalize_from(self, accumulator: SupportAccumulator | None,
                      oracle: FrequencyOracle) -> None:
        """Set cell frequencies from merged support counts (see Grid1D)."""
        self.invalidate_index()
        if accumulator is None or accumulator.n_reports == 0:
            self._frequencies = np.zeros((self.granularity, self.granularity))
            return
        flat = oracle.estimate_from_accumulator(accumulator)
        self._frequencies = flat.reshape(self.granularity, self.granularity)

    def set_frequencies(self, frequencies: np.ndarray) -> None:
        """Directly set cell frequencies (tests and post-processing)."""
        frequencies = np.asarray(frequencies, dtype=float)
        expected = (self.granularity, self.granularity)
        if frequencies.shape != expected:
            raise ValueError(f"expected shape {expected}, got {frequencies.shape}")
        self._frequencies = frequencies.copy()
        self.invalidate_index()

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer_range(self, interval_row: tuple[int, int],
                     interval_col: tuple[int, int],
                     response_matrix: np.ndarray | None = None,
                     response_index: SummedAreaTable | None = None) -> float:
        """2-D range answer.

        Fully covered cells contribute their noisy frequency.  Partially
        covered cells contribute either a uniform-guess share of their
        frequency (``response_matrix=None``, the TDG rule) or the sum of
        the response-matrix entries of the covered 2-D values (the HDG
        rule, Section 4.1 Phase 3).  Passing a precomputed
        ``response_index`` (the matrix's summed-area table) makes the HDG
        rule O(1); with only the raw matrix the partial mass is taken
        from two vectorised rectangle sums instead of a cell loop.
        """
        row_low, row_high = interval_row
        col_low, col_high = interval_col
        for low, high in ((row_low, row_high), (col_low, col_high)):
            if not 0 <= low <= high < self.domain_size:
                raise ValueError(f"invalid interval [{low}, {high}]")
        self._check_response_shape(response_matrix, response_index)

        if response_matrix is None and response_index is None:
            return float(self.build_index().answer_uniform(
                row_low, row_high, col_low, col_high))
        if response_index is not None:
            return float(self.answer_ranges(
                np.array([row_low]), np.array([row_high]),
                np.array([col_low]), np.array([col_high]),
                response_index=response_index)[0])

        # Raw matrix, no index: the partial-cell mass is the query
        # rectangle's matrix mass minus the fully-covered block's mass.
        w = self.cell_width
        first_row, last_row = full_cell_range(row_low, row_high, w)
        first_col, last_col = full_cell_range(col_low, col_high, w)
        answer = float(
            response_matrix[row_low:row_high + 1, col_low:col_high + 1].sum())
        if first_row <= last_row and first_col <= last_col:
            answer += float(
                self._frequencies[first_row:last_row + 1,
                                  first_col:last_col + 1].sum())
            answer -= float(
                response_matrix[first_row * w:(last_row + 1) * w,
                                first_col * w:(last_col + 1) * w].sum())
        return answer

    def answer_ranges(self, row_lows: np.ndarray, row_highs: np.ndarray,
                      col_lows: np.ndarray, col_highs: np.ndarray,
                      response_index: SummedAreaTable | None = None) -> np.ndarray:
        """Vectorised 2-D range answers for arrays of inclusive intervals.

        With ``response_index=None`` every query follows the uniformity
        rule (TDG); otherwise partially covered cells draw their mass
        from the response matrix's summed-area table (HDG).  Intervals
        are assumed valid.
        """
        if response_index is None:
            return np.asarray(self.build_index().answer_uniform(
                row_lows, row_highs, col_lows, col_highs), dtype=float)
        w = self.cell_width
        first_row, last_row = full_cell_range(row_lows, row_highs, w)
        first_col, last_col = full_cell_range(col_lows, col_highs, w)
        grid_part = self.build_index().cell_block_sum(first_row, last_row,
                                                      first_col, last_col)
        matrix_all = response_index.rect_sum(row_lows, row_highs,
                                             col_lows, col_highs)
        matrix_full = response_index.rect_sum(
            first_row * w, (last_row + 1) * w - 1,
            first_col * w, (last_col + 1) * w - 1)
        return np.asarray(grid_part + matrix_all - matrix_full, dtype=float)

    def _check_response_shape(self, response_matrix: np.ndarray | None,
                              response_index: SummedAreaTable | None) -> None:
        expected = (self.domain_size, self.domain_size)
        if response_matrix is not None and response_matrix.shape != expected:
            raise ValueError(
                f"response matrix must have shape {expected}, got "
                f"{response_matrix.shape}")
        if response_index is not None and response_index.shape != expected:
            raise ValueError(
                f"response index must cover shape {expected}, got "
                f"{response_index.shape}")

    def answer_range_loop(self, interval_row: tuple[int, int],
                          interval_col: tuple[int, int],
                          response_matrix: np.ndarray | None = None) -> float:
        """Original per-cell loop (benchmark baseline and engine ground truth)."""
        row_low, row_high = interval_row
        col_low, col_high = interval_col
        for low, high in ((row_low, row_high), (col_low, col_high)):
            if not 0 <= low <= high < self.domain_size:
                raise ValueError(f"invalid interval [{low}, {high}]")
        self._check_response_shape(response_matrix, None)

        answer = 0.0
        first_row = row_low // self.cell_width
        last_row = row_high // self.cell_width
        first_col = col_low // self.cell_width
        last_col = col_high // self.cell_width
        cell_area = self.cell_width * self.cell_width
        for row in range(first_row, last_row + 1):
            for col in range(first_col, last_col + 1):
                c_row_low, c_row_high, c_col_low, c_col_high = self.cell_bounds(row, col)
                overlap_rows = min(row_high, c_row_high) - max(row_low, c_row_low) + 1
                overlap_cols = min(col_high, c_col_high) - max(col_low, c_col_low) + 1
                fully_covered = (overlap_rows == self.cell_width
                                 and overlap_cols == self.cell_width)
                if fully_covered:
                    answer += self._frequencies[row, col]
                elif response_matrix is None:
                    share = overlap_rows * overlap_cols / cell_area
                    answer += self._frequencies[row, col] * share
                else:
                    r_lo = max(row_low, c_row_low)
                    r_hi = min(row_high, c_row_high)
                    k_lo = max(col_low, c_col_low)
                    k_hi = min(col_high, c_col_high)
                    answer += float(
                        response_matrix[r_lo:r_hi + 1, k_lo:k_hi + 1].sum())
        return float(answer)

    def marginal(self, axis: int) -> np.ndarray:
        """Grid-level marginal of one of the two attributes (sums over the other)."""
        if axis not in (0, 1):
            raise ValueError("axis must be 0 or 1")
        return self._frequencies.sum(axis=1 - axis)
