"""Reports/sec of the collection (``fit``) path per mechanism.

PR 2 made query answering 17-130x faster, which left the collection
path — user perturbation, support counting, Phase-2 post-processing —
as the dominant cost of figure reproduction.  This benchmark times
``fit`` for every mechanism on one dataset and reports user reports
collected per second, so the vectorised collection paths (Square Wave's
broadcast transition matrix, stacked Phase-2 consistency, the grouped
HIO/LHIO gathers warmed during answering) stay measured.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fit_throughput.py
    PYTHONPATH=src python benchmarks/bench_fit_throughput.py --smoke

``--smoke`` shrinks the population so CI exercises the whole path in a
few seconds.  Every run appends a record to the ``BENCH_fit.json``
trajectory artifact at the repository root.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _scale import append_trajectory, report  # noqa: E402

from repro.baselines import CALM, HIO, LHIO, MSW, Uniform  # noqa: E402
from repro.core import HDG, TDG  # noqa: E402
from repro.datasets import make_dataset  # noqa: E402

#: Mechanisms measured, in report order.
MECHANISMS = ("Uni", "MSW", "CALM", "HIO", "LHIO", "TDG", "HDG")

FACTORIES = {
    "Uni": lambda epsilon, seed: Uniform(epsilon, seed=seed),
    "MSW": lambda epsilon, seed: MSW(epsilon, seed=seed),
    "CALM": lambda epsilon, seed: CALM(epsilon, seed=seed),
    "HIO": lambda epsilon, seed: HIO(epsilon, seed=seed),
    "LHIO": lambda epsilon, seed: LHIO(epsilon, seed=seed),
    "TDG": lambda epsilon, seed: TDG(epsilon, seed=seed),
    "HDG": lambda epsilon, seed: HDG(epsilon, seed=seed),
}


def time_fit(name: str, epsilon: float, seed: int, dataset,
             min_seconds: float = 0.2) -> float:
    """Best-of-repeats seconds for one mechanism's full collection."""
    best = float("inf")
    elapsed_total = 0.0
    while elapsed_total < min_seconds:
        mechanism = FACTORIES[name](epsilon, seed)
        start = time.perf_counter()
        mechanism.fit(dataset)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elapsed_total += elapsed
    return best


def run(n_users: int, epsilon: float, n_attributes: int, domain_size: int,
        seed: int, smoke: bool) -> tuple[str, dict]:
    rng = np.random.default_rng(seed)
    dataset = make_dataset("normal", n_users, n_attributes, domain_size,
                           rng=rng)
    lines = [f"fit throughput: n={n_users} d={n_attributes} c={domain_size} "
             f"eps={epsilon}",
             f"{'mechanism':>10}  {'fit seconds':>12}  {'reports/sec':>12}"]
    throughput: dict[str, float] = {}
    for name in MECHANISMS:
        seconds = time_fit(name, epsilon, seed, dataset,
                           min_seconds=0.05 if smoke else 0.2)
        rate = n_users / seconds
        throughput[name] = round(rate, 1)
        lines.append(f"{name:>10}  {seconds:>12.4f}  {rate:>12.0f}")
    text = "\n".join(lines)
    entry = {
        "n_users": n_users,
        "n_attributes": n_attributes,
        "domain_size": domain_size,
        "epsilon": epsilon,
        "smoke": smoke,
        "reports_per_second": throughput,
    }
    return text, entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI")
    parser.add_argument("--n-users", type=int, default=None)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--n-attributes", type=int, default=6)
    parser.add_argument("--domain-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n_users = args.n_users or (5_000 if args.smoke else 200_000)
    text, entry = run(n_users, args.epsilon, args.n_attributes,
                      args.domain_size, args.seed, smoke=args.smoke)
    report("fit_throughput", text)
    append_trajectory("fit_throughput", entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
