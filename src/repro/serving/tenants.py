"""Multi-tenant registry over one storage backend.

A :class:`TenantManager` turns a single serving process into a host
for many independent estimators: each *tenant* is one named
(mechanism, epsilon, schema) :class:`~repro.serving.QueryService`
with its own snapshot lineage, ingest quota and locks, all persisted
through one :class:`~repro.storage.StorageBackend`.

Concurrency
-----------
Each tenant runtime owns a re-entrant lock that serializes its
*durability-coupled* operations — write-ahead-log append + in-memory
apply, and state capture + log-position record — so the recorded WAL
position can never drift from what a snapshot actually captured.
Queries and re-finalizes go straight to the tenant's
:class:`QueryService`, whose internal locks already let one tenant's
re-finalize run while its own queries keep answering — and nothing a
tenant does ever holds another tenant's lock, so one tenant's
re-finalize never blocks another's queries
(``tests/test_multi_tenant.py`` pins this).  The registry lock guards
only the name → runtime map.

Durability
----------
``ingest`` appends the raw batch to the backend's write-ahead ingest
log *before* applying it in memory.  ``save_snapshot`` stores the
service document together with the last appended log sequence and
prunes the entries the snapshot captured.  Recovery (automatic at
construction) restores each tenant from its newest snapshot — or a
fresh service from the tenant's stored config — and replays the
pending log tail in order.  Because both ingest paths are
deterministic in (restored state, replayed rows), a recovered
tenant's answers are bitwise identical to an uninterrupted run
(``tests/test_crash_recovery.py`` pins this for TDG, HDG and LHIO).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..storage.base import (DEFAULT_TENANT, StorageBackend,
                            TenantExistsError, TenantRecord,
                            UnknownTenantError)
from .service import QueryService, ServiceError

#: Tenant-config keys forwarded to the QueryService constructor.
_SERVICE_CONFIG_KEYS = ("mechanism", "epsilon", "seed", "refinalize_every",
                        "total_users", "domain_size", "ingest_mode")


class QuotaExceededError(ServiceError):
    """An ingest batch would push a tenant past its report quota."""


@dataclass
class _TenantRuntime:
    """In-memory state of one hosted tenant."""

    record: TenantRecord
    service: QueryService
    #: Serializes WAL-append+apply and capture+record (see module doc).
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: Last write-ahead-log sequence applied to the in-memory service.
    last_seq: int = 0


def service_from_config(config: dict) -> QueryService:
    """Build the tenant's :class:`QueryService` from its stored config."""
    kwargs = {key: config[key] for key in _SERVICE_CONFIG_KEYS
              if config.get(key) is not None}
    kwargs.setdefault("mechanism", "HDG")
    kwargs.setdefault("epsilon", 1.0)
    mechanism = kwargs.pop("mechanism")
    epsilon = kwargs.pop("epsilon")
    extra = dict(config.get("mechanism_kwargs") or {})
    return QueryService(mechanism, float(epsilon), **kwargs, **extra)


class TenantManager:
    """Hosts one :class:`QueryService` per tenant over a storage backend.

    Parameters
    ----------
    backend:
        The durable home of tenant configs, snapshots and the
        write-ahead ingest log.  Tenants already present are recovered
        (snapshot restore + log replay) at construction.
    default_config:
        When given and no ``"default"`` tenant exists yet, one is
        created with this config — the tenant every request without an
        explicit tenant name routes to, which is what keeps the
        single-tenant wire format working.
    """

    def __init__(self, backend: StorageBackend,
                 default_config: dict | None = None):
        self.backend = backend
        self._registry_lock = threading.RLock()
        self._runtimes: dict[str, _TenantRuntime] = {}
        for record in backend.list_tenants():
            self._runtimes[record.name] = self._recover(record)
        if default_config is not None and DEFAULT_TENANT not in self._runtimes:
            self.create_tenant(DEFAULT_TENANT, default_config)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, record: TenantRecord) -> _TenantRuntime:
        """Newest snapshot (if any) + write-ahead-log tail replay."""
        try:
            document, snapshot = self.backend.load_snapshot(record.name)
            service = QueryService.from_state_dict(
                document, seed=record.config.get("seed"))
            replay_after = snapshot.wal_seq
        except FileNotFoundError:
            service = service_from_config(record.config)
            replay_after = 0
        last_seq = max(replay_after,
                       self.backend.last_ingest_seq(record.name))
        for entry in self.backend.pending_ingest(record.name,
                                                 after_seq=replay_after):
            service.ingest(entry.rows, entry.domain_size)
            last_seq = max(last_seq, entry.seq)
        return _TenantRuntime(record=record, service=service,
                              last_seq=last_seq)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def _runtime(self, tenant: str) -> _TenantRuntime:
        with self._registry_lock:
            runtime = self._runtimes.get(tenant)
        if runtime is None:
            raise UnknownTenantError(f"unknown tenant {tenant!r}")
        return runtime

    def service(self, tenant: str = DEFAULT_TENANT) -> QueryService:
        """The named tenant's live :class:`QueryService`."""
        return self._runtime(tenant).service

    def tenant_names(self) -> list[str]:
        """Hosted tenant names, sorted."""
        with self._registry_lock:
            return sorted(self._runtimes)

    def has_tenant(self, tenant: str) -> bool:
        """Whether the named tenant is hosted."""
        with self._registry_lock:
            return tenant in self._runtimes

    def create_tenant(self, name: str, config: dict) -> TenantRecord:
        """Validate, persist and start a new tenant.

        The service is constructed *before* the record is persisted so
        a bad config (unknown mechanism, bad epsilon) never leaves a
        half-created tenant in the backend.
        """
        config = dict(config)
        service = service_from_config(config)  # validates the config
        with self._registry_lock:
            if name in self._runtimes:
                raise TenantExistsError(f"tenant {name!r} already exists")
            record = self.backend.create_tenant(name, config)
            self._runtimes[name] = _TenantRuntime(record=record,
                                                  service=service)
        return record

    def delete_tenant(self, name: str) -> None:
        """Drop a tenant: its service, snapshots and log entries."""
        with self._registry_lock:
            if name not in self._runtimes:
                raise UnknownTenantError(f"unknown tenant {name!r}")
            del self._runtimes[name]
        self.backend.delete_tenant(name)

    def describe_tenant(self, name: str) -> dict:
        """Admin document for one tenant (``GET /tenants/<name>``)."""
        runtime = self._runtime(name)
        config = dict(runtime.record.config)
        quota = config.get("quota")
        return {
            "name": name,
            "created_at": runtime.record.created_at,
            "config": config,
            "status": runtime.service.status(),
            "quota": quota,
            "quota_remaining": (None if quota is None else
                                max(0, int(quota)
                                    - runtime.service.reports_ingested)),
            "pending_ingest_log": self.backend.ingest_log_depth(name),
            "snapshots": [record.version
                          for record in self.backend.list_snapshots(name)],
        }

    def list_tenants(self) -> list[dict]:
        """Summary rows for ``GET /tenants``."""
        rows = []
        for name in self.tenant_names():
            runtime = self._runtime(name)
            status = runtime.service.status()
            rows.append({
                "name": name,
                "mechanism": status["mechanism"],
                "epsilon": status["epsilon"],
                "mode": status["mode"],
                "ready": status["ready"],
                "reports_ingested": status["reports_ingested"],
                "quota": runtime.record.config.get("quota"),
                "pending_ingest_log": self.backend.ingest_log_depth(name),
            })
        return rows

    # ------------------------------------------------------------------
    # Tenant-routed serving operations
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, rows, domain_size: int | None = None) -> dict:
        """Quota check → WAL append → in-memory apply, atomically.

        ``rows`` must be a JSON-shaped nested list (or array) of
        integer rows; it is validated *before* the write-ahead append
        so a malformed batch can never poison the log.
        """
        runtime = self._runtime(tenant)
        batch = np.asarray(rows, dtype=np.int64)
        if batch.ndim != 2:
            raise ValueError(f"rows must be a 2-D batch of user records; "
                             f"got shape {tuple(batch.shape)}")
        with runtime.lock:
            quota = runtime.record.config.get("quota")
            if quota is not None and (runtime.service.reports_ingested
                                      + len(batch) > int(quota)):
                raise QuotaExceededError(
                    f"tenant {tenant!r} quota exceeded: "
                    f"{runtime.service.reports_ingested} ingested + "
                    f"{len(batch)} in batch > quota {int(quota)}")
            seq = self.backend.append_ingest(tenant, batch.tolist(),
                                            domain_size)
            try:
                receipt = runtime.service.ingest(batch, domain_size)
            except BaseException:
                # The apply failed after the durable append: drop the
                # entry so recovery does not replay a batch the live
                # service never absorbed.
                self.backend.discard_ingest(tenant, seq)
                raise
            runtime.last_seq = seq
        receipt["tenant"] = tenant
        receipt["wal_seq"] = seq
        return receipt

    def refinalize(self, tenant: str) -> dict:
        """Re-finalize one tenant (its own locks only)."""
        status = self._runtime(tenant).service.refinalize()
        status["tenant"] = tenant
        return status

    def save_snapshot(self, tenant: str):
        """Capture the tenant's state and prune the captured log tail."""
        runtime = self._runtime(tenant)
        with runtime.lock:
            document = runtime.service.state_dict()
            wal_seq = runtime.last_seq
        record = self.backend.save_snapshot(tenant, document,
                                            wal_seq=wal_seq)
        self.backend.prune_ingest(tenant, record.wal_seq)
        keep_last = runtime.record.config.get("keep_last")
        if keep_last is not None:
            self.backend.prune_snapshots(tenant, int(keep_last))
        return record

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def storage_status(self) -> dict:
        """The ``/healthz`` storage section."""
        description = self.backend.describe()
        description["tenants"] = len(self.tenant_names())
        return description

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TenantManager({self.backend.name}: "
                f"{', '.join(self.tenant_names()) or 'no tenants'})")
