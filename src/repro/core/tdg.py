"""Two-Dimensional Grids (TDG) mechanism.

TDG (Section 4) answers multi-dimensional range queries under ε-LDP in
three phases:

1. **Constructing grids** — users are split into ``C(d,2)`` groups, one
   per attribute pair; each group reports the ``g2 x g2`` cell of its
   pair's values through OLH, giving a noisy 2-D grid per pair.  The
   granularity ``g2`` follows the guideline of Section 4.6.
2. **Removing negativity and inconsistency** — Norm-Sub and cross-grid
   consistency (Phase 2).
3. **Answering range queries** — a 2-D query is answered from its pair's
   grid using the uniformity assumption for partially covered cells; a
   λ-D query (λ > 2) is answered by combining its ``C(λ,2)`` associated
   2-D answers with Weighted Update (Algorithm 2).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..datasets import Dataset
from ..frequency_oracles import OptimizedLocalHash, SupportAccumulator
from ..protocol import partition_users
from ..queries import Predicate, RangeQuery
from .base import RangeQueryMechanism
from .granularity import DEFAULT_ALPHA2, choose_granularity_tdg
from .grid import Grid2D
from .phase2 import run_phase2
from .query_estimation import PairwiseBatchAnswering, estimate_lambda_query


class TDG(PairwiseBatchAnswering, RangeQueryMechanism):
    """Two-Dimensional Grids under ε-LDP.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    granularity:
        Optional explicit 2-D granularity ``g2``; by default the guideline
        value is derived at fit time from ``(epsilon, n, d, c)``.
    alpha2:
        Guideline constant (only used when ``granularity`` is None).
    postprocess:
        Whether to run Phase 2.  ``False`` yields the ITDG ablation
        variant from Appendix A.1.
    consistency_rounds:
        Number of Norm-Sub/consistency interleavings in Phase 2.
    estimation_method:
        ``"weighted_update"`` (Algorithm 2) or ``"max_entropy"``
        (Appendix A.8) for λ > 2 queries.
    oracle_mode:
        ``"fast"`` or ``"user"`` execution mode of the OLH oracle.
    seed:
        Seed for grouping and perturbation randomness.
    """

    name = "TDG"

    def __init__(self, epsilon: float, granularity: int | None = None,
                 alpha2: float = DEFAULT_ALPHA2, postprocess: bool = True,
                 consistency_rounds: int = 3,
                 estimation_method: str = "weighted_update",
                 estimation_iterations: int = 100,
                 oracle_mode: str = "fast", seed: int | None = None):
        super().__init__(epsilon, seed)
        self.granularity = granularity
        self.alpha2 = float(alpha2)
        self.postprocess = bool(postprocess)
        self.consistency_rounds = int(consistency_rounds)
        self.estimation_method = estimation_method
        self.estimation_iterations = int(estimation_iterations)
        self.oracle_mode = oracle_mode
        self.grids: dict[tuple[int, int], Grid2D] = {}
        self.chosen_g2: int | None = None
        self._accumulators: dict[tuple[int, int], SupportAccumulator | None] = {}
        self._total_reports = 0

    # ------------------------------------------------------------------
    # Phase 1 + 2: collection and post-processing
    # ------------------------------------------------------------------
    def _fit(self, dataset: Dataset) -> None:
        self._reset_aggregation()
        self._partial_fit(dataset, total_users=None)
        self._finalize()

    def _reset_aggregation(self) -> None:
        self.grids = {}
        self.chosen_g2 = None
        self._accumulators = {}
        self._total_reports = 0

    def _ensure_layout(self, planning_users: int | None) -> None:
        if self.chosen_g2 is not None:
            return
        d, c = self._n_attributes, self._domain_size
        if d < 2:
            raise ValueError(f"{self.name} requires at least 2 attributes")
        pairs = list(combinations(range(d), 2))
        if self.granularity is not None:
            g2 = int(self.granularity)
        else:
            if planning_users is None:
                raise ValueError(
                    "total_users is required to derive the guideline "
                    "granularity before the first batch")
            g2 = choose_granularity_tdg(self.epsilon, planning_users,
                                        d, c, alpha2=self.alpha2).g2
        self.chosen_g2 = g2
        self.grids = {pair: Grid2D(pair, c, g2) for pair in pairs}
        self._accumulators = {pair: None for pair in pairs}

    def _partial_fit(self, dataset: Dataset, total_users: int | None) -> None:
        d = dataset.n_attributes
        if d < 2:
            raise ValueError("TDG requires at least 2 attributes")
        pairs = list(combinations(range(d), 2))
        self._ensure_layout(total_users or dataset.n_users)
        g2 = self.chosen_g2

        groups = partition_users(dataset.n_users, len(pairs), self.rng)
        for pair, group in zip(pairs, groups):
            if group.size > 0:
                oracle = OptimizedLocalHash(self.epsilon, g2 * g2, rng=self.rng,
                                            mode=self.oracle_mode)
                batch = self.grids[pair].accumulate(
                    dataset.columns(pair)[group], oracle)
                if self._accumulators[pair] is None:
                    self._accumulators[pair] = batch
                else:
                    self._accumulators[pair].merge(batch)
        self._total_reports += dataset.n_users

    def _merge(self, other: "TDG") -> None:
        if other.chosen_g2 is None:
            return
        if self.chosen_g2 is None:
            self.chosen_g2 = other.chosen_g2
            self.grids = {pair: Grid2D(pair, self._domain_size, other.chosen_g2)
                          for pair in other.grids}
            self._accumulators = {pair: None for pair in other.grids}
        elif self.chosen_g2 != other.chosen_g2:
            raise ValueError(
                f"shards disagree on the 2-D granularity ({self.chosen_g2} vs "
                f"{other.chosen_g2}); pass the same total_users or an explicit "
                "granularity to every shard")
        for pair, accumulator in other._accumulators.items():
            if accumulator is None:
                continue
            if self._accumulators[pair] is None:
                self._accumulators[pair] = accumulator.copy()
            else:
                self._accumulators[pair].merge(accumulator)
        self._total_reports += other._total_reports

    def _finalize(self) -> None:
        g2 = self.chosen_g2
        for pair, grid in self.grids.items():
            oracle = OptimizedLocalHash(self.epsilon, g2 * g2, rng=self.rng,
                                        mode=self.oracle_mode)
            grid.finalize_from(self._accumulators[pair], oracle)
        if self.postprocess:
            run_phase2(self._n_attributes, {}, self.grids, n_buckets=g2,
                       rounds=self.consistency_rounds)
        # Precompute the prefix-sum indexes so the first query is as fast
        # as the thousandth.
        for grid in self.grids.values():
            grid.build_index()

    # ------------------------------------------------------------------
    # Shared-memory accumulator layout (see docs/ingest.md)
    # ------------------------------------------------------------------
    def accumulator_slots(self) -> list[tuple[str, int]]:
        if self.chosen_g2 is None:
            raise RuntimeError(
                "aggregation layout not prepared; call prepare_aggregation "
                "or ingest a batch first")
        g2 = self.chosen_g2
        return [(f"2d:{a},{b}", g2 * g2)
                for (a, b) in sorted(self._accumulators)]

    def _accumulator_ref(self, slot: str) -> tuple[dict, object]:
        section, _, subkey = slot.partition(":")
        if section != "2d":
            raise KeyError(slot)
        a, _, b = subkey.partition(",")
        return self._accumulators, (int(a), int(b))

    # ------------------------------------------------------------------
    # Shard-state serialization (see docs/architecture.md for the schema)
    # ------------------------------------------------------------------
    def shard_state(self) -> dict:
        """Portable snapshot of the un-finalised accumulator state."""
        if self.chosen_g2 is None:
            raise RuntimeError("no batches ingested; nothing to serialize")
        return {
            "mechanism": self.name,
            "epsilon": self.epsilon,
            "n_attributes": self._n_attributes,
            "domain_size": self._domain_size,
            "granularity": {"g2": self.chosen_g2},
            "total_reports": self._total_reports,
            "accumulators": {
                "2d": {f"{a},{b}": (acc.to_dict() if acc is not None else None)
                       for (a, b), acc in self._accumulators.items()},
            },
        }

    def load_shard_state(self, state: dict) -> "TDG":
        """Restore accumulator state produced by :meth:`shard_state`."""
        if self.chosen_g2 is not None or self._fitted:
            raise RuntimeError("shard state can only be loaded into a fresh "
                               "mechanism instance")
        if state["mechanism"] != self.name:
            raise ValueError(f"state belongs to {state['mechanism']!r}, "
                             f"not {self.name!r}")
        if float(state["epsilon"]) != self.epsilon:
            raise ValueError("state was collected under a different epsilon")
        self._n_attributes = int(state["n_attributes"])
        self._domain_size = int(state["domain_size"])
        self.chosen_g2 = int(state["granularity"]["g2"])
        self._total_reports = int(state["total_reports"])
        self._n_reports = self._total_reports
        pairs = list(combinations(range(self._n_attributes), 2))
        self.grids = {pair: Grid2D(pair, self._domain_size, self.chosen_g2)
                      for pair in pairs}
        entries = state["accumulators"]["2d"]
        self._accumulators = {
            pair: (SupportAccumulator.from_dict(entries[f"{pair[0]},{pair[1]}"])
                   if entries.get(f"{pair[0]},{pair[1]}") is not None else None)
            for pair in pairs}
        return self

    # ------------------------------------------------------------------
    # Fitted-state serialization (snapshots; see docs/serving.md)
    # ------------------------------------------------------------------
    def _snapshot_config(self) -> dict:
        return {
            "granularity": self.granularity,
            "alpha2": self.alpha2,
            "postprocess": self.postprocess,
            "consistency_rounds": self.consistency_rounds,
            "estimation_method": self.estimation_method,
            "estimation_iterations": self.estimation_iterations,
            "oracle_mode": self.oracle_mode,
        }

    def _state_payload(self) -> dict:
        return {
            "g2": self.chosen_g2,
            "total_reports": self._total_reports,
            "grids": {f"{a},{b}": grid.frequencies.tolist()
                      for (a, b), grid in self.grids.items()},
        }

    def _restore_state_payload(self, payload: dict) -> None:
        self.chosen_g2 = int(payload["g2"])
        self._total_reports = int(payload["total_reports"])
        if self._n_reports is None:
            # Pre-IR snapshot documents carry no top-level n_reports, but
            # the grid payload always recorded the same count.
            self._n_reports = self._total_reports
        self.grids = {}
        for key, rows in payload["grids"].items():
            a, b = (int(part) for part in key.split(","))
            grid = Grid2D((a, b), self._domain_size, self.chosen_g2)
            grid.set_frequencies(np.asarray(rows, dtype=float))
            grid.build_index()
            self.grids[(a, b)] = grid
        self._accumulators = {pair: None for pair in self.grids}

    # ------------------------------------------------------------------
    # Phase 3: answering
    # ------------------------------------------------------------------
    def _grid_for(self, attr_a: int, attr_b: int) -> tuple[Grid2D, bool]:
        """Return the grid holding the pair and whether the order is flipped."""
        if (attr_a, attr_b) in self.grids:
            return self.grids[(attr_a, attr_b)], False
        if (attr_b, attr_a) in self.grids:
            return self.grids[(attr_b, attr_a)], True
        raise KeyError(f"no grid for attribute pair ({attr_a}, {attr_b})")

    def _pair_intervals(self, query: RangeQuery) -> tuple[Grid2D, tuple[int, int],
                                                          tuple[int, int]]:
        """The 2-D grid of a pair query plus the grid-axis-ordered intervals."""
        attr_a, attr_b = query.attributes
        grid, flipped = self._grid_for(attr_a, attr_b)
        interval_a = query.interval(attr_a)
        interval_b = query.interval(attr_b)
        if flipped:
            interval_a, interval_b = interval_b, interval_a
        return grid, interval_a, interval_b

    def _answer_pair(self, query: RangeQuery) -> float:
        grid, interval_a, interval_b = self._pair_intervals(query)
        if self.use_legacy_answering:
            return grid.answer_range_loop(interval_a, interval_b)
        return grid.answer_range(interval_a, interval_b)

    def _pad_to_pair(self, query: RangeQuery) -> RangeQuery:
        """Extend a 1-D query with a second, unrestricted attribute."""
        attribute = query.attributes[0]
        low, high = query.interval(attribute)
        other = 0 if attribute != 0 else 1
        return RangeQuery((Predicate(attribute, low, high),
                           Predicate(other, 0, self._domain_size - 1)))

    def _answer_single(self, query: RangeQuery) -> float:
        """1-D query: marginalise any grid containing the attribute."""
        return self._answer_pair(self._pad_to_pair(query))

    def _answer(self, query: RangeQuery) -> float:
        if query.dimension == 1:
            return self._answer_single(query)
        if query.dimension == 2:
            return self._answer_pair(query)
        return estimate_lambda_query(query, self._answer_pair,
                                     method=self.estimation_method,
                                     max_iterations=self.estimation_iterations)

    # ------------------------------------------------------------------
    # Batch engine
    # ------------------------------------------------------------------
    def _answer_interval_pairs_batched(self, entries) -> np.ndarray:
        """Grouped, vectorised corner lookups (uniformity rule only)."""
        return self._grid_interval_pairs_batched(entries, self.grids,
                                                 lambda key: None)

    _supports_fused_plans = True

    def _fused_pair_ranges(self, key, row_lows, row_highs, col_lows,
                           col_highs) -> np.ndarray:
        """One grid's corner lookups for a compiled pair group."""
        grid = self.grids.get(key)
        if grid is None:
            grid = self.grids[(key[1], key[0])]
            row_lows, row_highs, col_lows, col_highs = \
                col_lows, col_highs, row_lows, row_highs
        return grid.answer_ranges(row_lows, row_highs, col_lows, col_highs)

    def _fused_attribute_ranges(self, attribute, lows, highs) -> np.ndarray:
        """1-D group: marginalise a grid containing the attribute."""
        other = 0 if attribute != 0 else 1
        full_lows = np.zeros_like(lows)
        full_highs = np.full_like(lows, self._domain_size - 1)
        return self._fused_pair_ranges((attribute, other), lows, highs,
                                       full_lows, full_highs)

    def _answer_singles_batched(self, queries: list[RangeQuery]) -> np.ndarray:
        """Batch 1-D answers (TDG marginalises a 2-D grid; HDG overrides)."""
        c = self._domain_size
        entries = []
        for query in queries:
            predicate = query.predicates[0]
            other = 0 if predicate.attribute != 0 else 1
            entries.append((predicate.attribute, other,
                            (predicate.low, predicate.high), (0, c - 1)))
        return self._answer_interval_pairs_batched(entries)


class ITDG(TDG):
    """Inconsistent TDG: the Phase-2 ablation variant (Appendix A.1)."""

    name = "ITDG"

    def __init__(self, epsilon: float, **kwargs):
        kwargs["postprocess"] = False
        super().__init__(epsilon, **kwargs)
