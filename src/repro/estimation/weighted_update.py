"""Weighted Update (multiplicative weights) estimation engine.

Algorithms 1 and 2 of the paper are both instances of the same iterative
scheme (Arora et al.'s multiplicative weights / Hardt et al.'s MWEM-style
update): maintain a non-negative estimate vector, and for every observed
constraint "the sum of entries in index-set Φ should equal f", rescale the
entries in Φ so their sum matches f.  Iterate over all constraints until
the total change per sweep drops below a threshold (the paper uses any
threshold below ``1/n``).

This module implements the engine once so the response-matrix builder
(Algorithm 1), the λ-D query estimator (Algorithm 2) and the tests can all
share it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Constraint:
    """One observation: the entries at ``indices`` should sum to ``target``."""

    indices: np.ndarray
    target: float

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("constraint indices must be a non-empty 1-D array")
        object.__setattr__(self, "indices", indices)


@dataclass
class WeightedUpdateResult:
    """Outcome of a weighted-update run."""

    estimate: np.ndarray
    iterations: int
    converged: bool
    change_history: list[float] = field(default_factory=list)


def weighted_update(size: int, constraints: list[Constraint],
                    threshold: float = 1e-7, max_iterations: int = 100,
                    initial: np.ndarray | None = None,
                    track_history: bool = False) -> WeightedUpdateResult:
    """Run the weighted-update iteration.

    Parameters
    ----------
    size:
        Length of the estimate vector.
    constraints:
        Observations to satisfy.  Targets should be non-negative; the
        caller is expected to have applied Norm-Sub beforehand (the paper
        notes that negative inputs can destabilise the iteration — this is
        exactly the ITDG/IHDG ablation).
    threshold:
        Convergence threshold on the summed absolute change of the
        estimate across one full sweep over the constraints.  The paper
        recommends any value below ``1/n``.
    max_iterations:
        Upper bound on the number of sweeps.
    initial:
        Optional starting point; defaults to the uniform vector summing
        to 1 (Algorithm 1 line 1 / Algorithm 2 line 1).
    track_history:
        If True, record the per-sweep change (used by the convergence-rate
        experiment, Figures 17-18).

    Returns
    -------
    WeightedUpdateResult
        The estimate, the number of sweeps performed, whether the
        threshold was reached, and optionally the change history.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if not constraints:
        raise ValueError("at least one constraint is required")
    if initial is None:
        estimate = np.full(size, 1.0 / size)
    else:
        estimate = np.asarray(initial, dtype=float).copy()
        if estimate.shape != (size,):
            raise ValueError(f"initial must have shape ({size},)")

    history: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        before = estimate.copy()
        for constraint in constraints:
            idx = constraint.indices
            current = estimate[idx].sum()
            if current != 0.0:
                estimate[idx] *= constraint.target / current
        change = float(np.abs(estimate - before).sum())
        if track_history:
            history.append(change)
        if change < threshold:
            converged = True
            break
    return WeightedUpdateResult(estimate=estimate, iterations=iterations,
                                converged=converged, change_history=history)


def weighted_update_batch(size: int, index_sets: list[np.ndarray],
                          targets: np.ndarray, threshold: float = 1e-7,
                          max_iterations: int = 100) -> np.ndarray:
    """Run many independent weighted-update problems in one NumPy iteration.

    All problems share the same constraint *structure* (the index sets)
    but have their own targets — exactly the situation when a workload
    contains many λ-D queries of the same dimension: the orthant index
    sets depend only on λ while the 2-D sub-answers differ per query.

    Parameters
    ----------
    size:
        Length of each estimate vector (``2^λ`` for Algorithm 2).
    index_sets:
        One index array per constraint, in sweep order.
    targets:
        Array of shape ``(n_problems, n_constraints)``; row ``b`` holds
        problem ``b``'s constraint targets.
    threshold, max_iterations:
        Same convergence controls as :func:`weighted_update`.  Each row
        converges independently — once a row's per-sweep change drops
        below the threshold it stops updating, so every row follows the
        exact same trajectory the sequential engine would produce.

    Returns
    -------
    numpy.ndarray
        Estimates of shape ``(n_problems, size)``.
    """
    targets = np.asarray(targets, dtype=float)
    if targets.ndim != 2:
        raise ValueError("targets must have shape (n_problems, n_constraints)")
    if targets.shape[1] != len(index_sets):
        raise ValueError(
            f"got {targets.shape[1]} targets per problem for "
            f"{len(index_sets)} constraints")
    n_problems = targets.shape[0]
    if n_problems == 1:
        # Single-problem workloads (one λ-D query) dominate the serving
        # tier's single-query path; the 2-D machinery below spends most
        # of its time on tiny-array overhead (`ones_like`, masked
        # divides, active-row bookkeeping).  The 1-D sweep runs the
        # same multiplications in the same order, and a (1, k) gather
        # is contiguous so its axis-1 sum is the same pairwise
        # reduction as the 1-D `.sum()` — this branch is bitwise
        # identical to what the generic path produces for one row
        # (pinned by tests/test_epoch_serving.py).  Only n >= 2 rows
        # gather F-ordered and reduce with a strided loop, so batches
        # of different heights were never mutually bitwise anyway.
        return _weighted_update_single(size, index_sets, targets[0],
                                       threshold, max_iterations)[None]
    estimate = np.full((n_problems, size), 1.0 / size)
    if n_problems == 0:
        return estimate
    index_sets = [np.asarray(idx, dtype=np.int64) for idx in index_sets]

    active = np.arange(n_problems)
    for _ in range(max_iterations):
        sub = estimate[active]
        before = sub.copy()
        for position, idx in enumerate(index_sets):
            current = sub[:, idx].sum(axis=1)
            nonzero = current != 0.0
            ratios = np.divide(targets[active, position], current,
                               out=np.ones_like(current), where=nonzero)
            sub[:, idx] *= ratios[:, None]
        changes = np.abs(sub - before).sum(axis=1)
        estimate[active] = sub
        active = active[changes >= threshold]
        if active.size == 0:
            break
    return estimate


def _weighted_update_single(size: int, index_sets: list[np.ndarray],
                            targets: np.ndarray, threshold: float,
                            max_iterations: int) -> np.ndarray:
    """One problem's sweeps as flat 1-D operations (no row dimension)."""
    estimate = np.full(size, 1.0 / size)
    for _ in range(max_iterations):
        before = estimate.copy()
        for position, idx in enumerate(index_sets):
            current = estimate[idx].sum()
            if current != 0.0:
                estimate[idx] *= targets[position] / current
        if np.abs(estimate - before).sum() < threshold:
            break
    return estimate
