"""Edge-case and robustness tests across the library."""

import numpy as np
import pytest

from repro.baselines import CALM, LHIO, MSW
from repro.core import HDG, TDG, Grid1D, Grid2D
from repro.datasets import Dataset, make_dataset
from repro.frequency_oracles import OptimizedLocalHash
from repro.postprocess import norm_sub
from repro.queries import Predicate, RangeQuery, WorkloadGenerator, answer_query


# ----------------------------------------------------------------------
# Minimal-size datasets
# ----------------------------------------------------------------------
def test_mechanisms_work_with_two_attributes(rng):
    dataset = Dataset(rng.integers(0, 16, size=(5_000, 2)), 16)
    query = RangeQuery.from_dict({0: (0, 7), 1: (0, 7)})
    for mechanism in (TDG(1.0, seed=0), HDG(1.0, seed=0), CALM(1.0, seed=0),
                      MSW(1.0, seed=0), LHIO(1.0, seed=0)):
        mechanism.fit(dataset)
        assert np.isfinite(mechanism.answer(query))


def test_hdg_with_tiny_population(rng):
    # Far too few users for useful accuracy, but nothing should crash.
    dataset = Dataset(rng.integers(0, 16, size=(50, 3)), 16)
    mechanism = HDG(1.0, granularities=(4, 2), seed=0).fit(dataset)
    query = RangeQuery.from_dict({0: (0, 7), 1: (0, 7)})
    assert np.isfinite(mechanism.answer(query))


def test_hdg_with_minimum_domain(rng):
    dataset = Dataset(rng.integers(0, 4, size=(5_000, 3)), 4)
    mechanism = HDG(1.0, seed=0).fit(dataset)
    assert mechanism.chosen_g1 <= 4 and mechanism.chosen_g2 <= 4
    query = RangeQuery.from_dict({0: (0, 1), 1: (2, 3)})
    assert np.isfinite(mechanism.answer(query))


# ----------------------------------------------------------------------
# Degenerate queries
# ----------------------------------------------------------------------
def test_point_query_on_every_mechanism(small_dataset):
    query = RangeQuery.from_dict({0: (5, 5), 1: (10, 10)})
    truth = answer_query(small_dataset, query)
    for mechanism in (TDG(2.0, granularity=8, seed=0),
                      HDG(2.0, granularities=(8, 4), seed=0),
                      CALM(2.0, seed=0)):
        mechanism.fit(small_dataset)
        estimate = mechanism.answer(query)
        assert abs(estimate - truth) < 0.2


def test_full_volume_query_on_every_mechanism(small_dataset):
    c = small_dataset.domain_size
    # 2-D full-volume queries must come back as (approximately) the total
    # mass.  Full-volume queries over *all* attributes go through the λ-D
    # estimation step, which does not pin the total to 1 (the paper's
    # estimation error); they only need to stay in a sane range.
    pair_query = RangeQuery.from_dict({0: (0, c - 1), 1: (0, c - 1)})
    all_query = RangeQuery.from_dict({a: (0, c - 1)
                                      for a in range(small_dataset.n_attributes)})
    for mechanism in (TDG(1.0, seed=0), HDG(1.0, seed=0), MSW(1.0, seed=0)):
        mechanism.fit(small_dataset)
        assert mechanism.answer(pair_query) == pytest.approx(1.0, abs=0.15)
        assert 0.3 <= mechanism.answer(all_query) <= 1.2


def test_query_dimension_equals_n_attributes(small_dataset):
    generator = WorkloadGenerator(small_dataset.n_attributes,
                                  small_dataset.domain_size,
                                  rng=np.random.default_rng(0))
    queries = generator.random_workload(5, small_dataset.n_attributes, 0.5)
    mechanism = HDG(1.0, seed=0).fit(small_dataset)
    estimates = mechanism.answer_workload(queries)
    assert np.isfinite(estimates).all()


# ----------------------------------------------------------------------
# Extreme privacy budgets
# ----------------------------------------------------------------------
@pytest.mark.parametrize("epsilon", [0.05, 5.0])
def test_extreme_epsilon_values(small_dataset, epsilon):
    mechanism = HDG(epsilon, seed=0).fit(small_dataset)
    query = RangeQuery.from_dict({0: (0, 15), 1: (0, 15)})
    assert np.isfinite(mechanism.answer(query))


def test_very_high_epsilon_is_nearly_exact(small_dataset):
    query = RangeQuery.from_dict({0: (0, 15), 1: (0, 15)})
    truth = answer_query(small_dataset, query)
    mechanism = HDG(8.0, granularities=(32, 16), seed=0).fit(small_dataset)
    assert mechanism.answer(query) == pytest.approx(truth, abs=0.05)


# ----------------------------------------------------------------------
# Oracle / grid edge cases
# ----------------------------------------------------------------------
def test_olh_hash_range_override(rng):
    oracle = OptimizedLocalHash(1.0, 32, rng=rng, hash_range=8)
    assert oracle.hash_range == 8
    values = rng.integers(0, 32, size=5_000)
    assert oracle.estimate_frequencies(values).shape == (32,)


def test_grid_granularity_equal_to_domain(rng):
    grid = Grid2D((0, 1), 8, 8)
    assert grid.cell_width == 1
    pairs = rng.integers(0, 8, size=(1_000, 2))
    oracle = OptimizedLocalHash(1.0, 64, rng=rng)
    grid.collect(pairs, oracle)
    assert grid.frequencies.shape == (8, 8)


def test_grid1d_granularity_one():
    grid = Grid1D(0, 8, 1)
    grid.set_frequencies(np.array([1.0]))
    assert grid.answer_range(0, 7) == pytest.approx(1.0)
    assert grid.answer_range(0, 3) == pytest.approx(0.5)


def test_norm_sub_huge_array():
    rng = np.random.default_rng(0)
    values = rng.normal(1e-6, 1e-4, size=1_000_000)
    result = norm_sub(values)
    assert result.sum() == pytest.approx(1.0, abs=1e-6)
    assert (result >= 0).all()


# ----------------------------------------------------------------------
# Dataset edge cases
# ----------------------------------------------------------------------
def test_single_user_dataset():
    dataset = Dataset(np.array([[3, 5]]), 8)
    assert dataset.marginal(0)[3] == 1.0
    query = RangeQuery.from_dict({0: (0, 3), 1: (4, 7)})
    assert answer_query(dataset, query) == 1.0


def test_constant_attribute_dataset(rng):
    values = np.column_stack([np.full(2_000, 7),
                              rng.integers(0, 16, size=2_000),
                              rng.integers(0, 16, size=2_000)])
    dataset = Dataset(values, 16)
    mechanism = HDG(2.0, granularities=(8, 4), seed=0).fit(dataset)
    hit = RangeQuery.from_dict({0: (4, 11), 1: (0, 15)})
    miss = RangeQuery.from_dict({0: (12, 15), 1: (0, 15)})
    assert mechanism.answer(hit) > mechanism.answer(miss)


def test_make_dataset_with_many_attributes():
    dataset = make_dataset("laplace", 2_000, 10, 16,
                           rng=np.random.default_rng(0))
    assert dataset.n_attributes == 10


# ----------------------------------------------------------------------
# Predicate corner values
# ----------------------------------------------------------------------
def test_predicate_at_domain_edges(small_dataset):
    c = small_dataset.domain_size
    mechanism = TDG(1.0, granularity=8, seed=0).fit(small_dataset)
    for interval in [(0, 0), (c - 1, c - 1), (0, c - 1)]:
        query = RangeQuery((Predicate(0, *interval), Predicate(1, 0, c - 1)))
        assert np.isfinite(mechanism.answer(query))


# ----------------------------------------------------------------------
# Non-power-of-two domains and tiny populations (guideline robustness)
# ----------------------------------------------------------------------
def test_grid_mechanisms_fit_non_power_of_two_domain(rng):
    # Regression: c=100 used to crash at fit time because the guideline
    # rounded to a power of two that does not divide the domain.
    dataset = Dataset(rng.integers(0, 100, size=(8_000, 3)), 100)
    query = RangeQuery.from_dict({0: (10, 57), 1: (3, 88)})
    for mechanism in (TDG(1.0, seed=0), HDG(1.0, seed=0), CALM(1.0, seed=0),
                      MSW(1.0, seed=0)):
        mechanism.fit(dataset)
        assert np.isfinite(mechanism.answer(query))


@pytest.mark.parametrize("n_users", [1, 2, 3])
def test_grid_mechanisms_fit_tiny_population(rng, n_users):
    # Regression: a single user used to crash the HDG guideline with
    # "n1 and m1 must be positive".
    dataset = Dataset(rng.integers(0, 64, size=(n_users, 3)), 64)
    query = RangeQuery.from_dict({0: (0, 31), 1: (16, 47)})
    for mechanism in (TDG(1.0, seed=0), HDG(1.0, seed=0)):
        mechanism.fit(dataset)
        assert np.isfinite(mechanism.answer(query))


def test_single_user_non_power_of_two_domain(rng):
    dataset = Dataset(rng.integers(0, 30, size=(1, 3)), 30)
    for mechanism in (TDG(1.0, seed=0), HDG(1.0, seed=0)):
        mechanism.fit(dataset)
        query = RangeQuery.from_dict({0: (0, 14), 1: (0, 29)})
        assert np.isfinite(mechanism.answer(query))
