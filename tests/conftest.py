"""Shared fixtures for the test suite.

Tests run at deliberately small scale (tens of thousands of users at most)
so the whole suite finishes quickly; statistical assertions use tolerances
sized for those populations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, generate_normal, make_dataset
from repro.queries import WorkloadGenerator


def pytest_configure(config):
    """Register the suite's markers (see README's Testing section).

    CI runs the fast tier-1 job with ``-m "not slow and not chaos and
    not scaling"`` and a separate job for the marked tests; a plain
    ``pytest`` run still executes everything.
    """
    config.addinivalue_line(
        "markers", "slow: long-running test, excluded from the fast "
                   "tier-1 CI job")
    config.addinivalue_line(
        "markers", "chaos: fault-injection test (process kills, storage "
                   "failures); runs in the chaos CI job")
    config.addinivalue_line(
        "markers", "scaling: multi-core throughput test; asserts only "
                   "where enough CPUs are available")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset(rng) -> Dataset:
    """Correlated normal dataset: 20k users, 4 attributes, domain 32."""
    return generate_normal(20_000, 4, 32, covariance=0.8, rng=rng)


@pytest.fixture
def tiny_dataset(rng) -> Dataset:
    """Very small dataset for expensive mechanisms: 4k users, 3 attributes, domain 16."""
    return make_dataset("normal", 4_000, 3, 16, rng=rng)


@pytest.fixture
def workload_2d(small_dataset) -> list:
    generator = WorkloadGenerator(small_dataset.n_attributes,
                                  small_dataset.domain_size,
                                  rng=np.random.default_rng(7))
    return generator.random_workload(25, 2, 0.5)


@pytest.fixture
def workload_3d(small_dataset) -> list:
    generator = WorkloadGenerator(small_dataset.n_attributes,
                                  small_dataset.domain_size,
                                  rng=np.random.default_rng(8))
    return generator.random_workload(15, 3, 0.5)
