"""Figure 28: ε sweep at several attribute-covariance levels.

Paper shape: HDG stays superior across the whole covariance range; the
correlation-blind MSW gets relatively better as covariance approaches 0
and relatively worse as it approaches 1.
"""

from _scale import current_scale, report

from repro.experiments import appendix


def bench_figure_28(benchmark):
    scale = current_scale()
    quick = scale.n_users <= 100_000
    covariances = (0.0, 1.0) if quick else (0.0, 0.2, 0.6, 1.0)

    def run():
        return appendix.figure_28_covariance(
            datasets=("normal",) if quick else ("normal", "laplace"),
            covariances=covariances, epsilons=scale.epsilons[:3],
            query_dimensions=(2,), n_users=scale.n_users,
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            volume=0.5, n_queries=scale.n_queries,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Figure 28: covariance sweep =="]
    for (dataset, covariance, dimension), sweep in results.items():
        series = sweep.series()
        lines.append(f"{dataset} cov={covariance} λ={dimension}: " + "  ".join(
            f"{method}={maes[-1]:.4f}" for method, maes in series.items()))
    report("fig28_covariance", "\n".join(lines))

    # MSW's penalty relative to HDG should grow with the covariance.
    def msw_gap(covariance):
        key = next(k for k in results if k[1] == covariance)
        series = results[key].series()
        return series["MSW"][-1] - series["HDG"][-1]

    assert msw_gap(covariances[-1]) >= msw_gap(covariances[0]) - 0.02
