"""Shard-level aggregation front-end for the grid mechanisms.

A :class:`ShardAggregator` wraps one shardable mechanism (TDG/HDG or
their ablation variants) and exposes the collection side of the pipeline
as a stream-processing object: feed it user-report batches with
:meth:`ShardAggregator.add_batch`, combine aggregators built on
independent shards with :meth:`ShardAggregator.merge`, and call
:meth:`ShardAggregator.finalize` once to run Phase 2 and obtain a
query-answering mechanism.

Because each grid's state is a plain vector of support counts, an
aggregator serialises to a small JSON document (:meth:`save` /
:meth:`load`), so shards can live in different processes or on different
machines and be merged wherever the estimates are served from.  The
state schema is documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core import HDG, IHDG, ITDG, TDG, RangeQueryMechanism
from ..datasets import Dataset

#: Shardable mechanisms by paper name.
SHARDABLE_MECHANISMS: dict[str, type] = {
    "TDG": TDG,
    "HDG": HDG,
    "ITDG": ITDG,
    "IHDG": IHDG,
}

#: Format tag written into serialized shard states.
STATE_FORMAT = "repro.shard-state"
STATE_VERSION = 1


def stamp_state(state: dict) -> dict:
    """Add the format/version envelope to a mechanism's shard state."""
    state["format"] = STATE_FORMAT
    state["version"] = STATE_VERSION
    return state


def write_state(state: dict, path: str | Path) -> Path:
    """Write one shard state (stamped) as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(stamp_state(dict(state))))
    return path


class ShardAggregator:
    """Incremental, mergeable LDP collection for one mechanism.

    Parameters
    ----------
    mechanism:
        Paper name of a shardable mechanism (``"TDG"``, ``"HDG"``,
        ``"ITDG"``, ``"IHDG"``) or an un-fitted mechanism instance with
        sharding support.
    epsilon:
        Per-user privacy budget (ignored when an instance is passed).
    total_users:
        Expected total population across all shards; used to derive the
        guideline granularities so that independently built aggregators
        agree and can be merged.  Defaults to the first batch's size —
        fine for a single aggregator, but multi-shard deployments should
        pass the real total (or explicit granularities).
    seed:
        Seed for the wrapped mechanism's randomness.
    mechanism_kwargs:
        Extra keyword arguments forwarded to the mechanism constructor.
    """

    def __init__(self, mechanism: str | RangeQueryMechanism = "HDG",
                 epsilon: float = 1.0, total_users: int | None = None,
                 seed: int | None = None, **mechanism_kwargs):
        if isinstance(mechanism, RangeQueryMechanism):
            instance = mechanism
            if instance.is_fitted:
                raise ValueError("mechanism is already finalised")
        else:
            try:
                factory = SHARDABLE_MECHANISMS[mechanism]
            except KeyError:
                raise ValueError(
                    f"unknown or non-shardable mechanism {mechanism!r}; "
                    f"known: {sorted(SHARDABLE_MECHANISMS)}") from None
            instance = factory(epsilon, seed=seed, **mechanism_kwargs)
        if not instance.supports_sharding:
            raise ValueError(
                f"{type(instance).__name__} does not support sharded "
                "aggregation")
        self.mechanism = instance
        self.total_users = total_users
        self._finalized = False

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def add_batch(self, batch: Dataset | np.ndarray,
                  domain_size: int | None = None) -> "ShardAggregator":
        """Ingest one batch of user reports.

        ``batch`` is either a :class:`~repro.datasets.Dataset` or a raw
        ``(n, d)`` integer array (then ``domain_size`` is required).
        """
        self._require_open("add_batch")
        if not isinstance(batch, Dataset):
            if domain_size is None:
                raise ValueError(
                    "domain_size is required when passing a raw value array")
            batch = Dataset(np.asarray(batch), domain_size)
        self.mechanism.partial_fit(batch, total_users=self.total_users)
        return self

    @property
    def n_reports(self) -> int:
        """Total user reports ingested so far (across merges)."""
        return getattr(self.mechanism, "_total_reports", 0)

    # ------------------------------------------------------------------
    # Shard algebra
    # ------------------------------------------------------------------
    def merge(self, other: "ShardAggregator") -> "ShardAggregator":
        """Fold another shard's aggregator into this one (exact on counts)."""
        self._require_open("merge")
        other._require_open("merge")
        self.mechanism.merge(other.mechanism)
        return self

    def finalize(self) -> RangeQueryMechanism:
        """Run Phase 2 / estimation on the merged counts; return the mechanism."""
        self._require_open("finalize")
        self.mechanism.finalize()
        self._finalized = True
        return self.mechanism

    def _require_open(self, operation: str) -> None:
        if self._finalized:
            raise RuntimeError(
                f"cannot {operation} after finalize(); aggregators are "
                "single-use")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the accumulated (pre-Phase-2) state."""
        return stamp_state(self.mechanism.shard_state())

    @classmethod
    def from_state_dict(cls, state: dict, seed: int | None = None,
                        **mechanism_kwargs) -> "ShardAggregator":
        """Rebuild an aggregator from :meth:`state_dict` output."""
        if state.get("format") != STATE_FORMAT:
            raise ValueError(
                f"not a {STATE_FORMAT} document (format="
                f"{state.get('format')!r})")
        if int(state.get("version", 0)) > STATE_VERSION:
            raise ValueError(
                f"state version {state['version']} is newer than supported "
                f"version {STATE_VERSION}")
        name = state["mechanism"]
        try:
            factory = SHARDABLE_MECHANISMS[name]
        except KeyError:
            raise ValueError(f"unknown mechanism in state: {name!r}") from None
        mechanism = factory(float(state["epsilon"]), seed=seed,
                            **mechanism_kwargs)
        mechanism.load_shard_state(state)
        aggregator = cls(mechanism)
        aggregator.total_users = state.get("total_reports") or None
        return aggregator

    def save(self, path: str | Path) -> Path:
        """Write the shard state as JSON; returns the path written."""
        return write_state(self.mechanism.shard_state(), path)

    @classmethod
    def load(cls, path: str | Path, seed: int | None = None,
             **mechanism_kwargs) -> "ShardAggregator":
        """Read a shard state written by :meth:`save`."""
        state = json.loads(Path(path).read_text())
        return cls.from_state_dict(state, seed=seed, **mechanism_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "finalized" if self._finalized else "open"
        return (f"ShardAggregator({type(self.mechanism).__name__}, "
                f"epsilon={self.mechanism.epsilon}, "
                f"n_reports={self.n_reports}, {status})")


def merge_aggregators(aggregators: list[ShardAggregator]) -> ShardAggregator:
    """Merge several shard aggregators into the first one (left fold)."""
    if not aggregators:
        raise ValueError("need at least one aggregator to merge")
    merged = aggregators[0]
    for aggregator in aggregators[1:]:
        merged.merge(aggregator)
    return merged
