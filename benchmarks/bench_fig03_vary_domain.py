"""Figure 3: MAE vs domain size c on the synthetic datasets.

Paper shape: HDG stays stable as c grows (binning shields it from the
large domain), while CALM and LHIO degrade because their range answers sum
more and more noisy cells.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_3(benchmark):
    scale = current_scale()
    domain_sizes = (16, 64, 256) if scale.n_users <= 100_000 else (
        16, 32, 64, 128, 256, 512, 1024)

    def run():
        return figures.figure_3_vary_domain(
            datasets=("normal",) if scale.n_users <= 100_000 else ("normal", "laplace"),
            domain_sizes=domain_sizes, query_dimensions=(2,),
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            epsilon=1.0, volume=0.5, n_queries=scale.n_queries,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig03_vary_domain",
           figures.format_figure_results(results, "Figure 3: MAE vs domain size"))
    for _, sweep in results.items():
        series = sweep.series()
        # CALM degrades from the smallest to the largest domain; HDG stays flat
        # enough to win at the largest domain.
        assert series["CALM"][-1] > series["CALM"][0]
        assert series["HDG"][-1] < series["CALM"][-1]
