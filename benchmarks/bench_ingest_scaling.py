"""Ingest-tier scaling: reports/sec vs collector worker count.

The distributed ingest tier (:mod:`repro.ingest`) routes reports to N
collector processes that ``partial_fit`` into shared-memory
accumulators, so collection throughput should scale with workers until
the router/queue machinery saturates.  This benchmark pushes one
synthetic population through tiers of growing worker counts and
reports reports/sec plus the speedup over one worker.

Run directly::

    PYTHONPATH=src python benchmarks/bench_ingest_scaling.py
    PYTHONPATH=src python benchmarks/bench_ingest_scaling.py --smoke

``--smoke`` shrinks the population so CI exercises the whole
multi-process path in seconds.  Unless ``--batch-size`` pins it, the
submit batch is auto-sized per worker count so every worker sees
several batches — a fixed batch that leaves 4 workers one batch each
measures queue overhead, not scaling (the ``speedup_at_4: 0.77``
regression).  On hosts with at least 4 CPUs the 4-worker tier must
sustain >= 3x the single-worker rate (>= 1.5x in smoke mode, whose
tiny population amortizes less startup cost); single-core hosts skip
the assertion in both modes.  Every run appends a record to the
``BENCH_fit.json`` trajectory artifact at the repository root.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _scale import append_trajectory, report  # noqa: E402

from repro.ingest import IngestTier  # noqa: E402

#: 4-worker speedup the full run must sustain on multi-core hosts.
TARGET_SPEEDUP_AT_4 = 3.0

#: Smoke-mode target: the tiny population amortizes less worker
#: startup cost, so the bar is lower — but the gate still runs.
SMOKE_TARGET_SPEEDUP_AT_4 = 1.5

#: Auto-sizing: batches per worker each tier should see (enough to
#: overlap routing with collection without starving anyone).
BATCHES_PER_WORKER = 4


def batch_size_for(n_users: int, workers: int,
                   override: int | None = None) -> int:
    """Submit batch size for one tier: explicit override or auto-sized.

    Auto-sizing gives every worker ``BATCHES_PER_WORKER`` batches so
    the sweep measures collection scaling at each worker count rather
    than how a fixed batch count divides across workers.
    """
    if override is not None:
        return override
    return max(1_000, n_users // (workers * BATCHES_PER_WORKER))


def time_ingest(mechanism: str, epsilon: float, workers: int,
                rows: np.ndarray, domain_size: int, batch_size: int,
                seed: int) -> float:
    """Wall seconds to route + collect every row through one tier."""
    tier = IngestTier(mechanism, epsilon, n_workers=workers,
                      n_attributes=rows.shape[1], domain_size=domain_size,
                      seed=seed, planning_users=rows.shape[0],
                      total_users=rows.shape[0])
    try:
        started = time.perf_counter()
        for start in range(0, rows.shape[0], batch_size):
            tier.submit(rows[start:start + batch_size])
        tier.flush()
        elapsed = time.perf_counter() - started
        if tier.reports_total != rows.shape[0]:
            raise RuntimeError(
                f"tier absorbed {tier.reports_total} of {rows.shape[0]} "
                "reports")
    finally:
        tier.close()
    return elapsed


def run(n_users: int, epsilon: float, n_attributes: int, domain_size: int,
        batch_size: int | None, worker_counts: tuple[int, ...],
        mechanism: str, seed: int, smoke: bool) -> tuple[str, dict]:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, domain_size, size=(n_users, n_attributes))
    cpus = os.cpu_count() or 1
    lines = [f"ingest scaling: {mechanism} n={n_users} d={n_attributes} "
             f"c={domain_size} eps={epsilon} "
             f"batch={batch_size or 'auto'} cpus={cpus}",
             f"{'workers':>8}  {'batch':>8}  {'seconds':>10}  "
             f"{'reports/sec':>12}  {'speedup':>8}"]
    rates: dict[str, float] = {}
    batch_sizes: dict[str, int] = {}
    base_rate = None
    for workers in worker_counts:
        batch = batch_size_for(n_users, workers, batch_size)
        batch_sizes[str(workers)] = batch
        seconds = time_ingest(mechanism, epsilon, workers, rows,
                              domain_size, batch, seed)
        rate = n_users / seconds
        if base_rate is None:
            base_rate = rate
        rates[str(workers)] = round(rate, 1)
        lines.append(f"{workers:>8}  {batch:>8}  {seconds:>10.3f}  "
                     f"{rate:>12.0f}  {rate / base_rate:>7.2f}x")
    speedup_at_4 = (rates.get("4", 0.0) / rates["1"]) if "1" in rates else None
    text = "\n".join(lines)
    entry = {
        "mechanism": mechanism,
        "n_users": n_users,
        "n_attributes": n_attributes,
        "domain_size": domain_size,
        "epsilon": epsilon,
        "batch_size": batch_size,
        "batch_sizes": batch_sizes,
        "cpus": cpus,
        "smoke": smoke,
        "reports_per_second": rates,
        "speedup_at_4_workers": (round(speedup_at_4, 2)
                                 if speedup_at_4 else None),
    }
    return text, entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (lower scaling "
                             "target, same >=4-CPU gate)")
    parser.add_argument("--mechanism", default="TDG")
    parser.add_argument("--n-users", type=int, default=None)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--n-attributes", type=int, default=4)
    parser.add_argument("--domain-size", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="worker counts to sweep (default 1 2 4)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n_users = args.n_users or (20_000 if args.smoke else 1_000_000)
    worker_counts = tuple(args.workers or (1, 2, 4))
    text, entry = run(n_users, args.epsilon, args.n_attributes,
                      args.domain_size, args.batch_size, worker_counts,
                      args.mechanism, args.seed, smoke=args.smoke)
    report("ingest_scaling", text)
    append_trajectory("ingest_scaling", entry)
    speedup = entry["speedup_at_4_workers"]
    target = SMOKE_TARGET_SPEEDUP_AT_4 if args.smoke else TARGET_SPEEDUP_AT_4
    if (speedup is not None and (os.cpu_count() or 1) >= 4
            and speedup < target):
        print(f"FAIL: 4-worker speedup {speedup:.2f}x "
              f"< target {target:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
