"""Shared-memory blocks backing the distributed ingest tier.

Each collector worker owns one ``multiprocessing.shared_memory``
segment.  In **stream** mode the segment holds the worker's additive
oracle state — the mechanism's :class:`~repro.frequency_oracles.base.
SupportAccumulator` support vectors, bound in place via
:meth:`~repro.core.base.RangeQueryMechanism.bind_accumulator_views` —
so ``partial_fit`` updates are visible to the merge coordinator with
no serialization at all (this replaces the JSON ``shard_state``
round-trip on the hot path).  In **refit** mode (non-shardable
mechanisms) the segment is an append-only row log instead; the
coordinator reassembles the rows in global key order and refits.

Both segment kinds start with the same int64 header::

    [total_reports, batches_done, last_seq, dropped_rows]

followed by block-specific regions.  Workers publish the header and
payload under a per-worker lock; the coordinator takes the same lock
to copy a consistent cut (always "exactly after some completed
batch", never a torn mid-batch state).

Lifecycle: the parent process creates and eventually ``close`` +
``unlink``\\ s every segment; workers ``attach`` by name and only
``close`` their mapping.  Under the ``spawn`` start method the
attaching process additionally unregisters the segment from its own
``resource_tracker`` — before Python 3.13 an attach *registers* the
segment too, and the tracker of an exiting worker would otherwise
unlink memory the parent is still serving from.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Fixed int64 header fields shared by both block kinds.
HEADER_TOTAL_REPORTS = 0
HEADER_BATCHES_DONE = 1
HEADER_LAST_SEQ = 2
HEADER_DROPPED_ROWS = 3
HEADER_FIXED_FIELDS = 4

_WORD = 8  # bytes per int64/float64 word


def _unregister_attachment(shm: shared_memory.SharedMemory) -> None:
    """Forget an attached segment in this process's resource tracker.

    Only needed (and only safe) when the attaching process has its own
    tracker — i.e. under ``spawn``.  Under ``fork`` the tracker is
    shared with the creating parent, and unregistering here would
    erase the parent's crash-cleanup registration.
    """
    if os.name == "posix":
        resource_tracker.unregister(shm._name, "shared_memory")


class AccumulatorLayout:
    """Byte layout of one worker's shared accumulator block.

    ``slots`` is the mechanism's ordered ``(slot key, vector length)``
    list from :meth:`~repro.core.base.RangeQueryMechanism.
    accumulator_slots`; every process that builds the layout from the
    same mechanism configuration agrees on it byte for byte.
    """

    def __init__(self, slots: list[tuple[str, int]]):
        self.slots = [(str(key), int(length)) for key, length in slots]
        if not self.slots:
            raise ValueError("accumulator layout needs at least one slot")
        self._offsets: dict[str, tuple[int, int]] = {}
        cursor = 0
        for key, length in self.slots:
            if length < 1:
                raise ValueError(f"slot {key!r} has non-positive length")
            if key in self._offsets:
                raise ValueError(f"duplicate slot key {key!r}")
            self._offsets[key] = (cursor, length)
            cursor += length
        self.payload_floats = cursor

    @property
    def header_words(self) -> int:
        """Fixed header fields plus one per-slot report counter."""
        return HEADER_FIXED_FIELDS + len(self.slots)

    @property
    def nbytes(self) -> int:
        return _WORD * (self.header_words + self.payload_floats)

    def slot_range(self, key: str) -> tuple[int, int]:
        """``(start, length)`` of one slot within the payload region."""
        return self._offsets[key]


class SharedAccumulatorBlock:
    """One worker's shared-memory view of its additive oracle state."""

    def __init__(self, layout: AccumulatorLayout,
                 shm: shared_memory.SharedMemory, owner: bool):
        self.layout = layout
        self._shm = shm
        self._owner = owner
        self.header = np.ndarray((layout.header_words,), dtype=np.int64,
                                 buffer=shm.buf)
        self._payload = np.ndarray((layout.payload_floats,),
                                   dtype=np.float64, buffer=shm.buf,
                                   offset=_WORD * layout.header_words)

    @classmethod
    def create(cls, layout: AccumulatorLayout) -> "SharedAccumulatorBlock":
        shm = shared_memory.SharedMemory(create=True, size=layout.nbytes)
        block = cls(layout, shm, owner=True)
        block.header[:] = 0
        block._payload[:] = 0.0
        return block

    @classmethod
    def attach(cls, layout: AccumulatorLayout, name: str, *,
               unregister: bool = False) -> "SharedAccumulatorBlock":
        shm = shared_memory.SharedMemory(name=name)
        if unregister:
            _unregister_attachment(shm)
        return cls(layout, shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def views(self) -> dict[str, np.ndarray]:
        """Per-slot float64 views, ready for ``bind_accumulator_views``."""
        views = {}
        for key, _ in self.layout.slots:
            start, length = self.layout.slot_range(key)
            views[key] = self._payload[start:start + length]
        return views

    def slot_counts(self) -> np.ndarray:
        """View of the per-slot report counters (header tail)."""
        return self.header[HEADER_FIXED_FIELDS:]

    def close(self) -> None:
        """Drop this mapping (and the segment itself for the owner)."""
        self.header = None
        self._payload = None
        self._shm.close()
        if self._owner:
            self._shm.unlink()


class SharedRowBuffer:
    """Shared-memory append-only row log for refit-mode workers.

    Layout after the common header: ``capacity`` int64 keys (global
    report indices), then a ``(capacity, n_attributes)`` int64 row
    region.  ``append`` is all-or-nothing per batch: a batch that does
    not fit is dropped whole and counted in the header, so the log
    never holds a partial batch.
    """

    def __init__(self, capacity: int, n_attributes: int,
                 shm: shared_memory.SharedMemory, owner: bool):
        self.capacity = int(capacity)
        self.n_attributes = int(n_attributes)
        self._shm = shm
        self._owner = owner
        self.header = np.ndarray((HEADER_FIXED_FIELDS,), dtype=np.int64,
                                 buffer=shm.buf)
        keys_offset = _WORD * HEADER_FIXED_FIELDS
        self.keys = np.ndarray((self.capacity,), dtype=np.int64,
                               buffer=shm.buf, offset=keys_offset)
        rows_offset = keys_offset + _WORD * self.capacity
        self.rows = np.ndarray((self.capacity, self.n_attributes),
                               dtype=np.int64, buffer=shm.buf,
                               offset=rows_offset)

    @staticmethod
    def nbytes(capacity: int, n_attributes: int) -> int:
        return _WORD * (HEADER_FIXED_FIELDS
                        + capacity * (1 + n_attributes))

    @classmethod
    def create(cls, capacity: int, n_attributes: int) -> "SharedRowBuffer":
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        shm = shared_memory.SharedMemory(
            create=True, size=cls.nbytes(capacity, n_attributes))
        buffer = cls(capacity, n_attributes, shm, owner=True)
        buffer.header[:] = 0
        return buffer

    @classmethod
    def attach(cls, capacity: int, n_attributes: int, name: str, *,
               unregister: bool = False) -> "SharedRowBuffer":
        shm = shared_memory.SharedMemory(name=name)
        if unregister:
            _unregister_attachment(shm)
        return cls(capacity, n_attributes, shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def n_rows(self) -> int:
        return int(self.header[HEADER_TOTAL_REPORTS])

    def append(self, seq: int, keys: np.ndarray, rows: np.ndarray) -> int:
        """Append one batch; returns rows stored (0 when dropped full)."""
        n = rows.shape[0]
        start = self.n_rows
        if start + n > self.capacity:
            self.header[HEADER_DROPPED_ROWS] += n
            self.header[HEADER_BATCHES_DONE] += 1
            self.header[HEADER_LAST_SEQ] = seq
            return 0
        self.keys[start:start + n] = keys
        self.rows[start:start + n] = rows
        self.header[HEADER_TOTAL_REPORTS] = start + n
        self.header[HEADER_BATCHES_DONE] += 1
        self.header[HEADER_LAST_SEQ] = seq
        return n

    def close(self) -> None:
        """Drop this mapping (and the segment itself for the owner)."""
        self.header = None
        self.keys = None
        self.rows = None
        self._shm.close()
        if self._owner:
            self._shm.unlink()
