"""Telemetry monitoring: weakly correlated usage metrics and mechanism choice.

Software telemetry (per-feature session times, counts of actions) is the
other scenario the paper's introduction motivates.  Telemetry attributes
are often only weakly correlated — the regime where the simple
independence-based MSW baseline is competitive — so this example compares
MSW, TDG and HDG on a Bfive-like (response-time) dataset and on a strongly
correlated census-like dataset, illustrating when the extra machinery of
HDG pays off and that it never hurts.

Run with:  python examples/telemetry_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (HDG, MSW, TDG, WorkloadGenerator, answer_workload,
                   make_dataset, mean_absolute_error)


def evaluate(dataset_name: str, epsilon: float, seed: int = 0) -> dict[str, float]:
    rng = np.random.default_rng(seed)
    dataset = make_dataset(dataset_name, n_users=150_000, n_attributes=6,
                           domain_size=64, rng=rng)
    generator = WorkloadGenerator(dataset.n_attributes, dataset.domain_size,
                                  rng=np.random.default_rng(seed + 1))
    queries = generator.random_workload(n_queries=100, dimension=3, volume=0.5)
    truths = answer_workload(dataset, queries)
    maes = {}
    for mechanism in (MSW(epsilon, seed=seed), TDG(epsilon, seed=seed),
                      HDG(epsilon, seed=seed)):
        mechanism.fit(dataset)
        estimates = mechanism.answer_workload(queries)
        maes[mechanism.name] = mean_absolute_error(estimates, truths)
    return maes


def main() -> None:
    epsilon = 1.0
    print(f"3-D range queries, epsilon={epsilon}, 150k users\n")
    gaps = {}
    for dataset_name, label in (("bfive", "telemetry-like (weak correlation)"),
                                ("normal", "strongly correlated metrics (cov 0.8)")):
        maes = evaluate(dataset_name, epsilon)
        print(f"{label}:")
        for method, mae in maes.items():
            print(f"  {method:4s} MAE = {mae:.5f}")
        winner = min(maes, key=maes.get)
        gaps[dataset_name] = maes["MSW"] - maes["HDG"]
        print(f"  -> best: {winner}\n")
    print("Takeaway: MSW leans on the independence assumption, so its edge "
          "over HDG shrinks (or flips) as correlation grows — here the "
          f"MSW-minus-HDG gap moves from {gaps['bfive']:+.4f} on the weakly "
          f"correlated data to {gaps['normal']:+.4f} on the correlated data. "
          "HDG never relies on that assumption, which is why the paper "
          "recommends it as the general-purpose choice.")


if __name__ == "__main__":
    main()
