"""Tests for the HDG mechanism."""

import numpy as np
import pytest

from repro.baselines import Uniform
from repro.core import HDG, IHDG, TDG
from repro.metrics import mean_absolute_error
from repro.queries import RangeQuery, answer_query, answer_workload


@pytest.fixture
def fitted_hdg(small_dataset):
    return HDG(epsilon=2.0, granularities=(8, 4), seed=0).fit(small_dataset)


def test_fit_builds_all_grids_and_matrices(fitted_hdg, small_dataset):
    d = small_dataset.n_attributes
    assert len(fitted_hdg.grids_1d) == d
    assert len(fitted_hdg.grids_2d) == d * (d - 1) // 2
    assert len(fitted_hdg.response_matrices) == d * (d - 1) // 2
    for matrix in fitted_hdg.response_matrices.values():
        assert matrix.shape == (small_dataset.domain_size,
                                small_dataset.domain_size)
        assert matrix.sum() == pytest.approx(1.0, abs=1e-4)
        assert (matrix >= 0).all()


def test_guideline_granularities_used_by_default(small_dataset):
    mechanism = HDG(epsilon=1.0, seed=0).fit(small_dataset)
    assert mechanism.chosen_g1 is not None and mechanism.chosen_g2 is not None
    assert mechanism.chosen_g1 >= mechanism.chosen_g2
    assert small_dataset.domain_size % mechanism.chosen_g1 == 0


def test_invalid_explicit_granularities_rejected():
    from repro.datasets import Dataset
    mechanism = HDG(epsilon=1.0, granularities=(2, 8))
    dataset = Dataset(np.zeros((10, 2), dtype=int), 16)
    with pytest.raises(ValueError):
        mechanism.fit(dataset)


def test_answers_2d_queries_reasonably(fitted_hdg, small_dataset, workload_2d):
    truths = answer_workload(small_dataset, workload_2d)
    estimates = fitted_hdg.answer_workload(workload_2d)
    assert mean_absolute_error(estimates, truths) < 0.1


def test_beats_uniform_and_tdg_on_correlated_data(small_dataset, workload_2d):
    truths = answer_workload(small_dataset, workload_2d)
    hdg = HDG(epsilon=2.0, granularities=(8, 4), seed=3).fit(small_dataset)
    tdg = TDG(epsilon=2.0, granularity=4, seed=3).fit(small_dataset)
    uni = Uniform().fit(small_dataset)
    mae_hdg = mean_absolute_error(hdg.answer_workload(workload_2d), truths)
    mae_tdg = mean_absolute_error(tdg.answer_workload(workload_2d), truths)
    mae_uni = mean_absolute_error(uni.answer_workload(workload_2d), truths)
    assert mae_hdg < mae_uni
    assert mae_hdg < mae_tdg


def test_full_domain_query_close_to_one(fitted_hdg, small_dataset):
    c = small_dataset.domain_size
    query = RangeQuery.from_dict({0: (0, c - 1), 1: (0, c - 1)})
    assert fitted_hdg.answer(query) == pytest.approx(1.0, abs=0.05)


def test_one_dimensional_query_uses_1d_grid(fitted_hdg, small_dataset):
    c = small_dataset.domain_size
    query = RangeQuery.from_dict({1: (0, c // 2 - 1)})
    estimate = fitted_hdg.answer(query)
    truth = answer_query(small_dataset, query)
    assert estimate == pytest.approx(truth, abs=0.1)


def test_lambda_query_estimation(fitted_hdg, small_dataset, workload_3d):
    truths = answer_workload(small_dataset, workload_3d)
    estimates = fitted_hdg.answer_workload(workload_3d)
    assert np.isfinite(estimates).all()
    # λ=3 estimates remain informative (clearly better than always-zero /
    # uniform guessing on this correlated dataset).
    uni = Uniform().fit(small_dataset)
    mae_uni = mean_absolute_error(uni.answer_workload(workload_3d), truths)
    assert mean_absolute_error(estimates, truths) < mae_uni


def test_estimate_with_history(fitted_hdg, workload_3d):
    answer, history = fitted_hdg.estimate_with_history(workload_3d[0])
    assert isinstance(answer, float)
    assert len(history) >= 1


def test_sigma_controls_user_split(small_dataset):
    low = HDG(epsilon=1.0, granularities=(8, 4), sigma=0.2, seed=0)
    high = HDG(epsilon=1.0, granularities=(8, 4), sigma=0.8, seed=0)
    low.fit(small_dataset)
    high.fit(small_dataset)
    # Both still answer queries sensibly.
    query = RangeQuery.from_dict({0: (0, 15), 1: (0, 15)})
    assert 0.0 <= low.answer(query) <= 1.2
    assert 0.0 <= high.answer(query) <= 1.2


def test_max_entropy_estimation_method(small_dataset, workload_3d):
    mechanism = HDG(epsilon=2.0, granularities=(8, 4), seed=0,
                    estimation_method="max_entropy").fit(small_dataset)
    estimates = mechanism.answer_workload(workload_3d)
    assert np.isfinite(estimates).all()


def test_ihdg_skips_postprocess(small_dataset):
    mechanism = IHDG(epsilon=1.0, granularities=(8, 4), seed=0).fit(small_dataset)
    assert mechanism.postprocess is False
    assert len(mechanism.response_matrices) == \
        small_dataset.n_attributes * (small_dataset.n_attributes - 1) // 2


def test_reproducible_with_seed(small_dataset, workload_2d):
    first = HDG(epsilon=1.0, granularities=(8, 4), seed=11).fit(small_dataset)
    second = HDG(epsilon=1.0, granularities=(8, 4), seed=11).fit(small_dataset)
    np.testing.assert_allclose(first.answer_workload(workload_2d),
                               second.answer_workload(workload_2d))


def test_matrix_iteration_history_recorded(fitted_hdg):
    assert len(fitted_hdg.matrix_iteration_history) == len(fitted_hdg.grids_2d)
    for history in fitted_hdg.matrix_iteration_history.values():
        assert len(history) >= 1
