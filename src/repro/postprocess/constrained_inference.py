"""Hay et al. constrained inference for interval hierarchies.

The LHIO baseline (Section 3.4) enforces consistency *within* a noisy
hierarchy of interval counts: different levels of the hierarchy give
independent, mutually inconsistent estimates of the same interval, and the
constrained-inference procedure of Hay et al. (PVLDB 2010) computes the
least-squares consistent estimate in two linear passes:

1. **Weighted averaging (bottom-up)** — each node's estimate is replaced
   by the variance-optimal combination of its own noisy count and the sum
   of its children's averaged counts.
2. **Mean consistency (top-down)** — each node's children are shifted by
   an equal share of the difference between the node's value and the sum
   of its children, so every parent equals the sum of its children.

The hierarchy is represented level by level as arrays of equal-width
interval counts, which is exactly how HIO/LHIO store them.
"""

from __future__ import annotations

import numpy as np


def weighted_average_pass(levels: list[np.ndarray], branching: int) -> list[np.ndarray]:
    """Bottom-up pass: blend each node with the sum of its children.

    ``levels[0]`` is the root level (one or more coarse intervals);
    ``levels[-1]`` is the leaf level.  Consecutive levels differ by a
    factor ``branching`` in length.  Uses the standard Hay et al. weights
    for a hierarchy where every node has equal noise variance:
    ``z_v = (b^h - b^(h-1)) / (b^h - 1) * y_v + (b^(h-1) - 1)/(b^h - 1) * sum(children)``
    where ``h`` is the node's height above the leaves.
    """
    if not levels:
        raise ValueError("hierarchy must have at least one level")
    blended = [level.astype(float).copy() for level in levels]
    n_levels = len(blended)
    for depth in range(n_levels - 2, -1, -1):
        height = n_levels - 1 - depth
        b_h = float(branching ** height)
        b_h1 = float(branching ** (height - 1))
        alpha = (b_h - b_h1) / (b_h - 1.0)
        child_sums = blended[depth + 1].reshape(len(blended[depth]), branching).sum(axis=1)
        blended[depth] = alpha * blended[depth] + (1.0 - alpha) * child_sums
    return blended


def mean_consistency_pass(levels: list[np.ndarray], branching: int) -> list[np.ndarray]:
    """Top-down pass: make every parent equal the sum of its children."""
    consistent = [level.astype(float).copy() for level in levels]
    for depth in range(len(consistent) - 1):
        parents = consistent[depth]
        children = consistent[depth + 1].reshape(len(parents), branching)
        child_sums = children.sum(axis=1)
        adjustment = (parents - child_sums) / branching
        children += adjustment[:, None]
        consistent[depth + 1] = children.reshape(-1)
    return consistent


def constrained_inference(levels: list[np.ndarray], branching: int) -> list[np.ndarray]:
    """Full Hay et al. constrained inference (both passes)."""
    _validate_hierarchy(levels, branching)
    return mean_consistency_pass(weighted_average_pass(levels, branching), branching)


def constrained_inference_2d(levels: dict[tuple[int, int], np.ndarray],
                             branching: int,
                             heights: tuple[int, int]) -> dict[tuple[int, int], np.ndarray]:
    """Consistency for a 2-D hierarchy, as used by LHIO.

    ``levels`` maps a 2-dim level ``(l1, l2)`` to a 2-D array of interval
    counts of shape ``(b^l1, b^l2)``.  Following the paper's description,
    the 1-D constrained inference is adapted to two dimensions by applying
    it twice — first along the first attribute (for every fixed level of
    the second), then along the second attribute — which removes the bulk
    of the within-hierarchy inconsistency.
    """
    h1, h2 = heights
    result = {key: value.astype(float).copy() for key, value in levels.items()}

    # Pass 1: for each fixed level of attribute 2, run 1-D inference over
    # attribute-1 levels, column by column.
    for l2 in range(h2 + 1):
        stack = [result[(l1, l2)] for l1 in range(h1 + 1)]
        n_cols = stack[0].shape[1]
        for col in range(n_cols):
            column_levels = [layer[:, col] for layer in stack]
            fixed = constrained_inference(column_levels, branching)
            for l1, values in enumerate(fixed):
                result[(l1, l2)][:, col] = values

    # Pass 2: symmetric, over attribute-2 levels for each fixed attribute-1 level.
    for l1 in range(h1 + 1):
        stack = [result[(l1, l2)] for l2 in range(h2 + 1)]
        n_rows = stack[0].shape[0]
        for row in range(n_rows):
            row_levels = [layer[row, :] for layer in stack]
            fixed = constrained_inference(row_levels, branching)
            for l2, values in enumerate(fixed):
                result[(l1, l2)][row, :] = values

    return result


def _validate_hierarchy(levels: list[np.ndarray], branching: int) -> None:
    if branching < 2:
        raise ValueError("branching factor must be >= 2")
    for depth in range(len(levels) - 1):
        expected = len(levels[depth]) * branching
        if len(levels[depth + 1]) != expected:
            raise ValueError(
                f"level {depth + 1} has {len(levels[depth + 1])} nodes, expected "
                f"{expected} (= {len(levels[depth])} parents x branching {branching})")
