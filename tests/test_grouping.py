"""Tests for user partitioning."""

import numpy as np
import pytest

from repro.protocol import (partition_users, partition_users_weighted,
                            split_population)


def test_partition_covers_every_user_once(rng):
    groups = partition_users(1_000, 7, rng)
    combined = np.concatenate(groups)
    assert len(combined) == 1_000
    assert len(np.unique(combined)) == 1_000


def test_partition_sizes_balanced(rng):
    groups = partition_users(1_003, 10, rng)
    sizes = [len(group) for group in groups]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 1_003


def test_partition_more_groups_than_users(rng):
    groups = partition_users(3, 10, rng)
    assert len(groups) == 10
    assert sum(len(group) for group in groups) == 3


def test_partition_is_random(rng):
    first = partition_users(100, 2, np.random.default_rng(0))
    second = partition_users(100, 2, np.random.default_rng(1))
    assert not np.array_equal(first[0], second[0])


def test_partition_invalid_inputs(rng):
    with pytest.raises(ValueError):
        partition_users(0, 2, rng)
    with pytest.raises(ValueError):
        partition_users(10, 0, rng)


def test_weighted_partition_respects_sizes(rng):
    groups = partition_users_weighted(100, [30, 70], rng)
    assert len(groups[0]) == 30
    assert len(groups[1]) == 70
    combined = np.concatenate(groups)
    assert len(np.unique(combined)) == 100


def test_weighted_partition_validates_sizes(rng):
    with pytest.raises(ValueError):
        partition_users_weighted(100, [30, 60], rng)
    with pytest.raises(ValueError):
        partition_users_weighted(100, [-10, 110], rng)


def test_split_population():
    first, second = split_population(100, 0.3)
    assert first == 30
    assert second == 70
    # Extremes are clamped so neither block is empty.
    first, second = split_population(10, 0.999)
    assert second >= 1
    with pytest.raises(ValueError):
        split_population(100, 0.0)
