"""HIO baseline: the d-dimensional Hierarchical Interval Optimization (Section 3.3).

HIO (Wang et al., SIGMOD 2019) builds a 1-D interval hierarchy per
attribute (branching factor ``b``, ``h + 1`` levels) and combines them into
a d-dimensional hierarchy with ``(h + 1)^d`` d-dim levels.  Users are
randomly divided into one group per d-dim level; each group reports, via
OLH, which d-dim interval of its level contains its record.  A range query
is answered by expanding it to all ``d`` attributes (unrestricted
attributes get the full-domain root interval), decomposing each attribute's
interval into the least set of hierarchy nodes, and summing the noisy
frequencies of every combination of per-attribute nodes.

Because the number of groups explodes with ``d`` and ``c``, each group is
tiny and the noise is enormous — HIO is the paper's example of failing the
curse-of-dimensionality and large-domain challenges.

Implementation note: a d-dim level can contain up to ``c^d`` intervals,
which cannot be materialised.  Levels whose interval count is below
``materialize_limit`` run the real OLH aggregation over the level's group;
larger levels are evaluated lazily — the frequency of a requested d-dim
interval is its true frequency within the group plus Gaussian noise with
the OLH estimation variance for that group size (the standard large-domain
simulation of a frequency oracle).  This keeps the mechanism's error
behaviour while keeping memory bounded; the substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..core.base import RangeQueryMechanism
from ..datasets import Dataset
from ..frequency_oracles import OptimizedLocalHash, olh_variance
from ..queries import RangeQuery
from .hierarchy import HierarchyNode, IntervalHierarchy


class HIO(RangeQueryMechanism):
    """Hierarchical Interval Optimization baseline.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    branching:
        Branching factor of every 1-D hierarchy (the paper uses 4).
    materialize_limit:
        Maximum number of intervals in a d-dim level for which the full
        OLH aggregation is materialised; larger levels fall back to the
        lazy noisy-lookup path.
    oracle_mode:
        OLH execution mode for materialised levels.
    seed:
        Randomness seed.
    """

    name = "HIO"

    #: Answering draws lazy noise and memoizes it (``_lazy_cache``), so
    #: concurrent answering must be serialized by the caller.
    answering_is_pure = False

    def __init__(self, epsilon: float, branching: int = 4,
                 materialize_limit: int = 1 << 16,
                 oracle_mode: str = "fast", seed: int | None = None):
        super().__init__(epsilon, seed)
        self.branching = int(branching)
        self.materialize_limit = int(materialize_limit)
        self.oracle_mode = oracle_mode
        self.hierarchy: IntervalHierarchy | None = None
        self._dataset: Dataset | None = None
        self._group_order: np.ndarray | None = None
        self._group_offsets: np.ndarray | None = None
        self._level_index: dict[tuple[int, ...], int] = {}
        self._materialized: dict[tuple[int, ...], np.ndarray] = {}
        self._lazy_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _fit(self, dataset: Dataset) -> None:
        self._dataset = dataset
        d = dataset.n_attributes
        self.hierarchy = IntervalHierarchy(dataset.domain_size, self.branching)
        levels_per_dim = self.hierarchy.n_levels
        all_levels = list(product(range(levels_per_dim), repeat=d))
        self._level_index = {level: i for i, level in enumerate(all_levels)}

        # Balanced random partition into one group per d-dim level, stored
        # as a permutation plus offsets so that millions of groups stay cheap.
        n_groups = len(all_levels)
        self._group_order = self.rng.permutation(dataset.n_users)
        base, extra = divmod(dataset.n_users, n_groups)
        sizes = np.full(n_groups, base, dtype=np.int64)
        sizes[:extra] += 1
        self._group_offsets = np.concatenate(([0], np.cumsum(sizes)))

        self._materialized = {}
        self._lazy_cache = {}

    # ------------------------------------------------------------------
    # Fitted-state serialization (snapshots; see docs/serving.md)
    #
    # HIO answers lazily: levels are materialised (drawing OLH
    # randomness) and over-limit intervals draw simulation noise on
    # first touch.  A bitwise-faithful snapshot therefore carries the
    # group assignment, every cache filled so far and — because future
    # lookups re-read the raw records — the dataset itself; the RNG
    # state travels in the base-class envelope.
    # ------------------------------------------------------------------
    def _snapshot_config(self) -> dict:
        return {"branching": self.branching,
                "materialize_limit": self.materialize_limit,
                "oracle_mode": self.oracle_mode}

    def _state_payload(self) -> dict:
        assert self._dataset is not None
        assert self._group_order is not None and self._group_offsets is not None
        return {
            "dataset": self._dataset.to_dict(),
            "group_order": self._group_order.tolist(),
            "group_offsets": self._group_offsets.tolist(),
            "materialized": {
                ",".join(str(part) for part in level): estimates.tolist()
                for level, estimates in self._materialized.items()},
            "lazy_cache": [[list(level), list(indices), value]
                           for (level, indices), value
                           in self._lazy_cache.items()],
        }

    def _restore_state_payload(self, payload: dict) -> None:
        self._dataset = Dataset.from_dict(payload["dataset"])
        self.hierarchy = IntervalHierarchy(self._dataset.domain_size,
                                           self.branching)
        all_levels = list(product(range(self.hierarchy.n_levels),
                                  repeat=self._n_attributes))
        self._level_index = {level: i for i, level in enumerate(all_levels)}
        self._group_order = np.asarray(payload["group_order"], dtype=np.int64)
        self._group_offsets = np.asarray(payload["group_offsets"],
                                         dtype=np.int64)
        self._materialized = {
            tuple(int(part) for part in key.split(",")):
                np.asarray(estimates, dtype=float)
            for key, estimates in payload["materialized"].items()}
        self._lazy_cache = {
            (tuple(int(part) for part in level),
             tuple(int(part) for part in indices)): float(value)
            for level, indices, value in payload["lazy_cache"]}

    # ------------------------------------------------------------------
    # Group and level helpers
    # ------------------------------------------------------------------
    def _group_members(self, level: tuple[int, ...]) -> np.ndarray:
        index = self._level_index[level]
        start, end = self._group_offsets[index], self._group_offsets[index + 1]
        return self._group_order[start:end]

    def _level_size(self, level: tuple[int, ...]) -> int:
        assert self.hierarchy is not None
        size = 1
        for one_dim_level in level:
            size *= self.hierarchy.nodes_at_level(one_dim_level)
        return size

    def _interval_indices(self, level: tuple[int, ...],
                          values: np.ndarray) -> np.ndarray:
        """Flattened d-dim interval index of each record at a d-dim level."""
        assert self.hierarchy is not None
        flat = np.zeros(values.shape[0], dtype=np.int64)
        for axis, one_dim_level in enumerate(level):
            width = self.hierarchy.node_width(one_dim_level)
            flat = flat * self.hierarchy.nodes_at_level(one_dim_level) + (
                values[:, axis] // width)
        return flat

    def _materialize_level(self, level: tuple[int, ...]) -> np.ndarray:
        assert self._dataset is not None
        members = self._group_members(level)
        size = self._level_size(level)
        if members.size == 0:
            return np.zeros(size)
        oracle = OptimizedLocalHash(self.epsilon, max(size, 2), rng=self.rng,
                                    mode=self.oracle_mode)
        indices = self._interval_indices(level, self._dataset.values[members])
        return oracle.estimate_frequencies(indices)[:size]

    def _lazy_frequency(self, level: tuple[int, ...],
                        nodes: tuple[HierarchyNode, ...]) -> float:
        """Noisy frequency of one d-dim interval without materialising the level."""
        assert self._dataset is not None
        members = self._group_members(level)
        n_group = max(int(members.size), 1)
        if members.size == 0:
            true_frequency = 0.0
        else:
            mask = np.ones(members.size, dtype=bool)
            for axis, node in enumerate(nodes):
                column = self._dataset.values[members, axis]
                mask &= (column >= node.low) & (column <= node.high)
            true_frequency = float(mask.mean())
        noise_std = float(np.sqrt(olh_variance(self.epsilon, n_group)))
        return true_frequency + float(self.rng.normal(0.0, noise_std))

    def _interval_frequency(self, nodes: tuple[HierarchyNode, ...]) -> float:
        assert self.hierarchy is not None
        level = tuple(node.level for node in nodes)
        if self._level_size(level) <= self.materialize_limit:
            if level not in self._materialized:
                self._materialized[level] = self._materialize_level(level)
            flat = 0
            for node in nodes:
                flat = flat * self.hierarchy.nodes_at_level(node.level) + node.index
            return float(self._materialized[level][flat])
        key = (level, tuple(node.index for node in nodes))
        if key not in self._lazy_cache:
            self._lazy_cache[key] = self._lazy_frequency(level, nodes)
        return self._lazy_cache[key]

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def _answer(self, query: RangeQuery) -> float:
        assert self.hierarchy is not None and self._n_attributes is not None
        decompositions: list[list[HierarchyNode]] = []
        for attribute in range(self._n_attributes):
            if attribute in query.attributes:
                low, high = query.interval(attribute)
            else:
                low, high = 0, self.hierarchy.domain_size - 1
            decompositions.append(self.hierarchy.decompose(low, high))
        if self.use_legacy_answering:
            answer = 0.0
            for combination in product(*decompositions):
                answer += self._interval_frequency(tuple(combination))
            return answer
        return self._answer_vectorized(decompositions)

    #: Combination-count ceiling for the fully-vectorised enumeration;
    #: above it the bucketed per-combination loop is used instead of
    #: materialising gigabyte-scale index meshes.
    VECTORIZE_COMBINATION_LIMIT = 1 << 20

    def _answer_vectorized(self, decompositions: list[list[HierarchyNode]]) -> float:
        """Enumerate and sum all node combinations without a Python loop.

        The cartesian product of the per-attribute decompositions is
        built as index meshes, each combination's d-dim level is packed
        into one integer code, and every distinct level is answered with
        a single fancy-indexed gather over its materialised estimates.
        Levels are materialised in the product's first-touch order, so
        the RNG stream — and therefore every answer — matches the legacy
        per-combination loop from a fresh fitted state.  Combinations
        involving over-limit (lazy) levels keep the bucketed loop, which
        interleaves lazy noise draws at the legacy iteration points.
        """
        assert self.hierarchy is not None
        level_arrays = [np.array([node.level for node in nodes], dtype=np.int64)
                        for nodes in decompositions]
        index_arrays = [np.array([node.index for node in nodes], dtype=np.int64)
                        for nodes in decompositions]
        n_combinations = 1
        for nodes in decompositions:
            n_combinations *= len(nodes)
        if n_combinations > self.VECTORIZE_COMBINATION_LIMIT:
            return self._answer_bucketed(decompositions)
        nodes_at = np.array([self.hierarchy.nodes_at_level(level)
                             for level in range(self.hierarchy.n_levels)],
                            dtype=np.int64)
        levels = np.stack([mesh.ravel() for mesh
                           in np.meshgrid(*level_arrays, indexing="ij")], axis=1)
        indices = np.stack([mesh.ravel() for mesh
                            in np.meshgrid(*index_arrays, indexing="ij")], axis=1)
        counts = nodes_at[levels]
        if np.any(counts.prod(axis=1) > self.materialize_limit):
            return self._answer_bucketed(decompositions)
        codes = np.zeros(levels.shape[0], dtype=np.int64)
        flat = np.zeros(levels.shape[0], dtype=np.int64)
        n_levels = self.hierarchy.n_levels
        for axis in range(levels.shape[1]):
            codes = codes * n_levels + levels[:, axis]
            flat = flat * counts[:, axis] + indices[:, axis]
        _, first_positions, inverse = np.unique(codes, return_index=True,
                                                return_inverse=True)
        answer = 0.0
        for group in np.argsort(first_positions, kind="stable"):
            level = tuple(int(l) for l in levels[first_positions[group]])
            if level not in self._materialized:
                self._materialized[level] = self._materialize_level(level)
            answer += float(
                self._materialized[level][flat[inverse == group]].sum())
        return answer

    def _answer_bucketed(self, decompositions: list[list[HierarchyNode]]) -> float:
        """Sum node combinations with one vectorised gather per d-dim level.

        Combinations living in a materialised level are collected into
        per-level index buckets and summed with a single fancy-indexed
        lookup; combinations of over-limit levels keep the lazy noisy
        path.  Both first-time level materialisations and lazy draws
        happen at the same iteration points as the legacy per-combination
        loop, so the RNG stream — and therefore every answer — matches
        the legacy path from a fresh fitted state, not just after the
        caches are warm.
        """
        assert self.hierarchy is not None
        answer = 0.0
        buckets: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for combination in product(*decompositions):
            level = tuple(node.level for node in combination)
            if self._level_size(level) <= self.materialize_limit:
                if level not in self._materialized:
                    self._materialized[level] = self._materialize_level(level)
                buckets.setdefault(level, []).append(
                    tuple(node.index for node in combination))
            else:
                answer += self._interval_frequency(tuple(combination))
        for level, index_tuples in buckets.items():
            indices = np.asarray(index_tuples, dtype=np.int64)
            flat = np.zeros(indices.shape[0], dtype=np.int64)
            for axis, one_dim_level in enumerate(level):
                flat = (flat * self.hierarchy.nodes_at_level(one_dim_level)
                        + indices[:, axis])
            answer += float(self._materialized[level][flat].sum())
        return answer
