"""Full mechanism comparison: regenerate one panel of the paper's Figure 1.

Uses the experiment harness (the same code the benchmarks drive) to sweep
the privacy budget on one dataset and print the per-mechanism MAE series —
a minimal version of Figure 1(e).

Run with:  python examples/mechanism_comparison.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, sweep_parameter


def main() -> None:
    config = ExperimentConfig(
        dataset="normal",
        n_users=100_000,
        n_attributes=6,
        domain_size=64,
        query_dimension=2,
        volume=0.5,
        n_queries=100,
        n_repeats=1,
        methods=("Uni", "MSW", "CALM", "LHIO", "TDG", "HDG"),
        seed=0,
    )
    sweep = sweep_parameter(config, "epsilon", [0.2, 0.5, 1.0, 2.0])
    print("Figure 1(e) style panel — MAE vs epsilon on the Normal dataset:\n")
    print(sweep.format_table())
    series = sweep.series()
    best_at_high_eps = min(series, key=lambda method: series[method][-1])
    print(f"\nbest mechanism at epsilon=2.0: {best_at_high_eps}")


if __name__ == "__main__":
    main()
