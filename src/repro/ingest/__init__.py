"""Distributed ingest tier: routed collector workers over shared memory.

See ``docs/ingest.md`` for the architecture.  The serving layer
(:class:`repro.serving.QueryService`) enables this tier with
``ingest_workers=N``; it can also be driven standalone::

    tier = IngestTier("TDG", 1.0, n_workers=4, n_attributes=4,
                      domain_size=16, seed=7, planning_users=100_000)
    tier.submit(rows)
    estimator = tier.coordinator.merge()
"""

from .routing import ConsistentHashRouter, mix64
from .shared_state import (AccumulatorLayout, SharedAccumulatorBlock,
                           SharedRowBuffer)
from .tier import (IngestBackpressureError, IngestError, IngestTier,
                   IngestWorkerError, MergeCoordinator)
from .worker import MECHANISM_CLASSES, WorkerSpec

__all__ = [
    "AccumulatorLayout",
    "ConsistentHashRouter",
    "IngestBackpressureError",
    "IngestError",
    "IngestTier",
    "IngestWorkerError",
    "MECHANISM_CLASSES",
    "MergeCoordinator",
    "SharedAccumulatorBlock",
    "SharedRowBuffer",
    "WorkerSpec",
    "mix64",
]
