"""MSW: Multiplied Square Wave baseline (Section 3.5).

MSW divides users into ``d`` groups, one per attribute; each group
estimates its attribute's 1-D distribution with the Square Wave mechanism
(EM reconstruction).  A λ-D range query is then answered by the product of
the per-attribute 1-D range answers, implicitly assuming the attributes
are independent.  MSW therefore handles large domains and avoids the curse
of dimensionality but completely loses attribute correlations — which is
exactly the failure mode the paper's experiments expose on correlated
datasets.
"""

from __future__ import annotations

import numpy as np

from ..core.base import RangeQueryMechanism
from ..datasets import Dataset
from ..frequency_oracles import SquareWave
from ..protocol import partition_users
from ..queries import RangeQuery


class MSW(RangeQueryMechanism):
    """Multiplied Square Wave baseline.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget (spent entirely on one SW report).
    em_iterations:
        Iteration cap of the EM reconstruction inside SW.
    smoothing:
        Whether SW applies the smoothing (EMS) variant.
    seed:
        Randomness seed.
    """

    name = "MSW"

    def __init__(self, epsilon: float, em_iterations: int = 200,
                 smoothing: bool = False, seed: int | None = None):
        super().__init__(epsilon, seed)
        self.em_iterations = int(em_iterations)
        self.smoothing = bool(smoothing)
        self.distributions: dict[int, np.ndarray] = {}
        self._prefixes: dict[int, np.ndarray] = {}

    def _fit(self, dataset: Dataset) -> None:
        d = dataset.n_attributes
        groups = partition_users(dataset.n_users, d, self.rng)
        self.distributions = {}
        for attribute, group in zip(range(d), groups):
            if group.size == 0:
                self.distributions[attribute] = np.full(
                    dataset.domain_size, 1.0 / dataset.domain_size)
                continue
            oracle = SquareWave(self.epsilon, dataset.domain_size, rng=self.rng,
                                em_iterations=self.em_iterations,
                                smoothing=self.smoothing)
            estimate = oracle.estimate_frequencies(dataset.column(attribute)[group])
            self.distributions[attribute] = estimate
        # Prefix sums turn each per-attribute interval mass into one
        # subtraction, for both single answers and batched workloads.
        self._prefixes = {
            attribute: np.concatenate(([0.0], np.cumsum(distribution)))
            for attribute, distribution in self.distributions.items()}

    # ------------------------------------------------------------------
    # Fitted-state serialization (snapshots; see docs/serving.md)
    # ------------------------------------------------------------------
    def _snapshot_config(self) -> dict:
        return {"em_iterations": self.em_iterations,
                "smoothing": self.smoothing}

    def _state_payload(self) -> dict:
        return {"distributions": {str(attribute): distribution.tolist()
                                  for attribute, distribution
                                  in self.distributions.items()}}

    def _restore_state_payload(self, payload: dict) -> None:
        self.distributions = {
            int(attribute): np.asarray(distribution, dtype=float)
            for attribute, distribution in payload["distributions"].items()}
        self._prefixes = {
            attribute: np.concatenate(([0.0], np.cumsum(distribution)))
            for attribute, distribution in self.distributions.items()}

    def _interval_mass(self, attribute: int, low: int, high: int) -> float:
        prefix = self._prefixes[attribute]
        return float(prefix[high + 1] - prefix[low])

    def _answer(self, query: RangeQuery) -> float:
        if self.use_legacy_answering:
            answer = 1.0
            for predicate in query.predicates:
                distribution = self.distributions[predicate.attribute]
                answer *= float(
                    distribution[predicate.low:predicate.high + 1].sum())
            return answer
        answer = 1.0
        for predicate in query.predicates:
            answer *= self._interval_mass(predicate.attribute, predicate.low,
                                          predicate.high)
        return answer

    def _answer_workload(self, queries: list[RangeQuery]) -> np.ndarray:
        """Product of per-predicate prefix differences, one vectorised pass."""
        masses = np.array([self._interval_mass(predicate.attribute,
                                               predicate.low, predicate.high)
                           for query in queries
                           for predicate in query.predicates])
        counts = np.array([query.dimension for query in queries])
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        return np.multiply.reduceat(masses, offsets)
