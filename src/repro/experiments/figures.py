"""Reproduction drivers for the paper's main-body figures and Table 2.

Every public function regenerates one figure's data series (per-method MAE
against the swept parameter).  The paper-scale settings (n = 10^6, 200
queries, 10 repeats, all four datasets) are expensive; each driver
therefore accepts the relevant knobs with laptop-friendly defaults and the
benchmark harness passes explicit values.  The shapes the paper reports —
which method wins, by roughly what factor, where the crossovers lie — are
preserved at reduced scale because all mechanisms face the same population
and workload.
"""

from __future__ import annotations

from .config import DEFAULT_METHODS, METHODS_WITHOUT_HIO, ExperimentConfig
from .runner import SweepResult, run_experiment, sweep_parameter

#: ε grid used throughout the paper's ε sweeps.
PAPER_EPSILONS = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)

#: ω grid of Figure 2.
PAPER_VOLUMES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Granularity combinations enumerated in Figures 7 and 16.
GUIDELINE_COMBINATIONS = ((4, 2), (8, 2), (8, 4), (16, 2), (16, 4), (16, 8),
                          (32, 2), (32, 4), (32, 8), (32, 16))


def _base_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig().with_overrides(**overrides)


def figure_1_vary_epsilon(datasets=("ipums", "bfive", "normal", "laplace"),
                          epsilons=PAPER_EPSILONS, query_dimensions=(2, 4),
                          methods=DEFAULT_METHODS, n_users=100_000,
                          n_attributes=6, domain_size=64, volume=0.5,
                          n_queries=200, n_repeats=1,
                          seed=0) -> dict[tuple[str, int], SweepResult]:
    """Figure 1: MAE vs ε on every dataset for λ = 2 and λ = 4."""
    results = {}
    for dataset in datasets:
        for dimension in query_dimensions:
            config = _base_config(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes,
                                  domain_size=domain_size, volume=volume,
                                  query_dimension=dimension,
                                  n_queries=n_queries, n_repeats=n_repeats,
                                  methods=tuple(methods), seed=seed)
            results[(dataset, dimension)] = sweep_parameter(config, "epsilon",
                                                            list(epsilons))
    return results


def figure_2_vary_volume(datasets=("ipums", "bfive", "normal", "laplace"),
                         volumes=PAPER_VOLUMES, query_dimensions=(2, 4),
                         methods=DEFAULT_METHODS, n_users=100_000,
                         n_attributes=6, domain_size=64, epsilon=1.0,
                         n_queries=200, n_repeats=1,
                         seed=0) -> dict[tuple[str, int], SweepResult]:
    """Figure 2: MAE vs query volume ω."""
    results = {}
    for dataset in datasets:
        for dimension in query_dimensions:
            config = _base_config(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes,
                                  domain_size=domain_size, epsilon=epsilon,
                                  query_dimension=dimension,
                                  n_queries=n_queries, n_repeats=n_repeats,
                                  methods=tuple(methods), seed=seed)
            results[(dataset, dimension)] = sweep_parameter(config, "volume",
                                                            list(volumes))
    return results


def figure_3_vary_domain(datasets=("normal", "laplace"),
                         domain_sizes=(16, 32, 64, 128, 256, 512, 1024),
                         query_dimensions=(2, 4),
                         methods=METHODS_WITHOUT_HIO, n_users=100_000,
                         n_attributes=6, epsilon=1.0, volume=0.5,
                         n_queries=200, n_repeats=1,
                         seed=0) -> dict[tuple[str, int], SweepResult]:
    """Figure 3: MAE vs domain size c on the synthetic datasets."""
    results = {}
    for dataset in datasets:
        for dimension in query_dimensions:
            config = _base_config(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes, epsilon=epsilon,
                                  volume=volume, query_dimension=dimension,
                                  n_queries=n_queries, n_repeats=n_repeats,
                                  methods=tuple(methods), seed=seed)
            results[(dataset, dimension)] = sweep_parameter(
                config, "domain_size", list(domain_sizes))
    return results


def figure_4_vary_attributes(datasets=("ipums", "bfive", "normal", "laplace"),
                             attribute_counts=(3, 4, 5, 6, 7, 8, 9, 10),
                             query_dimensions=(2, 4),
                             methods=METHODS_WITHOUT_HIO, n_users=100_000,
                             domain_size=64, epsilon=1.0, volume=0.5,
                             n_queries=200, n_repeats=1,
                             seed=0) -> dict[tuple[str, int], SweepResult]:
    """Figure 4: MAE vs number of attributes d."""
    results = {}
    for dataset in datasets:
        for dimension in query_dimensions:
            valid_counts = [d for d in attribute_counts if d >= dimension]
            config = _base_config(dataset=dataset, n_users=n_users,
                                  domain_size=domain_size, epsilon=epsilon,
                                  volume=volume, query_dimension=dimension,
                                  n_queries=n_queries, n_repeats=n_repeats,
                                  methods=tuple(methods), seed=seed)
            results[(dataset, dimension)] = sweep_parameter(
                config, "n_attributes", valid_counts)
    return results


def figure_5_vary_query_dimension(datasets=("ipums", "bfive", "normal", "laplace"),
                                  query_dimensions=(2, 3, 4, 5, 6, 7, 8, 9, 10),
                                  methods=METHODS_WITHOUT_HIO, n_users=100_000,
                                  n_attributes=6, domain_size=64, epsilon=1.0,
                                  volume=0.5, n_queries=200, n_repeats=1,
                                  seed=0) -> dict[str, SweepResult]:
    """Figure 5: MAE vs query dimension λ (capped at d)."""
    results = {}
    for dataset in datasets:
        valid_dims = [dim for dim in query_dimensions if dim <= n_attributes]
        config = _base_config(dataset=dataset, n_users=n_users,
                              n_attributes=n_attributes, domain_size=domain_size,
                              epsilon=epsilon, volume=volume,
                              n_queries=n_queries, n_repeats=n_repeats,
                              methods=tuple(methods), seed=seed)
        results[dataset] = sweep_parameter(config, "query_dimension", valid_dims)
    return results


def figure_6_vary_population(datasets=("normal", "laplace"),
                             populations=(100_000, 250_000, 630_000, 1_000_000),
                             query_dimensions=(2, 4), methods=DEFAULT_METHODS,
                             n_attributes=6, domain_size=64, epsilon=1.0,
                             volume=0.5, n_queries=200, n_repeats=1,
                             seed=0) -> dict[tuple[str, int], SweepResult]:
    """Figure 6: MAE vs population n on the synthetic datasets."""
    results = {}
    for dataset in datasets:
        for dimension in query_dimensions:
            config = _base_config(dataset=dataset, n_attributes=n_attributes,
                                  domain_size=domain_size, epsilon=epsilon,
                                  volume=volume, query_dimension=dimension,
                                  n_queries=n_queries, n_repeats=n_repeats,
                                  methods=tuple(methods), seed=seed)
            results[(dataset, dimension)] = sweep_parameter(config, "n_users",
                                                            list(populations))
    return results


def figure_7_guideline(datasets=("ipums", "bfive", "normal", "laplace"),
                       epsilons=PAPER_EPSILONS,
                       combinations=GUIDELINE_COMBINATIONS, n_users=100_000,
                       n_attributes=6, domain_size=64, volume=0.5,
                       n_queries=200, n_repeats=1,
                       seed=0) -> dict[str, SweepResult]:
    """Figure 7: guideline-chosen HDG vs every fixed (g1, g2) combination, λ = 2."""
    methods = tuple(f"HDG({g1},{g2})" for g1, g2 in combinations) + ("HDG",)
    results = {}
    for dataset in datasets:
        config = _base_config(dataset=dataset, n_users=n_users,
                              n_attributes=n_attributes, domain_size=domain_size,
                              volume=volume, query_dimension=2,
                              n_queries=n_queries, n_repeats=n_repeats,
                              methods=methods, seed=seed)
        results[dataset] = sweep_parameter(config, "epsilon", list(epsilons))
    return results


def figure_8_component_ablation(datasets=("ipums", "bfive", "normal", "laplace"),
                                epsilons=PAPER_EPSILONS, query_dimensions=(2, 4),
                                n_users=100_000, n_attributes=6, domain_size=64,
                                volume=0.5, n_queries=200, n_repeats=1,
                                seed=0) -> dict[tuple[str, int], SweepResult]:
    """Figure 8: Phase-2 ablation — ITDG/IHDG vs TDG/HDG."""
    methods = ("ITDG", "IHDG", "TDG", "HDG")
    results = {}
    for dataset in datasets:
        for dimension in query_dimensions:
            config = _base_config(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes,
                                  domain_size=domain_size, volume=volume,
                                  query_dimension=dimension,
                                  n_queries=n_queries, n_repeats=n_repeats,
                                  methods=methods, seed=seed)
            results[(dataset, dimension)] = sweep_parameter(config, "epsilon",
                                                            list(epsilons))
    return results


def table_2_granularities(epsilons=PAPER_EPSILONS,
                          settings=None, domain_size=64,
                          alpha1=None, alpha2=None) -> dict:
    """Table 2: recommended (g1, g2) for each (d, lg n, ε) setting."""
    from ..core import (DEFAULT_ALPHA1, DEFAULT_ALPHA2,
                        recommended_granularity_table)
    if settings is None:
        settings = ([(d, 6.0) for d in range(3, 11)]
                    + [(6, lg) for lg in (5.0, 5.2, 5.4, 5.6, 5.8, 6.0,
                                          6.2, 6.4, 6.6, 6.8, 7.0)])
    return recommended_granularity_table(
        list(epsilons), settings,
        alpha1=DEFAULT_ALPHA1 if alpha1 is None else alpha1,
        alpha2=DEFAULT_ALPHA2 if alpha2 is None else alpha2,
        domain_size=domain_size)


def format_figure_results(results: dict, title: str) -> str:
    """Render a figure's sweep results as text tables (one per panel)."""
    lines = [f"== {title} =="]
    for key, sweep in results.items():
        lines.append(f"-- panel {key} --")
        lines.append(sweep.format_table())
        lines.append("")
    return "\n".join(lines)
