"""Tests for the Maximum-Entropy (IPF) combiner."""

import numpy as np
import pytest

from repro.estimation import Constraint, max_entropy_estimate, weighted_update


def test_result_is_a_distribution():
    constraints = [Constraint(indices=np.array([0, 1]), target=0.4)]
    estimate = max_entropy_estimate(4, constraints)
    assert (estimate >= 0).all()
    assert estimate.sum() == pytest.approx(1.0, abs=1e-6)


def test_constraints_are_satisfied():
    constraints = [Constraint(indices=np.array([0, 1]), target=0.3),
                   Constraint(indices=np.array([0, 2]), target=0.6)]
    estimate = max_entropy_estimate(4, constraints)
    assert estimate[[0, 1]].sum() == pytest.approx(0.3, abs=1e-4)
    assert estimate[[0, 2]].sum() == pytest.approx(0.6, abs=1e-4)


def test_independent_marginals_give_product_distribution():
    row0 = Constraint(indices=np.array([0, 1]), target=0.3)
    col0 = Constraint(indices=np.array([0, 2]), target=0.4)
    estimate = max_entropy_estimate(4, [row0, col0])
    expected = np.array([0.3 * 0.4, 0.3 * 0.6, 0.7 * 0.4, 0.7 * 0.6])
    np.testing.assert_allclose(estimate, expected, atol=1e-3)


def test_targets_are_clipped_to_unit_interval():
    constraints = [Constraint(indices=np.array([0]), target=1.7)]
    estimate = max_entropy_estimate(3, constraints)
    assert estimate[0] == pytest.approx(1.0, abs=1e-6)


def test_agrees_with_weighted_update_on_well_posed_problem():
    constraints = [Constraint(indices=np.array([0, 1]), target=0.25),
                   Constraint(indices=np.array([2, 3]), target=0.75),
                   Constraint(indices=np.array([0, 2]), target=0.5)]
    maxent = max_entropy_estimate(4, constraints)
    wu = weighted_update(4, constraints, max_iterations=500).estimate
    # Both combiners should land on essentially the same distribution
    # (the paper reports "almost the same accuracy").
    np.testing.assert_allclose(maxent, wu, atol=5e-3)


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        max_entropy_estimate(0, [Constraint(indices=np.array([0]), target=0.5)])
    with pytest.raises(ValueError):
        max_entropy_estimate(4, [])
