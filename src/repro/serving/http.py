"""Stdlib HTTP front-end for :class:`~repro.serving.QueryService`.

The API is a small JSON-over-HTTP surface on
:class:`http.server.ThreadingHTTPServer` — no third-party dependencies,
one thread per request, the service's internal lock serializing state
changes:

=======  =============  ====================================================
Method   Path           Meaning
=======  =============  ====================================================
GET      ``/healthz``   Service status document + package version
POST     ``/ingest``    ``{"rows": [[...], ...], "domain_size"?: c}``
POST     ``/query``     ``{"queries": [...]}`` — typed wire queries (range,
                        marginal, point, count, topk; see
                        :func:`repro.serving.query_from_wire`)
POST     ``/refinalize``  Force a re-finalize of the pending reports
POST     ``/snapshot``  Write a snapshot version (requires a store)
GET      ``/snapshot``  List stored snapshot versions
=======  =============  ====================================================

Errors return ``{"error": msg}``: 400 for malformed payloads, 404 for
unknown paths, 409 for operations the service cannot perform in its
current state (not ready, static mode, no snapshot store).

Build a bound server with :func:`build_server` (``port=0`` picks a free
port — the tests and the in-process quickstart rely on that) and run it
with :func:`serve` or the server's own ``serve_forever``.  The CLI verb
``repro serve`` wraps exactly this module; docs/serving.md shows the
curl transcript.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .._version import package_version
from .service import QueryService, ServiceError
from .snapshot import SnapshotStore

__all__ = ["ServingHTTPServer", "ServingRequestHandler", "build_server",
           "serve"]


class ServingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that waits for in-flight handlers on close.

    ``ThreadingHTTPServer`` runs handlers on daemon threads and does
    not join them in ``server_close``; a bounded ``repro serve
    --max-requests`` run would then exit mid-response.  Non-daemon
    threads make ``server_close()`` block until every started response
    has been written (connections are per-request, so handlers finish
    promptly).
    """

    daemon_threads = False


class ServingRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto one :class:`QueryService`.

    Subclasses produced by :func:`build_server` bind the ``service``,
    ``snapshot_store`` and ``verbose`` class attributes.
    """

    service: QueryService
    snapshot_store: SnapshotStore | None = None
    verbose: bool = False

    server_version = "repro-serving/1.0"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        document = json.loads(self.rfile.read(length))
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Read-only routes: ``/healthz`` and the snapshot listing."""
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "version": package_version(),
                                  **self.service.status()})
        elif self.path == "/snapshot":
            if self.snapshot_store is None:
                self._send_json(409, {"error": "no snapshot store configured "
                                               "(start with --snapshot-dir)"})
            else:
                self._send_json(200, {
                    "directory": str(self.snapshot_store.directory),
                    "versions": self.snapshot_store.versions(),
                    "latest": self.snapshot_store.latest_version(),
                })
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """State-changing routes: ingest, query, refinalize, snapshot."""
        try:
            if self.path == "/ingest":
                payload = self._read_json()
                receipt = self.service.ingest(payload["rows"],
                                              payload.get("domain_size"))
                self._send_json(200, receipt)
            elif self.path == "/query":
                payload = self._read_json()
                self._send_json(200, self.service.query_wire(payload["queries"]))
            elif self.path == "/refinalize":
                self._send_json(200, self.service.refinalize())
            elif self.path == "/snapshot":
                if self.snapshot_store is None:
                    raise ServiceError("no snapshot store configured "
                                       "(start with --snapshot-dir)")
                info = self.service.save_snapshot(self.snapshot_store)
                self._send_json(200, {"version": info.version,
                                      "path": str(info.path)})
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except ServiceError as error:
            self._send_json(409, {"error": str(error)})
        except (KeyError, ValueError, TypeError) as error:
            self._send_json(400, {"error": f"bad request: {error}"})


def build_server(service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, snapshot_store: SnapshotStore | None = None,
                 verbose: bool = False) -> ThreadingHTTPServer:
    """A bound (not yet running) threaded HTTP server over ``service``.

    ``port=0`` binds any free port; read the result from
    ``server.server_address``.
    """
    handler = type("BoundServingRequestHandler", (ServingRequestHandler,),
                   {"service": service, "snapshot_store": snapshot_store,
                    "verbose": verbose})
    return ServingHTTPServer((host, port), handler)


def serve(server: ThreadingHTTPServer,
          max_requests: int | None = None) -> None:
    """Run the accept loop: forever, or for ``max_requests`` requests.

    The bounded form exists for smoke tests and scripted ops checks
    (``repro serve --max-requests N``); callers still own
    ``server.server_close()``, which waits for in-flight handler
    threads.
    """
    if max_requests is None:
        server.serve_forever()
    else:
        for _ in range(max_requests):
            server.handle_request()
