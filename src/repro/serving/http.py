"""Stdlib HTTP front-end for :class:`~repro.serving.QueryService`.

The API is a small JSON-over-HTTP surface on a worker-pool server — no
third-party dependencies.  Connections are accepted on the listener
thread and handed to a bounded :class:`~concurrent.futures.
ThreadPoolExecutor`, each worker serving its connection's requests
(HTTP/1.1 keep-alive) with the service's internal lock serializing
state changes:

=======  =================  ================================================
Method   Path               Meaning
=======  =================  ================================================
GET      ``/healthz``       Liveness: status document + package version (and,
                            in multi-tenant mode, the ``storage``,
                            ``resilience`` and ``load`` sections)
GET      ``/readyz``        Readiness: 200 only when every tenant is
                            serving (no open breakers, nothing quarantined)
POST     ``/ingest``        ``{"rows": [[...], ...], "domain_size"?: c}``
POST     ``/query``         ``{"queries": [...]}`` — one typed wire
                            workload — or ``{"workloads": [[...], ...]}`` —
                            a batch answered under one lock acquisition (see
                            :meth:`~repro.serving.QueryService.query_wire_batch`)
POST     ``/refinalize``    Force a re-finalize of the pending reports
POST     ``/snapshot``      Write a snapshot version (requires a store)
GET      ``/snapshot``      List stored snapshot versions
GET      ``/tenants``       List hosted tenants (multi-tenant mode)
POST     ``/tenants``       Create a tenant: ``{"name": n, "config": {...}}``
GET      ``/tenants/<n>``   Inspect one tenant (config, status, snapshots)
DELETE   ``/tenants/<n>``   Delete a tenant and all its stored state
=======  =================  ================================================

When the server is built with a :class:`~repro.serving.tenants.
TenantManager`, the four serving routes take an optional tenant name —
``"tenant"`` in the POST body or ``?tenant=<name>`` on the URL — and
route to that tenant's service; requests without one fall back to the
``default`` tenant, so the single-tenant wire format keeps working
unchanged.  Ingest then flows through the manager's write-ahead log
(the receipt gains ``wal_seq``), and ``/snapshot`` persists through the
storage backend instead of a bare directory store.

Errors return a structured body ``{"error": msg, "code": code}``:
400 ``bad-request`` for malformed payloads (including bodies that are
not valid JSON and unknown query ``"type"`` values), 404 ``not-found``
for unknown paths, 404 ``unknown-tenant`` for routes naming a tenant
that does not exist, 409 ``conflict`` for operations the service cannot
perform in its current state (not ready, static mode, no snapshot
store, duplicate tenant), 429 ``quota-exceeded`` when an ingest batch
would push a tenant past its configured quota, 503 ``degraded`` (with a
``Retry-After`` header) when a tenant's write-ahead log is unavailable
or the tenant is quarantined, 503 ``overloaded`` (also ``Retry-After``)
when the bounded admission queue is full, and 500 ``internal`` for
unexpected failures — never a raw traceback on the wire.

Build a bound server with :func:`build_server` (``port=0`` picks a free
port — the tests and the in-process quickstart rely on that) and run it
with :func:`serve` or the server's own ``serve_forever``.  The CLI verb
``repro serve`` wraps exactly this module; docs/serving.md shows the
curl transcript.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, HTTPServer
from urllib.parse import parse_qs, urlsplit

from .._version import package_version
from ..resilience import DegradedServiceError
from ..storage.base import (DEFAULT_TENANT, TenantExistsError,
                            UnknownTenantError)
from .service import QueryService, ServiceError
from .snapshot import SnapshotStore
from .tenants import QuotaExceededError, TenantManager

__all__ = ["ServingHTTPServer", "ServingRequestHandler", "build_server",
           "serve"]

logger = logging.getLogger("repro.serving")

#: Default size of the request worker pool.
DEFAULT_WORKERS = 8

#: Default admission queue: connections accepted beyond the worker
#: count that wait for a free worker instead of being shed.
DEFAULT_QUEUE_DEPTH = 16

#: Pre-rendered load-shedding response, written on the listener thread
#: (no worker, no handler) so an overloaded server still answers fast.
_SHED_BODY = json.dumps({
    "error": "server overloaded: admission queue full; retry later",
    "code": "overloaded",
}).encode("utf-8")
_SHED_RESPONSE = (b"HTTP/1.1 503 Service Unavailable\r\n"
                  b"Content-Type: application/json\r\n"
                  b"Retry-After: 1\r\n"
                  b"Connection: close\r\n"
                  b"Content-Length: " + str(len(_SHED_BODY)).encode()
                  + b"\r\n\r\n" + _SHED_BODY)


class ServingHTTPServer(HTTPServer):
    """HTTP server dispatching connections onto a bounded worker pool.

    ``ThreadingHTTPServer`` spawns an unbounded thread per connection
    and (with daemon threads) may exit mid-response; with non-daemon
    threads every connection still pays thread start-up on the accept
    path.  This server keeps a fixed pool of warm workers instead: the
    listener thread only accepts and enqueues, a worker owns the
    connection for its whole keep-alive lifetime, and
    ``server_close()`` drains the pool so every started response is
    written before shutdown completes.

    Admission is bounded: at most ``workers + queue_depth`` connections
    are in flight (being served or waiting for a worker).  Beyond that
    the listener thread itself writes a pre-rendered 503 ``overloaded``
    response (with ``Retry-After``) and closes the connection — load
    shedding never waits on a worker, so a saturated pool cannot grow
    an unbounded backlog of accepted-but-unserved sockets.
    """

    def __init__(self, server_address, RequestHandlerClass,
                 workers: int = DEFAULT_WORKERS,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.workers = workers
        self.queue_depth = queue_depth
        self._admission_lock = threading.Lock()
        self._in_flight = 0
        self._shed_connections = 0
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serving-worker")
        super().__init__(server_address, RequestHandlerClass)

    @property
    def capacity(self) -> int:
        """Maximum connections in flight before shedding starts."""
        return self.workers + self.queue_depth

    def process_request(self, request, client_address) -> None:
        with self._admission_lock:
            admitted = self._in_flight < self.capacity
            if admitted:
                self._in_flight += 1
            else:
                self._shed_connections += 1
        if not admitted:
            self._shed(request, client_address)
            return
        self._pool.submit(self._process_in_worker, request, client_address)

    def _shed(self, request, client_address) -> None:
        """Refuse one connection on the listener thread (static 503)."""
        logger.warning("shedding connection from %s:%s: at capacity "
                       "(%d in flight)", *client_address[:2], self.capacity)
        try:
            request.sendall(_SHED_RESPONSE)
        except OSError:
            pass  # client already gone; nothing to tell it
        finally:
            self.shutdown_request(request)

    def _process_in_worker(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception as error:
            # A handler crash must cost exactly one connection: log it
            # (with the peer, so floods are attributable) and fall
            # through to the socket shutdown — never kill the worker
            # or leave the client hanging on a half-open socket.
            logger.warning("connection from %s:%s aborted: %s: %s",
                           *client_address[:2],
                           type(error).__name__, error)
        finally:
            self.shutdown_request(request)
            with self._admission_lock:
                self._in_flight -= 1

    def load_status(self) -> dict:
        """The ``/healthz`` load section: pool and admission counters."""
        with self._admission_lock:
            return {
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "shed_connections": self._shed_connections,
            }

    def server_close(self) -> None:
        super().server_close()
        self._pool.shutdown(wait=True)


class ServingRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto one :class:`QueryService`.

    Subclasses produced by :func:`build_server` bind the ``service``,
    ``snapshot_store``, ``tenant_manager`` and ``verbose`` class
    attributes.  With a ``tenant_manager``, serving routes resolve a
    tenant per request; without one, the server runs in the original
    single-service mode.
    """

    service: QueryService | None = None
    snapshot_store: SnapshotStore | None = None
    tenant_manager: TenantManager | None = None
    verbose: bool = False

    server_version = "repro-serving/1.0"
    #: HTTP/1.1 keeps connections alive across requests, so a client
    #: posting a stream of workloads pays the TCP/accept cost once.
    protocol_version = "HTTP/1.1"
    #: Socket timeout: an idle keep-alive connection releases its pool
    #: worker after this many seconds instead of pinning it forever.
    timeout = 5.0
    #: TCP_NODELAY: a response is written as two small sends (headers,
    #: body); with Nagle on, the second waits for the client's delayed
    #: ACK — a ~40 ms stall per keep-alive request.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, document: dict,
                   headers: dict | None = None) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        """Structured error body: ``error`` stays a plain string (the
        stable field clients match on), ``code`` is the machine tag."""
        self._send_json(status, {"error": message, "code": code})

    def _send_degraded(self, error: DegradedServiceError) -> None:
        """503 ``degraded`` with a ``Retry-After`` header.

        The body carries the tenant and the retry hint too, so clients
        that cannot read headers (or log aggregators) still see them.
        """
        retry_after = max(1, math.ceil(error.retry_after))
        body = json.dumps({"error": str(error), "code": "degraded",
                           "tenant": error.tenant,
                           "retry_after": retry_after}).encode("utf-8")
        self.send_response(503)
        self.send_header("Content-Type", "application/json")
        self.send_header("Retry-After", str(retry_after))
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        """The request body as a JSON object.

        Always consumes the full ``Content-Length`` before raising, so
        a malformed body never desynchronizes a keep-alive connection.
        """
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        document = json.loads(raw)
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    # Tenant resolution
    # ------------------------------------------------------------------
    def _split_path(self) -> tuple[str, dict]:
        """``self.path`` as (path, single-valued query params)."""
        parsed = urlsplit(self.path)
        params = {key: values[-1]
                  for key, values in parse_qs(parsed.query).items()}
        return parsed.path, params

    def _tenant_of(self, payload: dict, params: dict) -> str:
        """The tenant a serving request routes to (default fallback)."""
        return str(payload.get("tenant") or params.get("tenant")
                   or DEFAULT_TENANT)

    def _service_for(self, tenant: str) -> QueryService:
        """The :class:`QueryService` answering for ``tenant``."""
        if self.tenant_manager is not None:
            return self.tenant_manager.service(tenant)
        return self.service

    def _healthz_document(self, params: dict) -> dict:
        """``GET /healthz``: liveness — always 200 while the process
        answers; degradation is reported inline, not via the status."""
        document = {"status": "ok", "version": package_version()}
        document["load"] = self.server.load_status()
        if self.tenant_manager is None:
            return {**document, **self.service.status()}
        storage = self.tenant_manager.storage_status()
        tenant = self._tenant_of({}, params)
        if self.tenant_manager.has_tenant(tenant):
            document.update(self.tenant_manager.service(tenant).status())
            document["tenant"] = tenant
        document["storage"] = storage
        document["resilience"] = self.tenant_manager.resilience_status()
        return document

    def _readyz(self) -> None:
        """``GET /readyz``: readiness — 503 while any tenant is
        degraded or quarantined (or, single-service, not ready)."""
        if self.tenant_manager is None:
            ready = bool(self.service.is_ready)
            document = {"ready": ready}
        else:
            ready, document = self.tenant_manager.readiness()
        self._send_json(200 if ready else 503, document)

    def _snapshot_listing(self, tenant: str) -> dict:
        """``GET /snapshot``: versions from the store or metadata tables."""
        if self.tenant_manager is not None:
            records = self.tenant_manager.backend.list_snapshots(tenant)
            return {
                "tenant": tenant,
                "location": self.tenant_manager.backend.location(),
                "versions": [record.version for record in records],
                "latest": records[-1].version if records else None,
                "snapshots": [record.to_document() for record in records],
            }
        if self.snapshot_store is None:
            raise ServiceError("no snapshot store configured "
                               "(start with --snapshot-dir)")
        return {
            "directory": str(self.snapshot_store.directory),
            "versions": self.snapshot_store.versions(),
            "latest": self.snapshot_store.latest_version(),
        }

    def _save_snapshot(self, tenant: str) -> dict:
        """``POST /snapshot``: persist through the manager or the store."""
        if self.tenant_manager is not None:
            record = self.tenant_manager.save_snapshot(tenant)
            return {"tenant": tenant, "version": record.version,
                    "wal_seq": record.wal_seq,
                    "size_bytes": record.size_bytes}
        if self.snapshot_store is None:
            raise ServiceError("no snapshot store configured "
                               "(start with --snapshot-dir)")
        info = self.service.save_snapshot(self.snapshot_store)
        return {"version": info.version, "path": str(info.path)}

    def _require_manager(self) -> TenantManager:
        if self.tenant_manager is None:
            raise ServiceError("multi-tenant administration needs a storage "
                               "backend (start with --backend/--store)")
        return self.tenant_manager

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Read-only routes: ``/healthz``, snapshot and tenant listings."""
        path, params = self._split_path()
        try:
            if path == "/healthz":
                self._send_json(200, self._healthz_document(params))
            elif path == "/readyz":
                self._readyz()
            elif path == "/snapshot":
                tenant = self._tenant_of({}, params)
                self._send_json(200, self._snapshot_listing(tenant))
            elif path == "/tenants":
                manager = self._require_manager()
                self._send_json(200, {"tenants": manager.list_tenants(),
                                      "count": len(manager.tenant_names())})
            elif path.startswith("/tenants/"):
                manager = self._require_manager()
                name = path.removeprefix("/tenants/")
                self._send_json(200, manager.describe_tenant(name))
            else:
                self._send_error_json(404, "not-found",
                                      f"unknown path {path}")
        except DegradedServiceError as error:
            self._send_degraded(error)
        except UnknownTenantError as error:
            self._send_error_json(404, "unknown-tenant", str(error))
        except ServiceError as error:
            self._send_error_json(409, "conflict", str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, "internal",
                                  f"internal error: "
                                  f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """State-changing routes: ingest, query, refinalize, snapshot,
        tenant creation."""
        # Read (and fully consume) the body before routing: a parse
        # failure must still leave the connection aligned on the next
        # request boundary, and must answer 400, not tear down the
        # connection with a traceback.
        try:
            payload = self._read_json()
        except ValueError as error:
            self._send_error_json(400, "bad-request",
                                  f"bad request: invalid JSON body ({error})")
            return
        path, params = self._split_path()
        try:
            if path == "/ingest":
                tenant = self._tenant_of(payload, params)
                if self.tenant_manager is not None:
                    receipt = self.tenant_manager.ingest(
                        tenant, payload["rows"], payload.get("domain_size"))
                else:
                    receipt = self.service.ingest(payload["rows"],
                                                  payload.get("domain_size"))
                self._send_json(200, receipt)
            elif path == "/query":
                service = self._service_for(self._tenant_of(payload, params))
                self._send_json(200, self._answer_query(service, payload))
            elif path == "/refinalize":
                tenant = self._tenant_of(payload, params)
                if self.tenant_manager is not None:
                    status = self.tenant_manager.refinalize(tenant)
                else:
                    status = self.service.refinalize()
                # The epoch the re-finalize published: clients use the
                # header to confirm subsequent reads observe it.
                self._send_json(200, status,
                                headers={"Refinalize-Epoch":
                                         status.get("epoch", 0)})
            elif path == "/snapshot":
                tenant = self._tenant_of(payload, params)
                self._send_json(200, self._save_snapshot(tenant))
            elif path == "/tenants":
                manager = self._require_manager()
                record = manager.create_tenant(
                    str(payload["name"]), dict(payload.get("config") or {}))
                self._send_json(201, {"name": record.name,
                                      "created_at": record.created_at,
                                      "config": record.config})
            else:
                self._send_error_json(404, "not-found",
                                      f"unknown path {path}")
        except QuotaExceededError as error:
            self._send_error_json(429, "quota-exceeded", str(error))
        except DegradedServiceError as error:
            self._send_degraded(error)
        except UnknownTenantError as error:
            self._send_error_json(404, "unknown-tenant", str(error))
        except TenantExistsError as error:
            self._send_error_json(409, "conflict", str(error))
        except ServiceError as error:
            self._send_error_json(409, "conflict", str(error))
        except (KeyError, ValueError, TypeError) as error:
            self._send_error_json(400, "bad-request",
                                  f"bad request: {error}")
        except Exception as error:
            self._send_error_json(500, "internal",
                                  f"internal error: "
                                  f"{type(error).__name__}: {error}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        """``DELETE /tenants/<name>``: drop a tenant and its state."""
        path, _ = self._split_path()
        try:
            if path.startswith("/tenants/"):
                manager = self._require_manager()
                name = path.removeprefix("/tenants/")
                manager.delete_tenant(name)
                self._send_json(200, {"deleted": name})
            else:
                self._send_error_json(404, "not-found",
                                      f"unknown path {path}")
        except DegradedServiceError as error:
            self._send_degraded(error)
        except UnknownTenantError as error:
            self._send_error_json(404, "unknown-tenant", str(error))
        except ServiceError as error:
            self._send_error_json(409, "conflict", str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, "internal",
                                  f"internal error: "
                                  f"{type(error).__name__}: {error}")

    def _answer_query(self, service: QueryService, payload: dict) -> dict:
        """Dispatch ``/query``: one workload or a batch of workloads."""
        if "workloads" in payload:
            if "queries" in payload:
                raise ValueError(
                    "pass either 'queries' or 'workloads', not both")
            return service.query_wire_batch(payload["workloads"])
        if "queries" not in payload:
            raise ValueError("payload needs 'queries' (one workload) or "
                             "'workloads' (a batch of workloads)")
        return service.query_wire(payload["queries"])


def build_server(service: QueryService | None = None,
                 host: str = "127.0.0.1",
                 port: int = 0, snapshot_store: SnapshotStore | None = None,
                 verbose: bool = False,
                 workers: int = DEFAULT_WORKERS,
                 tenant_manager: TenantManager | None = None,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 handler_timeout: float | None = None,
                 ) -> ServingHTTPServer:
    """A bound (not yet running) worker-pool HTTP server.

    Pass ``service`` for the original single-service mode, or
    ``tenant_manager`` for multi-tenant serving over a storage backend
    (requests without a tenant route to the ``default`` tenant).
    ``port=0`` binds any free port; read the result from
    ``server.server_address``.  ``workers`` sizes the request pool —
    each worker owns one keep-alive connection at a time —
    ``queue_depth`` bounds how many more connections may wait for a
    worker before the listener sheds with 503, and ``handler_timeout``
    overrides the idle keep-alive socket timeout (seconds).
    """
    if (service is None) == (tenant_manager is None):
        raise ValueError("pass exactly one of service or tenant_manager")
    attributes = {"service": service, "snapshot_store": snapshot_store,
                  "tenant_manager": tenant_manager, "verbose": verbose}
    if handler_timeout is not None:
        if handler_timeout <= 0:
            raise ValueError("handler_timeout must be > 0")
        attributes["timeout"] = float(handler_timeout)
    handler = type("BoundServingRequestHandler", (ServingRequestHandler,),
                   attributes)
    return ServingHTTPServer((host, port), handler, workers=workers,
                             queue_depth=queue_depth)


def serve(server: ServingHTTPServer,
          max_requests: int | None = None) -> None:
    """Run the accept loop: forever, or for ``max_requests`` connections.

    The bounded form exists for smoke tests and scripted ops checks
    (``repro serve --max-requests N``); callers still own
    ``server.server_close()``, which drains the worker pool so every
    accepted connection finishes its responses.
    """
    if max_requests is None:
        server.serve_forever()
    else:
        for _ in range(max_requests):
            server.handle_request()
