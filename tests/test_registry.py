"""Tests for the named dataset registry."""

import numpy as np
import pytest

from repro.datasets import available_datasets, make_dataset


def test_all_paper_datasets_available():
    names = available_datasets()
    for expected in ("ipums", "bfive", "loan", "acs", "normal", "laplace"):
        assert expected in names


def test_make_dataset_by_name():
    dataset = make_dataset("normal", 2_000, 3, 16, rng=np.random.default_rng(0))
    assert dataset.n_users == 2_000
    assert dataset.n_attributes == 3
    assert dataset.domain_size == 16


def test_make_dataset_forwards_kwargs():
    independent = make_dataset("normal", 20_000, 2, 32,
                               rng=np.random.default_rng(0), covariance=0.0)
    correlated = make_dataset("normal", 20_000, 2, 32,
                              rng=np.random.default_rng(0), covariance=0.9)
    corr_ind = np.corrcoef(independent.values[:, 0], independent.values[:, 1])[0, 1]
    corr_dep = np.corrcoef(correlated.values[:, 0], correlated.values[:, 1])[0, 1]
    assert corr_dep > corr_ind + 0.5


def test_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown dataset"):
        make_dataset("does_not_exist", 100, 2, 8)


def test_uniform_registry_entry():
    dataset = make_dataset("uniform", 5_000, 2, 8, rng=np.random.default_rng(1))
    marginal = dataset.marginal(0)
    assert np.abs(marginal - 1 / 8).max() < 0.03
