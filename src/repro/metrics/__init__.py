"""Evaluation metrics (MAE, error distributions, typed-result scoring)."""

from .errors import (RepeatedRunSummary, absolute_errors, error_histogram,
                     mean_absolute_error, mean_squared_error, per_kind_errors,
                     result_error, workload_result_errors)

__all__ = [
    "RepeatedRunSummary",
    "absolute_errors",
    "error_histogram",
    "mean_absolute_error",
    "mean_squared_error",
    "per_kind_errors",
    "result_error",
    "workload_result_errors",
]
