"""Tests for the TDG mechanism."""

import numpy as np
import pytest

from repro.core import ITDG, TDG
from repro.queries import RangeQuery, answer_query, answer_workload
from repro.metrics import mean_absolute_error
from repro.baselines import Uniform


@pytest.fixture
def fitted_tdg(small_dataset):
    return TDG(epsilon=2.0, granularity=8, seed=0).fit(small_dataset)


def test_fit_builds_one_grid_per_pair(fitted_tdg, small_dataset):
    d = small_dataset.n_attributes
    assert len(fitted_tdg.grids) == d * (d - 1) // 2
    for (a, b), grid in fitted_tdg.grids.items():
        assert a < b
        assert grid.granularity == 8


def test_guideline_granularity_used_when_not_specified(small_dataset):
    mechanism = TDG(epsilon=1.0, seed=0).fit(small_dataset)
    assert mechanism.chosen_g2 is not None
    assert mechanism.chosen_g2 >= 2
    assert small_dataset.domain_size % mechanism.chosen_g2 == 0


def test_grid_frequencies_are_distributions_after_phase2(fitted_tdg):
    for grid in fitted_tdg.grids.values():
        assert (grid.frequencies >= -1e-12).all()
        assert grid.frequencies.sum() == pytest.approx(1.0, abs=1e-6)


def test_answers_in_reasonable_range(fitted_tdg, workload_2d):
    answers = fitted_tdg.answer_workload(workload_2d)
    assert (answers > -0.2).all()
    assert (answers < 1.2).all()


def test_full_domain_query_close_to_one(fitted_tdg, small_dataset):
    c = small_dataset.domain_size
    query = RangeQuery.from_dict({0: (0, c - 1), 1: (0, c - 1)})
    assert fitted_tdg.answer(query) == pytest.approx(1.0, abs=0.05)


def test_more_accurate_than_uniform_on_correlated_data(small_dataset, workload_2d):
    truths = answer_workload(small_dataset, workload_2d)
    tdg = TDG(epsilon=2.0, granularity=8, seed=1).fit(small_dataset)
    uni = Uniform().fit(small_dataset)
    mae_tdg = mean_absolute_error(tdg.answer_workload(workload_2d), truths)
    mae_uni = mean_absolute_error(uni.answer_workload(workload_2d), truths)
    assert mae_tdg < mae_uni


def test_higher_dimensional_queries_supported(fitted_tdg, workload_3d, small_dataset):
    answers = fitted_tdg.answer_workload(workload_3d)
    truths = answer_workload(small_dataset, workload_3d)
    assert answers.shape == truths.shape
    assert np.isfinite(answers).all()


def test_one_dimensional_query_supported(fitted_tdg, small_dataset):
    c = small_dataset.domain_size
    query = RangeQuery.from_dict({2: (0, c // 2 - 1)})
    estimate = fitted_tdg.answer(query)
    truth = answer_query(small_dataset, query)
    assert estimate == pytest.approx(truth, abs=0.2)


def test_requires_fit_before_answer(small_dataset):
    mechanism = TDG(epsilon=1.0)
    query = RangeQuery.from_dict({0: (0, 3), 1: (0, 3)})
    with pytest.raises(RuntimeError):
        mechanism.answer(query)


def test_rejects_single_attribute_dataset(rng):
    from repro.datasets import Dataset
    dataset = Dataset(rng.integers(0, 8, size=(100, 1)), 8)
    with pytest.raises(ValueError):
        TDG(epsilon=1.0).fit(dataset)


def test_query_validation(fitted_tdg, small_dataset):
    c = small_dataset.domain_size
    bad_attribute = RangeQuery.from_dict({7: (0, 1), 0: (0, 1)})
    with pytest.raises(ValueError):
        fitted_tdg.answer(bad_attribute)
    bad_interval = RangeQuery.from_dict({0: (0, c), 1: (0, 1)})
    with pytest.raises(ValueError):
        fitted_tdg.answer(bad_interval)


def test_itdg_skips_postprocess(small_dataset):
    mechanism = ITDG(epsilon=1.0, granularity=4, seed=0).fit(small_dataset)
    assert mechanism.postprocess is False
    # Without Norm-Sub, at least one grid usually keeps a negative estimate.
    has_negative = any((grid.frequencies < 0).any()
                       for grid in mechanism.grids.values())
    sums = [grid.frequencies.sum() for grid in mechanism.grids.values()]
    assert has_negative or any(abs(s - 1.0) > 1e-6 for s in sums)


def test_reproducible_with_seed(small_dataset, workload_2d):
    first = TDG(epsilon=1.0, granularity=8, seed=7).fit(small_dataset)
    second = TDG(epsilon=1.0, granularity=8, seed=7).fit(small_dataset)
    np.testing.assert_allclose(first.answer_workload(workload_2d),
                               second.answer_workload(workload_2d))
