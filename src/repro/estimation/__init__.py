"""Shared estimation engines: Weighted Update and Maximum Entropy."""

from .max_entropy import max_entropy_estimate
from .weighted_update import (Constraint, WeightedUpdateResult,
                              weighted_update, weighted_update_batch)

__all__ = [
    "Constraint",
    "WeightedUpdateResult",
    "max_entropy_estimate",
    "weighted_update",
    "weighted_update_batch",
]
