"""The paper's contribution: TDG, HDG, grids, the guideline and Algorithms 1-2."""

from .base import RangeQueryMechanism
from .granularity import (DEFAULT_ALPHA1, DEFAULT_ALPHA2, GranularityChoice,
                          choose_granularities_hdg, choose_granularity_tdg,
                          default_user_split, minimum_granularity,
                          nearest_divisor, nearest_power_of_two, raw_g1,
                          raw_g2, recommended_granularity_table)
from .grid import Grid1D, Grid2D
from .hdg import HDG, IHDG
from .phase2 import run_phase2
from .prefix_sum import (PrefixIndex1D, PrefixIndex2D, SummedAreaTable,
                         prefix_sum_1d, summed_area_table)
from .query_estimation import (estimate_lambda_queries_batched,
                               estimate_lambda_query,
                               lambda_constraint_index_sets)
from .response_matrix import ResponseMatrixResult, build_response_matrix
from .tdg import ITDG, TDG

__all__ = [
    "DEFAULT_ALPHA1",
    "DEFAULT_ALPHA2",
    "GranularityChoice",
    "Grid1D",
    "Grid2D",
    "HDG",
    "IHDG",
    "ITDG",
    "PrefixIndex1D",
    "PrefixIndex2D",
    "RangeQueryMechanism",
    "ResponseMatrixResult",
    "SummedAreaTable",
    "TDG",
    "build_response_matrix",
    "choose_granularities_hdg",
    "choose_granularity_tdg",
    "default_user_split",
    "estimate_lambda_queries_batched",
    "estimate_lambda_query",
    "lambda_constraint_index_sets",
    "minimum_granularity",
    "nearest_divisor",
    "nearest_power_of_two",
    "prefix_sum_1d",
    "raw_g1",
    "raw_g2",
    "recommended_granularity_table",
    "run_phase2",
    "summed_area_table",
]
