"""Tests for the shared mechanism interface and its validations."""

import numpy as np
import pytest

from repro.core import HDG, TDG, RangeQueryMechanism
from repro.baselines import MSW, Uniform
from repro.datasets import Dataset
from repro.queries import RangeQuery


def test_epsilon_must_be_positive():
    for mechanism_class in (TDG, HDG, MSW):
        with pytest.raises(ValueError):
            mechanism_class(epsilon=0.0)
        with pytest.raises(ValueError):
            mechanism_class(epsilon=-1.0)


def test_fit_returns_self(tiny_dataset):
    mechanism = Uniform()
    assert mechanism.fit(tiny_dataset) is mechanism
    assert mechanism.is_fitted


def test_is_fitted_false_before_fit():
    assert not Uniform().is_fitted
    assert not TDG(1.0).is_fitted


def test_answer_workload_preserves_order(tiny_dataset):
    mechanism = Uniform().fit(tiny_dataset)
    c = tiny_dataset.domain_size
    queries = [RangeQuery.from_dict({0: (0, c // 4 - 1)}),
               RangeQuery.from_dict({0: (0, c // 2 - 1)}),
               RangeQuery.from_dict({0: (0, c - 1)})]
    answers = mechanism.answer_workload(queries)
    assert answers[0] < answers[1] < answers[2]


def test_answer_returns_python_float(tiny_dataset):
    mechanism = Uniform().fit(tiny_dataset)
    query = RangeQuery.from_dict({0: (0, 3)})
    assert isinstance(mechanism.answer(query), float)


def test_query_attribute_out_of_range_rejected(tiny_dataset):
    mechanism = Uniform().fit(tiny_dataset)
    query = RangeQuery.from_dict({tiny_dataset.n_attributes: (0, 1)})
    with pytest.raises(ValueError):
        mechanism.answer(query)


def test_query_interval_out_of_domain_rejected(tiny_dataset):
    mechanism = Uniform().fit(tiny_dataset)
    query = RangeQuery.from_dict({0: (0, tiny_dataset.domain_size)})
    with pytest.raises(ValueError):
        mechanism.answer(query)


def test_refit_on_new_dataset_updates_metadata(rng):
    first = Dataset(rng.integers(0, 8, size=(500, 2)), 8)
    second = Dataset(rng.integers(0, 16, size=(500, 3)), 16)
    mechanism = Uniform()
    mechanism.fit(first)
    with pytest.raises(ValueError):
        mechanism.answer(RangeQuery.from_dict({2: (0, 1)}))
    mechanism.fit(second)
    assert mechanism.answer(RangeQuery.from_dict({2: (0, 15)})) == pytest.approx(1.0)


def test_subclasses_report_names():
    assert TDG(1.0).name == "TDG"
    assert HDG(1.0).name == "HDG"
    assert Uniform().name == "Uni"
    assert MSW(1.0).name == "MSW"


def test_cannot_instantiate_abstract_base():
    with pytest.raises(TypeError):
        RangeQueryMechanism(1.0)
