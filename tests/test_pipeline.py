"""Tests for the shard-mergeable aggregation pipeline.

The pipeline's contract has an exact half and a statistical half:

* **Exact** — support-count accumulators add across shards, and
  ``fit(data)`` is byte-for-byte ``partial_fit(data); finalize()``.
* **Statistical** — merging K independently-perturbed shards yields
  estimates with the same distribution as one-shot collection over the
  concatenated population, so accuracy against ground truth matches up
  to sampling noise.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import HDG, TDG
from repro.datasets import Dataset, make_dataset
from repro.experiments import ExperimentConfig, run_experiment
from repro.frequency_oracles import (GeneralizedRandomizedResponse,
                                     OptimizedLocalHash, SquareWave,
                                     SupportAccumulator)
from repro.metrics import mean_absolute_error
from repro.pipeline import (ParallelFitReport, ShardAggregator,
                            merge_aggregators, parallel_fit, shard_dataset)
from repro.queries import WorkloadGenerator, answer_workload


def _split(dataset: Dataset, n_shards: int) -> list[Dataset]:
    return shard_dataset(dataset, n_shards)


# ----------------------------------------------------------------------
# SupportAccumulator algebra
# ----------------------------------------------------------------------
def test_accumulator_merge_adds_counts_exactly():
    a = SupportAccumulator(np.array([1.0, 2.0, 3.0]), 6)
    b = SupportAccumulator(np.array([0.5, 0.0, 4.0]), 5)
    merged = a.copy().merge(b)
    assert merged.equals(SupportAccumulator(np.array([1.5, 2.0, 7.0]), 11))
    # The originals are untouched.
    assert a.n_reports == 6 and b.n_reports == 5


def test_accumulator_merge_rejects_shape_mismatch():
    a = SupportAccumulator(np.zeros(3), 0)
    with pytest.raises(ValueError):
        a.merge(SupportAccumulator(np.zeros(4), 0))


def test_accumulator_serialization_roundtrip():
    a = SupportAccumulator(np.array([1.0, 0.25, 9.0]), 10)
    restored = SupportAccumulator.from_dict(a.to_dict())
    assert restored.equals(a)


@pytest.mark.parametrize("n_parts", [2, 3, 5])
def test_oracle_accumulators_sum_exactly_over_shards(rng, n_parts):
    """Exact-equality test for the support-count accumulators."""
    values = rng.integers(0, 16, size=3_000)
    oracle = OptimizedLocalHash(1.0, 16, rng=np.random.default_rng(0))
    parts = np.array_split(values, n_parts)
    accumulators = [oracle.accumulate(part) for part in parts]
    merged = accumulators[0].copy()
    for accumulator in accumulators[1:]:
        merged.merge(accumulator)
    expected = np.sum([acc.supports for acc in accumulators], axis=0)
    assert np.array_equal(merged.supports, expected)
    assert merged.n_reports == values.size


# ----------------------------------------------------------------------
# Oracle accumulate/estimate split
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", [
    lambda rng: GeneralizedRandomizedResponse(1.0, 12, rng=rng),
    lambda rng: OptimizedLocalHash(1.0, 12, rng=rng, mode="fast"),
    lambda rng: OptimizedLocalHash(1.0, 12, rng=rng, mode="user"),
    lambda rng: SquareWave(1.0, 12, rng=rng),
])
def test_split_api_matches_one_shot_estimates(factory):
    values = np.random.default_rng(3).integers(0, 12, size=2_000)
    one_shot = factory(np.random.default_rng(42)).estimate_frequencies(values)
    oracle = factory(np.random.default_rng(42))
    split = oracle.estimate_from_accumulator(oracle.accumulate(values))
    assert np.array_equal(one_shot, split)


def test_estimate_from_empty_accumulator_rejected():
    oracle = OptimizedLocalHash(1.0, 8, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        oracle.estimate_from_accumulator(SupportAccumulator.empty(8))


# ----------------------------------------------------------------------
# Mechanism-level partial_fit / merge / finalize
# ----------------------------------------------------------------------
def test_fit_is_partial_fit_plus_finalize_tdg(small_dataset):
    one_shot = TDG(epsilon=1.0, seed=11).fit(small_dataset)
    sharded = TDG(epsilon=1.0, seed=11).partial_fit(small_dataset).finalize()
    for pair in one_shot.grids:
        assert np.array_equal(one_shot.grids[pair].frequencies,
                              sharded.grids[pair].frequencies)


def test_fit_is_partial_fit_plus_finalize_hdg(small_dataset):
    one_shot = HDG(epsilon=1.0, seed=11).fit(small_dataset)
    sharded = HDG(epsilon=1.0, seed=11).partial_fit(small_dataset).finalize()
    for attribute in one_shot.grids_1d:
        assert np.array_equal(one_shot.grids_1d[attribute].frequencies,
                              sharded.grids_1d[attribute].frequencies)
    for pair in one_shot.response_matrices:
        assert np.array_equal(one_shot.response_matrices[pair],
                              sharded.response_matrices[pair])


@pytest.mark.parametrize("mechanism_cls", [TDG, HDG])
def test_merged_accumulators_equal_sum_of_shards(small_dataset, mechanism_cls):
    """merge() is exact count addition on every grid's accumulator."""
    n = small_dataset.n_users
    shards = _split(small_dataset, 2)
    fitted = [mechanism_cls(1.0, seed=s).partial_fit(shard, total_users=n)
              for s, shard in enumerate(shards)]
    merged = mechanism_cls(1.0, seed=9).merge(fitted[0]).merge(fitted[1])

    def acc_maps(mechanism):
        if mechanism_cls is TDG:
            return [mechanism._accumulators]
        return [mechanism._acc_1d, mechanism._acc_2d]

    for merged_map, map_a, map_b in zip(acc_maps(merged), acc_maps(fitted[0]),
                                        acc_maps(fitted[1])):
        for key, accumulator in merged_map.items():
            parts = [m[key] for m in (map_a, map_b) if m[key] is not None]
            assert accumulator is not None and parts
            expected = np.sum([p.supports for p in parts], axis=0)
            assert np.array_equal(accumulator.supports, expected)
            assert accumulator.n_reports == sum(p.n_reports for p in parts)
    assert merged._total_reports == n


@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_estimates_statistically_match_single_shot(n_shards):
    """merge(partial_fit(a), partial_fit(b)) ~ fit(concat(a, b)).

    Both paths are unbiased estimators of the same binned distribution,
    so their accuracy against ground truth must agree up to sampling
    noise.  Granularities are pinned so the comparison is like-for-like.
    """
    rng = np.random.default_rng(5)
    dataset = make_dataset("normal", 40_000, 3, 16, rng=rng)
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(6))
    queries = generator.random_workload(40, 2, 0.5)
    truths = answer_workload(dataset, queries)

    single_maes, sharded_maes = [], []
    for seed in range(3):
        single = HDG(1.0, granularities=(8, 4), seed=seed).fit(dataset)
        single_maes.append(mean_absolute_error(
            single.answer_workload(queries), truths))

        shard_mechs = [
            HDG(1.0, granularities=(8, 4), seed=100 + 977 * (seed * n_shards + i))
            .partial_fit(shard, total_users=dataset.n_users)
            for i, shard in enumerate(_split(dataset, n_shards))]
        merged = shard_mechs[0]
        for other in shard_mechs[1:]:
            merged.merge(other)
        merged.finalize()
        sharded_maes.append(mean_absolute_error(
            merged.answer_workload(queries), truths))

    single_mae = np.mean(single_maes)
    sharded_mae = np.mean(sharded_maes)
    # Same estimator distribution: averaged MAEs agree within a loose factor.
    assert sharded_mae < 2.0 * single_mae + 0.01
    assert single_mae < 2.0 * sharded_mae + 0.01


def test_incremental_batches_accumulate_on_one_mechanism(small_dataset):
    shards = _split(small_dataset, 3)
    mechanism = HDG(1.0, seed=0)
    for shard in shards:
        mechanism.partial_fit(shard, total_users=small_dataset.n_users)
    assert mechanism._total_reports == small_dataset.n_users
    mechanism.finalize()
    assert mechanism.is_fitted


def test_partial_fit_accepts_single_user_batches():
    """Tiny (even 1-user) batches must ingest once granularities are known."""
    rng = np.random.default_rng(0)
    mechanism = HDG(1.0, granularities=(8, 4), seed=0)
    for _ in range(5):
        batch = Dataset(rng.integers(0, 16, size=(1, 3)), 16)
        mechanism.partial_fit(batch, total_users=5)
    assert mechanism._total_reports == 5
    mechanism.finalize()
    assert mechanism.is_fitted


def test_merge_rejects_epsilon_mismatch(tiny_dataset):
    a = TDG(1.0, seed=0).partial_fit(tiny_dataset)
    b = TDG(2.0, seed=1).partial_fit(tiny_dataset)
    with pytest.raises(ValueError, match="privacy budgets"):
        a.merge(b)


def test_merge_rejects_granularity_mismatch(tiny_dataset):
    a = TDG(1.0, granularity=4, seed=0).partial_fit(tiny_dataset)
    b = TDG(1.0, granularity=8, seed=1).partial_fit(tiny_dataset)
    with pytest.raises(ValueError, match="granularity"):
        a.merge(b)


def test_merge_rejects_mechanism_type_mismatch(tiny_dataset):
    a = TDG(1.0, seed=0).partial_fit(tiny_dataset)
    b = HDG(1.0, seed=1).partial_fit(tiny_dataset)
    with pytest.raises(TypeError):
        a.merge(b)


def test_merge_after_finalize_rejected(tiny_dataset):
    a = TDG(1.0, seed=0).partial_fit(tiny_dataset).finalize()
    b = TDG(1.0, seed=1).partial_fit(tiny_dataset)
    with pytest.raises(RuntimeError):
        a.merge(b)


def test_finalize_without_batches_rejected():
    with pytest.raises(RuntimeError):
        HDG(1.0, seed=0).finalize()


def test_baselines_report_no_sharding_support(tiny_dataset):
    from repro.baselines import Uniform
    mechanism = Uniform(1.0, seed=0)
    assert not mechanism.supports_sharding
    with pytest.raises(NotImplementedError):
        mechanism.partial_fit(tiny_dataset)


# ----------------------------------------------------------------------
# ShardAggregator
# ----------------------------------------------------------------------
def test_shard_aggregator_end_to_end(small_dataset, workload_2d):
    shards = _split(small_dataset, 2)
    aggregators = [
        ShardAggregator("HDG", epsilon=1.0, total_users=small_dataset.n_users,
                        seed=i).add_batch(shard)
        for i, shard in enumerate(shards)]
    merged = merge_aggregators(aggregators)
    assert merged.n_reports == small_dataset.n_users
    mechanism = merged.finalize()
    truths = answer_workload(small_dataset, workload_2d)
    mae = mean_absolute_error(mechanism.answer_workload(workload_2d), truths)
    assert mae < 0.15


def test_shard_aggregator_accepts_raw_arrays(tiny_dataset):
    aggregator = ShardAggregator("TDG", epsilon=1.0, seed=0)
    aggregator.add_batch(tiny_dataset.values, domain_size=tiny_dataset.domain_size)
    assert aggregator.n_reports == tiny_dataset.n_users
    with pytest.raises(ValueError):
        aggregator.add_batch(tiny_dataset.values)  # domain_size required


def test_shard_aggregator_rejects_unknown_mechanism():
    with pytest.raises(ValueError, match="non-shardable"):
        ShardAggregator("Uni", epsilon=1.0)


def test_shard_aggregator_single_use(tiny_dataset):
    aggregator = ShardAggregator("TDG", epsilon=1.0, seed=0)
    aggregator.add_batch(tiny_dataset)
    aggregator.finalize()
    with pytest.raises(RuntimeError):
        aggregator.add_batch(tiny_dataset)
    with pytest.raises(RuntimeError):
        aggregator.finalize()


@pytest.mark.parametrize("mechanism", ["TDG", "HDG"])
def test_shard_state_json_roundtrip(tmp_path, tiny_dataset, mechanism):
    aggregator = ShardAggregator(mechanism, epsilon=1.0, seed=3)
    aggregator.add_batch(tiny_dataset)
    path = aggregator.save(tmp_path / "shard.json")
    restored = ShardAggregator.load(path)
    assert restored.n_reports == aggregator.n_reports
    state, restored_state = aggregator.state_dict(), restored.state_dict()
    assert restored_state == state
    # The restored aggregator finalises into a working mechanism.
    restored.finalize()
    assert restored.mechanism.is_fitted


def test_state_dict_rejects_wrong_format():
    with pytest.raises(ValueError, match="format"):
        ShardAggregator.from_state_dict({"format": "something-else"})


# ----------------------------------------------------------------------
# parallel_fit
# ----------------------------------------------------------------------
def test_shard_dataset_partitions_users(small_dataset):
    shards = shard_dataset(small_dataset, 4)
    assert sum(shard.n_users for shard in shards) == small_dataset.n_users
    assert np.array_equal(np.vstack([s.values for s in shards]),
                          small_dataset.values)


def test_parallel_fit_uses_two_workers_concurrently(tiny_dataset):
    """Both pool workers must be inside partial_fit at the same time."""
    barrier = threading.Barrier(2, timeout=30)

    class SynchronisedTDG(TDG):
        def _partial_fit(self, dataset, total_users):
            barrier.wait()
            super()._partial_fit(dataset, total_users)

    report = ParallelFitReport(n_shards=0, max_workers=0)
    mechanism = parallel_fit(lambda i: SynchronisedTDG(1.0, seed=i),
                             tiny_dataset, n_shards=2, max_workers=2,
                             report=report)
    assert mechanism.is_fitted
    assert report.max_workers == 2
    assert report.n_workers_used == 2
    assert sum(report.shard_sizes) == tiny_dataset.n_users


def test_parallel_fit_report_carries_premerge_shard_states(tiny_dataset):
    report = ParallelFitReport(n_shards=0, max_workers=0)
    mechanism = parallel_fit(lambda i: TDG(1.0, seed=i), tiny_dataset,
                             n_shards=3, report=report)
    assert len(report.shard_states) == 3
    assert sum(state["total_reports"] for state in report.shard_states) \
        == tiny_dataset.n_users
    # The saved states rebuild aggregators that merge into the same counts
    # the returned mechanism was finalised from.
    aggregators = [ShardAggregator.from_state_dict(
        {**state, "format": "repro.shard-state", "version": 1})
        for state in report.shard_states]
    rebuilt = merge_aggregators(aggregators).finalize()
    for pair in mechanism.grids:
        assert np.array_equal(mechanism.grids[pair].frequencies,
                              rebuilt.grids[pair].frequencies)


def test_shard_seed_never_collides_with_base():
    from repro.pipeline import shard_seed
    assert shard_seed(0, 0) != 0
    assert len({shard_seed(0, i) for i in range(100)}) == 100


def test_parallel_fit_deterministic_for_fixed_seeds(tiny_dataset):
    def factory(index):
        return HDG(1.0, seed=50 + 977 * index)

    first = parallel_fit(factory, tiny_dataset, n_shards=3, max_workers=2)
    second = parallel_fit(factory, tiny_dataset, n_shards=3, max_workers=2)
    for pair in first.response_matrices:
        assert np.array_equal(first.response_matrices[pair],
                              second.response_matrices[pair])


def test_parallel_fit_rejects_non_shardable(tiny_dataset):
    from repro.baselines import Uniform
    with pytest.raises(ValueError, match="sharded"):
        parallel_fit(lambda i: Uniform(1.0, seed=i), tiny_dataset, n_shards=2)


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
def test_run_experiment_with_shards():
    config = ExperimentConfig(dataset="normal", n_users=8_000, n_attributes=3,
                              domain_size=16, epsilon=1.0, query_dimension=2,
                              volume=0.5, n_queries=15, n_repeats=1,
                              methods=("Uni", "HDG"), seed=0,
                              n_shards=2, shard_workers=2)
    result = run_experiment(config)
    assert set(result.methods) == {"Uni", "HDG"}
    # Uni has no sharding support and silently falls back to fit().
    assert result.methods["Uni"].mae.mean >= 0
    assert result.methods["HDG"].mae.mean < 0.1


def test_run_experiment_sharded_is_deterministic():
    config = ExperimentConfig(dataset="normal", n_users=6_000, n_attributes=3,
                              domain_size=16, epsilon=1.0, query_dimension=2,
                              volume=0.5, n_queries=10, n_repeats=1,
                              methods=("HDG",), seed=1, n_shards=3)
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.mae_of("HDG") == pytest.approx(second.mae_of("HDG"))


def test_config_validates_shard_fields():
    config = ExperimentConfig(n_shards=0)
    with pytest.raises(ValueError, match="n_shards"):
        config.validate()
    config = ExperimentConfig(shard_workers=0)
    with pytest.raises(ValueError, match="shard_workers"):
        config.validate()
