"""Synthetic stand-ins for the paper's four real datasets.

The paper evaluates on Ipums (US census microdata), Bfive (Big Five
personality test response times), Loan (Lending Club loans) and Acs (2015
American Community Survey).  None of these can be redistributed or fetched
offline, so this module generates datasets that mimic the published
characteristics the evaluation depends on:

* **Ipums / Acs** — census-style records: strongly skewed marginals
  (age/income-like log-normal shapes mixed with few-modal categorical-like
  attributes) and moderate-to-strong pairwise correlation.  These are the
  datasets on which correlation-aware methods (CALM, TDG, HDG) clearly
  beat the independence-assuming MSW.
* **Bfive** — per-question answer times in milliseconds: heavy-tailed
  (log-normal) marginals with *weak* correlation between questions.  The
  paper observes MSW is competitive here; the stand-in keeps correlations
  low so that behaviour reproduces.
* **Loan** — financial attributes: a mix of highly skewed amounts and
  smoother score-like attributes with moderate correlation.

Each generator uses a Gaussian copula: a correlated standard-normal latent
vector per record is pushed through per-attribute marginal transforms and
then bucketed into the common ordinal domain ``[c]``.  This preserves the
two levers the experiments exercise — marginal skewness and pairwise
correlation strength — while keeping the build fully self-contained (the
substitution is recorded in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset


def _gaussian_copula(n_users: int, correlation: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
    """Draw correlated uniforms in (0, 1) via a Gaussian copula."""
    d = correlation.shape[0]
    latent = rng.multivariate_normal(np.zeros(d), correlation, size=n_users,
                                     method="cholesky")
    # Convert to uniforms with the normal CDF (vectorised erf-based).
    from math import sqrt
    uniforms = 0.5 * (1.0 + _erf(latent / sqrt(2.0)))
    return np.clip(uniforms, 1e-12, 1.0 - 1e-12)


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz & Stegun 7.1.26 approximation).

    Accurate to ~1.5e-7 which is far below the binning resolution used
    here; avoids a hard dependency on scipy for the core library.
    """
    sign = np.sign(x)
    x = np.abs(x)
    a1, a2, a3, a4, a5 = (0.254829592, -0.284496736, 1.421413741,
                          -1.453152027, 1.061405429)
    p = 0.3275911
    t = 1.0 / (1.0 + p * x)
    poly = ((((a5 * t + a4) * t + a3) * t + a2) * t + a1) * t
    y = 1.0 - poly * np.exp(-x * x)
    return sign * y


def _correlation_matrix(d: int, base: float, jitter: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Equicorrelation matrix with per-pair jitter, projected to valid PSD."""
    matrix = np.full((d, d), base)
    if jitter > 0:
        noise = rng.uniform(-jitter, jitter, size=(d, d))
        noise = (noise + noise.T) / 2.0
        matrix = np.clip(matrix + noise, 0.0, 0.95)
    np.fill_diagonal(matrix, 1.0)
    # Project to the nearest positive semi-definite matrix via eigenvalue
    # clipping, then re-normalise the diagonal.
    eigvals, eigvecs = np.linalg.eigh(matrix)
    eigvals = np.clip(eigvals, 1e-6, None)
    matrix = eigvecs @ np.diag(eigvals) @ eigvecs.T
    scale = np.sqrt(np.diag(matrix))
    matrix = matrix / np.outer(scale, scale)
    return matrix


def _bucket_quantiles(uniforms: np.ndarray, skew: float,
                      domain_size: int) -> np.ndarray:
    """Map uniforms to ordinal buckets through a skewed quantile transform.

    ``skew`` controls the marginal shape: 1.0 yields a uniform marginal,
    values above 1 concentrate mass on low buckets (log-normal/income-like
    long right tails once bucketed), values below 1 concentrate on high
    buckets.
    """
    shaped = uniforms ** skew
    buckets = np.floor(shaped * domain_size).astype(np.int64)
    return np.clip(buckets, 0, domain_size - 1)


def _build(name: str, n_users: int, n_attributes: int, domain_size: int,
           base_correlation: float, correlation_jitter: float,
           skews: np.ndarray, rng: np.random.Generator) -> Dataset:
    correlation = _correlation_matrix(n_attributes, base_correlation,
                                      correlation_jitter, rng)
    uniforms = _gaussian_copula(n_users, correlation, rng)
    columns = [
        _bucket_quantiles(uniforms[:, j], float(skews[j % len(skews)]), domain_size)
        for j in range(n_attributes)
    ]
    return Dataset(np.column_stack(columns), domain_size, name=name)


def generate_ipums_like(n_users: int, n_attributes: int = 6,
                        domain_size: int = 64,
                        rng: np.random.Generator | None = None) -> Dataset:
    """Census-like dataset: skewed marginals, moderately strong correlation."""
    rng = rng if rng is not None else np.random.default_rng()
    skews = np.array([2.5, 1.8, 3.0, 1.2, 2.0, 4.0, 1.5, 2.8, 3.5, 1.0])
    return _build("ipums_like", n_users, n_attributes, domain_size,
                  base_correlation=0.55, correlation_jitter=0.15,
                  skews=skews, rng=rng)


def generate_bfive_like(n_users: int, n_attributes: int = 6,
                        domain_size: int = 64,
                        rng: np.random.Generator | None = None) -> Dataset:
    """Response-time-like dataset: heavy-tailed marginals, weak correlation."""
    rng = rng if rng is not None else np.random.default_rng()
    skews = np.array([3.5, 3.0, 4.0, 3.2, 3.8, 2.8, 3.6, 4.2, 3.1, 2.9])
    return _build("bfive_like", n_users, n_attributes, domain_size,
                  base_correlation=0.1, correlation_jitter=0.05,
                  skews=skews, rng=rng)


def generate_loan_like(n_users: int, n_attributes: int = 6,
                       domain_size: int = 64,
                       rng: np.random.Generator | None = None) -> Dataset:
    """Lending-club-like dataset: mixed skew, moderate correlation."""
    rng = rng if rng is not None else np.random.default_rng()
    skews = np.array([2.2, 0.8, 3.0, 1.5, 2.6, 1.0, 2.0, 3.4, 1.2, 2.4])
    return _build("loan_like", n_users, n_attributes, domain_size,
                  base_correlation=0.4, correlation_jitter=0.2,
                  skews=skews, rng=rng)


def generate_acs_like(n_users: int, n_attributes: int = 6,
                      domain_size: int = 64,
                      rng: np.random.Generator | None = None) -> Dataset:
    """ACS-survey-like dataset: strongly skewed, strongly correlated."""
    rng = rng if rng is not None else np.random.default_rng()
    skews = np.array([3.0, 2.4, 4.5, 1.8, 2.8, 3.6, 2.2, 4.0, 1.4, 3.2])
    return _build("acs_like", n_users, n_attributes, domain_size,
                  base_correlation=0.65, correlation_jitter=0.1,
                  skews=skews, rng=rng)
