"""Tests for the universal hash family used by OLH."""

import numpy as np
import pytest

from repro.frequency_oracles.hashing import UniversalHashFamily


def test_outputs_within_range():
    family = UniversalHashFamily(100, 8, rng=np.random.default_rng(0))
    a, b = family.sample_seeds(50)
    values = np.arange(100)
    for seed_a, seed_b in zip(a[:10], b[:10]):
        hashed = family.evaluate(np.array([seed_a]), np.array([seed_b]), values)
        assert hashed.min() >= 0
        assert hashed.max() < 8


def test_deterministic_given_seeds():
    family = UniversalHashFamily(64, 5, rng=np.random.default_rng(1))
    a, b = family.sample_seeds(3)
    first = family.evaluate(a, b, 17)
    second = family.evaluate(a, b, 17)
    np.testing.assert_array_equal(first, second)


def test_evaluate_matrix_matches_elementwise():
    family = UniversalHashFamily(16, 4, rng=np.random.default_rng(2))
    a, b = family.sample_seeds(6)
    matrix = family.evaluate_matrix(a, b)
    assert matrix.shape == (6, 16)
    for row in range(6):
        for value in range(16):
            single = family.evaluate(a[row:row + 1], b[row:row + 1], value)
            assert matrix[row, value] == single[0]


def test_hash_distribution_roughly_uniform():
    family = UniversalHashFamily(1000, 4, rng=np.random.default_rng(3))
    a, b = family.sample_seeds(2000)
    hashed = family.evaluate(a, b, 123)
    counts = np.bincount(hashed, minlength=4)
    # Each bucket should receive roughly 1/4 of the 2000 hashes.
    assert counts.min() > 2000 / 4 * 0.7
    assert counts.max() < 2000 / 4 * 1.3


def test_different_seeds_give_different_functions():
    family = UniversalHashFamily(64, 8, rng=np.random.default_rng(4))
    a, b = family.sample_seeds(2)
    values = np.arange(64)
    row0 = family.evaluate(a[:1], b[:1], values)
    row1 = family.evaluate(a[1:], b[1:], values)
    assert not np.array_equal(row0, row1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        UniversalHashFamily(0, 4)
    with pytest.raises(ValueError):
        UniversalHashFamily(10, 1)
