"""Smoke tests for the per-figure reproduction drivers (tiny scale).

These do not validate the paper's numbers (the benchmark harness does, at
larger scale); they check that every driver runs end to end and returns
series of the right shape.
"""

import numpy as np
import pytest

from repro.experiments import appendix, figures

TINY = dict(n_users=4_000, n_attributes=3, domain_size=16, n_queries=8,
            n_repeats=1, seed=0)
TINY_METHODS = ("Uni", "TDG", "HDG")


def test_figure_1_driver():
    results = figures.figure_1_vary_epsilon(datasets=("normal",),
                                            epsilons=(0.5, 1.0),
                                            query_dimensions=(2,),
                                            methods=TINY_METHODS, **TINY)
    sweep = results[("normal", 2)]
    series = sweep.series()
    assert set(series) == set(TINY_METHODS)
    assert len(series["HDG"]) == 2


def test_figure_2_driver():
    results = figures.figure_2_vary_volume(datasets=("normal",),
                                           volumes=(0.3, 0.7),
                                           query_dimensions=(2,),
                                           methods=TINY_METHODS, **TINY)
    assert len(results[("normal", 2)].values) == 2


def test_figure_3_driver():
    kwargs = {k: v for k, v in TINY.items() if k != "domain_size"}
    results = figures.figure_3_vary_domain(datasets=("normal",),
                                           domain_sizes=(16, 32),
                                           query_dimensions=(2,),
                                           methods=TINY_METHODS, **kwargs)
    assert len(results[("normal", 2)].values) == 2


def test_figure_4_driver():
    kwargs = {k: v for k, v in TINY.items() if k != "n_attributes"}
    results = figures.figure_4_vary_attributes(datasets=("normal",),
                                               attribute_counts=(3, 4),
                                               query_dimensions=(2,),
                                               methods=TINY_METHODS, **kwargs)
    assert len(results[("normal", 2)].values) == 2


def test_figure_5_driver():
    results = figures.figure_5_vary_query_dimension(datasets=("normal",),
                                                    query_dimensions=(2, 3),
                                                    methods=TINY_METHODS, **TINY)
    assert len(results["normal"].values) == 2


def test_figure_6_driver():
    kwargs = {k: v for k, v in TINY.items() if k != "n_users"}
    results = figures.figure_6_vary_population(datasets=("normal",),
                                               populations=(2_000, 4_000),
                                               query_dimensions=(2,),
                                               methods=TINY_METHODS, **kwargs)
    assert len(results[("normal", 2)].values) == 2


def test_figure_7_driver():
    results = figures.figure_7_guideline(datasets=("normal",),
                                         epsilons=(1.0,),
                                         combinations=((8, 2), (8, 4)), **TINY)
    series = results["normal"].series()
    assert "HDG" in series and "HDG(8,4)" in series


def test_figure_8_driver():
    results = figures.figure_8_component_ablation(datasets=("normal",),
                                                  epsilons=(1.0,),
                                                  query_dimensions=(2,), **TINY)
    series = results[("normal", 2)].series()
    assert set(series) == {"ITDG", "IHDG", "TDG", "HDG"}


def test_table_2_driver():
    table = figures.table_2_granularities(epsilons=(1.0,), settings=[(6, 6.0)])
    assert table[(6, 6.0, 1.0)] == (16, 4)


def test_format_figure_results():
    results = figures.figure_1_vary_epsilon(datasets=("normal",),
                                            epsilons=(1.0,),
                                            query_dimensions=(2,),
                                            methods=("Uni",), **TINY)
    text = figures.format_figure_results(results, "Figure 1")
    assert "Figure 1" in text and "Uni" in text


# ----------------------------------------------------------------------
# Appendix drivers
# ----------------------------------------------------------------------
def test_error_distribution_driver():
    results = appendix.figure_9_10_error_distribution(datasets=("normal",),
                                                      query_dimensions=(2,),
                                                      n_users=4_000,
                                                      n_attributes=3,
                                                      domain_size=16,
                                                      n_queries=10, seed=0)
    panel = results[("normal", 2)]
    assert set(panel) == {"TDG", "HDG"}
    assert panel["HDG"]["errors"].shape == (10,)


def test_full_marginal_driver():
    results = appendix.figure_11_full_marginals(datasets=("normal",),
                                                epsilons=(1.0,),
                                                methods=("Uni", "HDG"),
                                                n_users=4_000, n_attributes=3,
                                                domain_size=8, seed=0)
    assert len(results["normal"].values) == 1


def test_full_range_driver():
    results = appendix.figure_12_full_range(datasets=("normal",),
                                            epsilons=(1.0,),
                                            methods=("Uni", "HDG"),
                                            n_users=4_000, n_attributes=3,
                                            domain_size=8, volume=0.5, seed=0)
    assert len(results["normal"].values) == 1


def test_count_conditioned_driver():
    results = appendix.figure_13_14_count_conditioned(datasets=("normal",),
                                                      query_dimensions=(3,),
                                                      zero_count=False,
                                                      methods=("Uni", "HDG"),
                                                      n_users=4_000,
                                                      n_attributes=3,
                                                      domain_size=16,
                                                      n_queries=5, seed=0)
    assert len(results["normal"].values) == 1


def test_user_split_driver():
    results = appendix.figure_15_user_split(datasets=("normal",),
                                            sigmas=(0.3, 0.6),
                                            epsilons=(1.0,), n_users=4_000,
                                            n_attributes=3, domain_size=16,
                                            n_queries=8, seed=0)
    assert len(results["normal"][1.0].values) == 2


def test_convergence_drivers():
    matrix = appendix.figure_17_convergence_matrix(datasets=("normal",),
                                                   epsilons=(1.0,),
                                                   n_users=4_000,
                                                   n_attributes=3,
                                                   domain_size=16,
                                                   max_iterations=5, seed=0)
    assert len(matrix["normal"][1.0]) == 5
    query = appendix.figure_18_convergence_query(datasets=("normal",),
                                                 epsilons=(1.0,),
                                                 query_dimension=3,
                                                 n_users=4_000,
                                                 n_attributes=3,
                                                 domain_size=16,
                                                 n_queries=3,
                                                 max_iterations=10, seed=0)
    assert len(query["normal"][1.0]) >= 1


def test_covariance_driver():
    results = appendix.figure_28_covariance(datasets=("normal",),
                                            covariances=(0.0,),
                                            epsilons=(1.0,),
                                            query_dimensions=(2,),
                                            methods=("Uni", "HDG"),
                                            n_users=4_000, n_attributes=3,
                                            domain_size=16, n_queries=8,
                                            seed=0)
    assert ("normal", 0.0, 2) in results
