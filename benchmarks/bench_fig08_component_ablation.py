"""Figure 8: component-wise ablation of Phase 2 (ITDG/IHDG vs TDG/HDG).

Paper shape: ITDG and TDG are nearly identical (coarse grids rarely go
negative); IHDG is unstable and HDG is clearly better and more stable in
most cases.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_8(benchmark):
    scale = current_scale()

    def run():
        return figures.figure_8_component_ablation(
            datasets=scale.datasets[:2], epsilons=scale.epsilons,
            query_dimensions=(2,), n_users=scale.n_users,
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            volume=0.5, n_queries=scale.n_queries,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig08_component_ablation",
           figures.format_figure_results(results, "Figure 8: Phase-2 ablation"))
    for _, sweep in results.items():
        series = sweep.series()
        # TDG and ITDG stay within a small factor of each other on average.
        import numpy as np
        tdg = np.mean(series["TDG"])
        itdg = np.mean(series["ITDG"])
        assert 0.3 < (tdg + 1e-9) / (itdg + 1e-9) < 3.0
