"""Online query-serving subsystem: snapshots, ingest service, HTTP API.

The paper's protocol is one-shot — collect, post-process, answer — but
a production aggregator runs for months: reports arrive continuously,
answers must stay fresh, and the fitted state has to survive restarts.
This package provides that serving layer on top of the mechanisms'
``save_state``/``load_state`` and ``partial_fit``/``finalize`` hooks:

:mod:`repro.serving.snapshot`
    :class:`SnapshotStore` — versioned, atomically-written on-disk
    JSON snapshots — and :func:`restore_mechanism`, which rebuilds a
    fitted estimator whose answers are bitwise identical to the saved
    one's.
:mod:`repro.serving.service`
    :class:`QueryService` — thread-safe ingest → re-finalize → answer
    loop around one mechanism, serializable with its pending (not yet
    finalized) reports.
:mod:`repro.serving.http`
    The stdlib ``ThreadingHTTPServer`` JSON API
    (``/ingest``, ``/query``, ``/snapshot``, ``/healthz``) behind the
    ``repro serve`` CLI verb.

See docs/serving.md for the operations guide and docs/api.md for the
full reference.
"""

from .http import (ServingHTTPServer, ServingRequestHandler, build_server,
                   serve)
from .service import (SERVICE_SNAPSHOT_FORMAT, SERVICE_SNAPSHOT_VERSION,
                      QueryService, ServiceError, predicate_from_wire,
                      queries_from_wire, query_from_wire, query_to_wire)
from .snapshot import (SNAPSHOT_MECHANISMS, SnapshotInfo, SnapshotStore,
                       restore_mechanism)

__all__ = [
    "QueryService",
    "SERVICE_SNAPSHOT_FORMAT",
    "SERVICE_SNAPSHOT_VERSION",
    "SNAPSHOT_MECHANISMS",
    "ServiceError",
    "ServingHTTPServer",
    "ServingRequestHandler",
    "SnapshotInfo",
    "SnapshotStore",
    "build_server",
    "predicate_from_wire",
    "queries_from_wire",
    "query_from_wire",
    "query_to_wire",
    "restore_mechanism",
    "serve",
]
