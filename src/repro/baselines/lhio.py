"""LHIO baseline: Low-dimensional HIO (Section 3.4).

LHIO improves HIO by only building *pairwise* (2-D) hierarchies, in the
spirit of CALM: users are split into ``C(d,2)`` groups, one per attribute
pair, and each pair's group is further split into ``(h + 1)^2`` subgroups,
one per 2-dim level of the pair's 2-D hierarchy.  Every subgroup reports
its 2-dim interval via OLH.  Two post-processing steps then improve the
noisy hierarchy:

* Norm-Sub on every level (non-negativity), and
* Hay et al. constrained inference adapted to two dimensions (applied
  along the first attribute and then along the second), which removes the
  inconsistency between different levels of the same hierarchy — the step
  the paper identifies as the key improvement of LHIO over HIO.

A 2-D range query is answered by decomposing both intervals into the least
hierarchy nodes and summing the corresponding 2-dim interval frequencies;
a λ-D query (λ > 2) combines the associated 2-D answers with the same
Weighted Update estimation used by the grid approaches.

Implementation note: 2-dim levels larger than ``materialize_limit`` cells
(only reached for very large domains) are evaluated lazily like in HIO and
constrained inference is skipped for such hierarchies; at the paper's
default domain size every level is materialised and the protocol is exact.
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from ..core.base import RangeQueryMechanism
from ..core.query_estimation import (PairwiseBatchAnswering,
                                     estimate_lambda_query)
from ..datasets import Dataset
from ..frequency_oracles import OptimizedLocalHash, olh_variance
from ..postprocess import constrained_inference_2d, norm_sub
from ..protocol import partition_users
from ..queries import Predicate, RangeQuery
from .hierarchy import HierarchyNode, IntervalHierarchy


class _PairHierarchy:
    """Noisy 2-D hierarchy of one attribute pair (internal to LHIO)."""

    def __init__(self, pair: tuple[int, int], hierarchy: IntervalHierarchy):
        self.pair = pair
        self.hierarchy = hierarchy
        self.levels: dict[tuple[int, int], np.ndarray] = {}
        self.lazy_groups: dict[tuple[int, int], np.ndarray] = {}
        self.lazy_cache: dict[tuple, float] = {}

    def frequency(self, node_row: HierarchyNode, node_col: HierarchyNode,
                  dataset: Dataset, epsilon: float,
                  rng: np.random.Generator) -> float:
        level = (node_row.level, node_col.level)
        if level in self.levels:
            return float(self.levels[level][node_row.index, node_col.index])
        key = (level, node_row.index, node_col.index)
        if key not in self.lazy_cache:
            members = self.lazy_groups.get(level, np.array([], dtype=int))
            n_group = max(int(members.size), 1)
            if members.size == 0:
                true_frequency = 0.0
            else:
                rows = dataset.values[members, self.pair[0]]
                cols = dataset.values[members, self.pair[1]]
                mask = ((rows >= node_row.low) & (rows <= node_row.high)
                        & (cols >= node_col.low) & (cols <= node_col.high))
                true_frequency = float(mask.mean())
            noise_std = float(np.sqrt(olh_variance(epsilon, n_group)))
            self.lazy_cache[key] = true_frequency + float(rng.normal(0.0, noise_std))
        return self.lazy_cache[key]


class LHIO(PairwiseBatchAnswering, RangeQueryMechanism):
    """Low-dimensional HIO baseline.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    branching:
        Branching factor of the 1-D hierarchies (the paper uses 4).
    materialize_limit:
        Maximum 2-dim level size (cells) that is materialised with OLH.
    consistency:
        Whether to run Norm-Sub + constrained inference (the improvement
        over HIO); disable for ablation.
    oracle_mode:
        OLH execution mode for materialised levels.
    estimation_method:
        Combiner for λ > 2 queries (``"weighted_update"`` or ``"max_entropy"``).
    seed:
        Randomness seed.
    """

    name = "LHIO"

    #: Over-limit levels answer through a lazy noise cache fed by RNG
    #: draws, so concurrent answering must be serialized by the caller.
    answering_is_pure = False

    def __init__(self, epsilon: float, branching: int = 4,
                 materialize_limit: int = 1 << 16, consistency: bool = True,
                 oracle_mode: str = "fast",
                 estimation_method: str = "weighted_update",
                 seed: int | None = None):
        super().__init__(epsilon, seed)
        self.branching = int(branching)
        self.materialize_limit = int(materialize_limit)
        self.consistency = bool(consistency)
        self.oracle_mode = oracle_mode
        self.estimation_method = estimation_method
        self.hierarchy: IntervalHierarchy | None = None
        self._dataset: Dataset | None = None
        self._pairs: dict[tuple[int, int], _PairHierarchy] = {}

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _fit(self, dataset: Dataset) -> None:
        self._dataset = dataset
        d = dataset.n_attributes
        if d < 2:
            raise ValueError("LHIO requires at least 2 attributes")
        self.hierarchy = IntervalHierarchy(dataset.domain_size, self.branching)
        pairs = list(combinations(range(d), 2))
        pair_groups = partition_users(dataset.n_users, len(pairs), self.rng)
        levels_per_dim = self.hierarchy.n_levels
        level_list = list(product(range(levels_per_dim), repeat=2))

        self._pairs = {}
        for pair, group in zip(pairs, pair_groups):
            pair_hierarchy = _PairHierarchy(pair, self.hierarchy)
            subgroups = partition_users(max(group.size, 1), len(level_list), self.rng)
            for level, subgroup in zip(level_list, subgroups):
                members = group[subgroup] if group.size else np.array([], dtype=int)
                rows_n = self.hierarchy.nodes_at_level(level[0])
                cols_n = self.hierarchy.nodes_at_level(level[1])
                if rows_n * cols_n <= self.materialize_limit:
                    pair_hierarchy.levels[level] = self._collect_level(
                        dataset, pair, level, members, rows_n, cols_n)
                else:
                    pair_hierarchy.lazy_groups[level] = members
            if self.consistency and not pair_hierarchy.lazy_groups:
                self._postprocess_pair(pair_hierarchy)
            self._pairs[pair] = pair_hierarchy

    def _collect_level(self, dataset: Dataset, pair: tuple[int, int],
                       level: tuple[int, int], members: np.ndarray,
                       rows_n: int, cols_n: int) -> np.ndarray:
        assert self.hierarchy is not None
        if members.size == 0:
            return np.zeros((rows_n, cols_n))
        row_width = self.hierarchy.node_width(level[0])
        col_width = self.hierarchy.node_width(level[1])
        rows = dataset.values[members, pair[0]] // row_width
        cols = dataset.values[members, pair[1]] // col_width
        flat = rows * cols_n + cols
        oracle = OptimizedLocalHash(self.epsilon, max(rows_n * cols_n, 2),
                                    rng=self.rng, mode=self.oracle_mode)
        estimates = oracle.estimate_frequencies(flat)[:rows_n * cols_n]
        return estimates.reshape(rows_n, cols_n)

    def _postprocess_pair(self, pair_hierarchy: _PairHierarchy) -> None:
        assert self.hierarchy is not None
        for level, values in pair_hierarchy.levels.items():
            pair_hierarchy.levels[level] = norm_sub(values)
        heights = (self.hierarchy.height, self.hierarchy.height)
        pair_hierarchy.levels = constrained_inference_2d(
            pair_hierarchy.levels, self.hierarchy.branching, heights)

    # ------------------------------------------------------------------
    # Fitted-state serialization (snapshots; see docs/serving.md)
    #
    # At the paper's scale every 2-dim level is materialised and the
    # payload is the per-pair level arrays alone.  Hierarchies with
    # over-limit (lazy) levels additionally need the group membership,
    # the lazy-noise cache and the dataset (lazy lookups re-read raw
    # records); the RNG state travels in the base-class envelope so
    # restored lazy draws continue the exact same stream.
    # ------------------------------------------------------------------
    def _snapshot_config(self) -> dict:
        return {"branching": self.branching,
                "materialize_limit": self.materialize_limit,
                "consistency": self.consistency,
                "oracle_mode": self.oracle_mode,
                "estimation_method": self.estimation_method}

    def _state_payload(self) -> dict:
        has_lazy = any(pair_hierarchy.lazy_groups
                       for pair_hierarchy in self._pairs.values())
        dataset = None
        if has_lazy:
            assert self._dataset is not None
            dataset = self._dataset.to_dict()
        return {
            "dataset": dataset,
            "pairs": {
                f"{a},{b}": {
                    "levels": {f"{l0},{l1}": values.tolist()
                               for (l0, l1), values
                               in pair_hierarchy.levels.items()},
                    "lazy_groups": {f"{l0},{l1}": members.tolist()
                                    for (l0, l1), members
                                    in pair_hierarchy.lazy_groups.items()},
                    "lazy_cache": [[list(level), row, col, value]
                                   for (level, row, col), value
                                   in pair_hierarchy.lazy_cache.items()],
                }
                for (a, b), pair_hierarchy in self._pairs.items()},
        }

    def _restore_state_payload(self, payload: dict) -> None:
        self.hierarchy = IntervalHierarchy(self._domain_size, self.branching)
        data = payload.get("dataset")
        self._dataset = Dataset.from_dict(data) if data is not None else None
        self._pairs = {}
        for key, entry in payload["pairs"].items():
            a, b = (int(part) for part in key.split(","))
            pair_hierarchy = _PairHierarchy((a, b), self.hierarchy)
            pair_hierarchy.levels = {
                tuple(int(part) for part in level_key.split(",")):
                    np.asarray(values, dtype=float)
                for level_key, values in entry["levels"].items()}
            pair_hierarchy.lazy_groups = {
                tuple(int(part) for part in level_key.split(",")):
                    np.asarray(members, dtype=np.int64)
                for level_key, members in entry["lazy_groups"].items()}
            pair_hierarchy.lazy_cache = {
                (tuple(int(part) for part in level), int(row), int(col)):
                    float(value)
                for level, row, col, value in entry["lazy_cache"]}
            self._pairs[(a, b)] = pair_hierarchy

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def _pair_hierarchy(self, attr_a: int, attr_b: int) -> tuple[_PairHierarchy, bool]:
        if (attr_a, attr_b) in self._pairs:
            return self._pairs[(attr_a, attr_b)], False
        if (attr_b, attr_a) in self._pairs:
            return self._pairs[(attr_b, attr_a)], True
        raise KeyError(f"no hierarchy for attribute pair ({attr_a}, {attr_b})")

    def _answer_pair(self, query: RangeQuery) -> float:
        # The dataset is only dereferenced on lazy-level cache misses, so
        # a restored snapshot with every level materialised answers with
        # self._dataset == None.
        assert self.hierarchy is not None
        attr_a, attr_b = query.attributes
        pair_hierarchy, flipped = self._pair_hierarchy(attr_a, attr_b)
        interval_a = query.interval(attr_a)
        interval_b = query.interval(attr_b)
        if flipped:
            interval_a, interval_b = interval_b, interval_a
        nodes_rows = self.hierarchy.decompose(*interval_a)
        nodes_cols = self.hierarchy.decompose(*interval_b)
        if not self.use_legacy_answering and not pair_hierarchy.lazy_groups:
            # Every level materialised (the paper-scale default): sum each
            # level's node combinations with one fancy-indexed gather.
            answer = 0.0
            rows_by_level: dict[int, list[int]] = {}
            cols_by_level: dict[int, list[int]] = {}
            for node in nodes_rows:
                rows_by_level.setdefault(node.level, []).append(node.index)
            for node in nodes_cols:
                cols_by_level.setdefault(node.level, []).append(node.index)
            for row_level, row_indices in rows_by_level.items():
                for col_level, col_indices in cols_by_level.items():
                    values = pair_hierarchy.levels[(row_level, col_level)]
                    answer += float(
                        values[np.ix_(row_indices, col_indices)].sum())
            return answer
        answer = 0.0
        for node_row in nodes_rows:
            for node_col in nodes_cols:
                answer += pair_hierarchy.frequency(node_row, node_col,
                                                   self._dataset, self.epsilon,
                                                   self.rng)
        return answer

    def _answer_single(self, query: RangeQuery) -> float:
        attribute = query.attributes[0]
        low, high = query.interval(attribute)
        other = 0 if attribute != 0 else 1
        padded = RangeQuery((Predicate(attribute, low, high),
                             Predicate(other, 0, self._domain_size - 1)))
        return self._answer_pair(padded)

    def _answer(self, query: RangeQuery) -> float:
        if query.dimension == 1:
            return self._answer_single(query)
        if query.dimension == 2:
            return self._answer_pair(query)
        return estimate_lambda_query(query, self._answer_pair,
                                     method=self.estimation_method)

    # ------------------------------------------------------------------
    # Batch engine (see PairwiseBatchAnswering): all 2-D lookups of a
    # workload — λ = 1 queries padded to pairs, λ = 2 queries directly,
    # the C(λ,2) sub-queries of λ > 2 queries — flow through one grouped
    # gather per (pair, 2-dim level); the λ > 2 Weighted Update then
    # runs as one NumPy batch.
    # ------------------------------------------------------------------
    def _answer_interval_pairs_batched(self, entries) -> np.ndarray:
        """Sum every entry's node combinations with one gather per level.

        Each entry ``(attr_a, attr_b, interval_a, interval_b)`` decomposes
        into (row node, column node) combinations exactly like
        :meth:`_answer_pair`; combinations from all entries are grouped
        by (attribute pair, 2-dim level) and each group is answered with
        a single fancy-indexed lookup into the level's materialised
        estimates, scatter-added back onto the entries via ``bincount``.
        Falls back to the per-entry loop when any level is lazy, which
        keeps the lazy noise draws in the legacy iteration order.
        """
        assert self.hierarchy is not None
        if not entries or any(pair_hierarchy.lazy_groups
                              for pair_hierarchy in self._pairs.values()):
            return super()._answer_interval_pairs_batched(entries)
        n_levels = self.hierarchy.n_levels
        pairs_list = list(self._pairs)
        pair_position = {pair: index for index, pair in enumerate(pairs_list)}
        node_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

        def nodes_of(interval: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
            arrays = node_cache.get(interval)
            if arrays is None:
                nodes = self.hierarchy.decompose(*interval)
                arrays = (np.array([node.level for node in nodes], dtype=np.int64),
                          np.array([node.index for node in nodes], dtype=np.int64))
                node_cache[interval] = arrays
            return arrays

        code_parts, row_parts, col_parts, entry_parts = [], [], [], []
        for position, (attr_a, attr_b, interval_a, interval_b) in enumerate(entries):
            if (attr_a, attr_b) in self._pairs:
                pair = (attr_a, attr_b)
            else:
                pair = (attr_b, attr_a)
                interval_a, interval_b = interval_b, interval_a
            row_levels, row_indices = nodes_of(tuple(interval_a))
            col_levels, col_indices = nodes_of(tuple(interval_b))
            n_rows, n_cols = row_levels.size, col_levels.size
            row_level_grid = np.repeat(row_levels, n_cols)
            col_level_grid = np.tile(col_levels, n_rows)
            code_parts.append((pair_position[pair] * n_levels + row_level_grid)
                              * n_levels + col_level_grid)
            row_parts.append(np.repeat(row_indices, n_cols))
            col_parts.append(np.tile(col_indices, n_rows))
            entry_parts.append(np.full(n_rows * n_cols, position, dtype=np.int64))
        codes = np.concatenate(code_parts)
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        entry_ids = np.concatenate(entry_parts)

        answers = np.zeros(len(entries))
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        for group, code in enumerate(unique_codes):
            mask = inverse == group
            code = int(code)
            col_level = code % n_levels
            row_level = (code // n_levels) % n_levels
            pair = pairs_list[code // (n_levels * n_levels)]
            values = self._pairs[pair].levels[(row_level, col_level)]
            answers += np.bincount(entry_ids[mask],
                                   weights=values[rows[mask], cols[mask]],
                                   minlength=len(entries))
        return answers

    def _answer_singles_batched(self, queries: list[RangeQuery]) -> np.ndarray:
        full_domain = (0, self._domain_size - 1)
        entries = []
        for query in queries:
            attribute = query.attributes[0]
            other = 0 if attribute != 0 else 1
            entries.append((attribute, other, query.interval(attribute),
                            full_domain))
        return self._answer_interval_pairs_batched(entries)

    def _answer_workload(self, queries: list[RangeQuery]) -> np.ndarray:
        if any(pair_hierarchy.lazy_groups
               for pair_hierarchy in self._pairs.values()):
            # Lazy levels draw noise on first touch; answering strictly in
            # workload order keeps the RNG stream identical to the legacy
            # path (the mixin's dimension grouping would reorder it).
            return np.array([float(self._answer(query)) for query in queries])
        return super()._answer_workload(queries)
