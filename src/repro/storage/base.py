"""Storage backend contract for the serving tier.

A :class:`StorageBackend` is the durable home of everything a
long-running :class:`~repro.serving.QueryService` process must not
lose on a crash, organized around three concerns:

*tenants*
    Named (mechanism, epsilon, schema) configurations.  One process
    hosts many tenants; the backend remembers how to rebuild each
    tenant's service after a restart.
*snapshots*
    Versioned service-state documents
    (:meth:`~repro.serving.QueryService.state_dict`) with listing
    metadata — size, creation time, mechanism, report count and the
    ingest-log position the snapshot captured — kept separate from the
    (large) document blobs so listings never read a blob.
*ingest log*
    A per-tenant write-ahead log of raw ingest batches.  Every batch
    is appended *before* it is applied in memory, so a crashed service
    replays the un-snapshotted tail on restart instead of silently
    losing reports (:class:`~repro.serving.TenantManager` owns the
    replay; ``tests/test_crash_recovery.py`` pins it bitwise).

Two implementations ship: :class:`~repro.storage.DirectoryBackend`
(the original directory-of-JSON snapshots, refactored behind this
interface) and :class:`~repro.storage.SQLiteBackend` (single-file
SQLite database in WAL mode).  docs/storage.md has the backend matrix
and recovery semantics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from datetime import datetime, timezone

#: Tenant names must be path- and URL-safe: they become directory
#: names (DirectoryBackend) and path segments (``/tenants/<name>``).
TENANT_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")

#: The tenant every non-tenant-addressed request routes to.
DEFAULT_TENANT = "default"


class StorageError(RuntimeError):
    """A storage operation the backend cannot perform."""


class CorruptEntryError(StorageError):
    """A stored entry cannot be parsed and is not a discardable tail.

    A corrupt entry at the *tail* of a write-ahead log is a torn final
    write — it was never acknowledged, so backends quarantine and skip
    it.  A corrupt entry in the *middle* of the sequence means
    acknowledged data is gone; that is this error, and it is permanent
    (:func:`repro.resilience.classify_error`)."""


class UnknownTenantError(StorageError):
    """The named tenant does not exist in this backend."""


class TenantExistsError(StorageError):
    """A tenant with this name already exists."""


def validate_tenant_name(name: str) -> str:
    """``name`` if it is a legal tenant name; raises ValueError otherwise."""
    if not isinstance(name, str) or not name:
        raise ValueError("tenant name must be a non-empty string")
    if len(name) > 64:
        raise ValueError("tenant name must be at most 64 characters")
    if not set(name) <= TENANT_NAME_CHARS:
        raise ValueError(
            f"tenant name {name!r} may only contain letters, digits, "
            "'-', '_' and '.'")
    if name.startswith("."):
        raise ValueError("tenant name may not start with '.'")
    return name


def utc_now() -> str:
    """Current time as the UTC ISO-8601 text all backends store."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class TenantRecord:
    """One tenant's durable identity: name + service configuration.

    ``config`` holds the :class:`~repro.serving.QueryService`
    construction keywords (``mechanism``, ``epsilon``, ``seed``,
    ``domain_size``, ``total_users``, ``refinalize_every``,
    ``ingest_mode``, ``mechanism_kwargs``) plus the tenant-level
    ``quota`` (max total reports; ``None`` = unlimited) and
    ``keep_last`` snapshot retention.
    """

    name: str
    config: dict = field(default_factory=dict)
    created_at: str = ""


@dataclass(frozen=True)
class SnapshotRecord:
    """Listing metadata of one stored snapshot (never the blob itself)."""

    tenant: str
    version: int
    created_at: str
    size_bytes: int
    mechanism: str | None = None
    epsilon: float | None = None
    reports_ingested: int | None = None
    #: Ingest-log sequence number this snapshot captured: entries with
    #: ``seq <= wal_seq`` are redundant once the snapshot exists.
    wal_seq: int = 0

    def to_document(self) -> dict:
        """The record as a plain JSON object (listings, wire responses)."""
        return {
            "tenant": self.tenant,
            "version": self.version,
            "created_at": self.created_at,
            "size_bytes": self.size_bytes,
            "mechanism": self.mechanism,
            "epsilon": self.epsilon,
            "reports_ingested": self.reports_ingested,
            "wal_seq": self.wal_seq,
        }


@dataclass(frozen=True)
class IngestLogEntry:
    """One write-ahead ingest-log entry: a raw batch awaiting capture."""

    tenant: str
    seq: int
    rows: list
    domain_size: int | None
    created_at: str = ""


def snapshot_meta_from_document(document: dict) -> dict:
    """The listing metadata a service snapshot document carries."""
    return {
        "mechanism": document.get("mechanism"),
        "epsilon": document.get("epsilon"),
        "reports_ingested": document.get("reports_ingested"),
    }


class StorageBackend(abc.ABC):
    """Durable tenants + snapshots + write-ahead ingest log.

    All methods are thread-safe; the HTTP worker pool calls straight
    into the backend.  Implementations raise
    :class:`UnknownTenantError` for operations on absent tenants and
    :class:`TenantExistsError` for duplicate creation.
    """

    #: Short backend name reported by ``/healthz`` and the CLI.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def create_tenant(self, name: str, config: dict) -> TenantRecord:
        """Persist a new tenant; raises :class:`TenantExistsError`."""

    @abc.abstractmethod
    def get_tenant(self, name: str) -> TenantRecord:
        """The named tenant's record; raises :class:`UnknownTenantError`."""

    @abc.abstractmethod
    def list_tenants(self) -> list[TenantRecord]:
        """All tenant records, sorted by name."""

    @abc.abstractmethod
    def delete_tenant(self, name: str) -> None:
        """Drop a tenant and all its snapshots and log entries."""

    def has_tenant(self, name: str) -> bool:
        """Whether the named tenant exists."""
        try:
            self.get_tenant(name)
        except UnknownTenantError:
            return False
        return True

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_snapshot(self, tenant: str, document: dict, *,
                      wal_seq: int = 0) -> SnapshotRecord:
        """Store ``document`` as the tenant's next snapshot version."""

    @abc.abstractmethod
    def load_snapshot(self, tenant: str,
                      version: int | None = None) -> tuple[dict,
                                                           SnapshotRecord]:
        """One stored document + its record (latest version by default).

        Raises :class:`FileNotFoundError` when the tenant has no
        snapshots (or no such version) — the same contract as
        :meth:`repro.serving.SnapshotStore.load`.
        """

    @abc.abstractmethod
    def list_snapshots(self, tenant: str | None = None) -> list[SnapshotRecord]:
        """Listing records (``tenant=None`` lists every tenant's).

        Served from metadata — the listing view / sidecar records —
        not by reading or stat-ing snapshot blobs.
        """

    @abc.abstractmethod
    def prune_snapshots(self, tenant: str, keep_last: int) -> int:
        """Keep only the newest ``keep_last`` versions; returns #removed."""

    def latest_snapshot_version(self, tenant: str) -> int | None:
        """Newest stored version for the tenant, or None."""
        records = self.list_snapshots(tenant)
        return records[-1].version if records else None

    # ------------------------------------------------------------------
    # Write-ahead ingest log
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def append_ingest(self, tenant: str, rows: list,
                      domain_size: int | None = None) -> int:
        """Durably append one raw ingest batch; returns its sequence
        number (per-tenant, strictly increasing)."""

    @abc.abstractmethod
    def pending_ingest(self, tenant: str,
                       after_seq: int = 0) -> list[IngestLogEntry]:
        """Log entries with ``seq > after_seq``, in sequence order."""

    @abc.abstractmethod
    def prune_ingest(self, tenant: str, upto_seq: int) -> int:
        """Drop entries with ``seq <= upto_seq`` (captured by a
        snapshot); returns the number removed."""

    @abc.abstractmethod
    def discard_ingest(self, tenant: str, seq: int) -> None:
        """Remove exactly one entry (rollback of a failed apply)."""

    @abc.abstractmethod
    def ingest_log_depth(self, tenant: str | None = None) -> int:
        """Number of pending entries (all tenants when ``tenant=None``)."""

    @abc.abstractmethod
    def last_ingest_seq(self, tenant: str) -> int:
        """Highest sequence number ever handed out for the tenant (0 if
        none).  Monotonic across prunes, so a recovered service keeps
        appending after the replayed tail."""

    # ------------------------------------------------------------------
    # Lifecycle / description
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Health summary: backend name, location, tenant count, log depth."""
        return {
            "backend": self.name,
            "location": self.location(),
            "tenants": len(self.list_tenants()),
            "pending_ingest_log": self.ingest_log_depth(),
        }

    @abc.abstractmethod
    def location(self) -> str:
        """Human-readable storage location (directory or database path)."""

    def close(self) -> None:
        """Release backend resources (connections, handles)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.location()!r})"
