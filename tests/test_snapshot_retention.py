"""SnapshotStore retention edge cases (keep_last pruning, claim races).

PR 4 shipped the versioned store with a ``keep_last`` retention cap and
an exclusive hard-link version claim; these tests pin the behaviours the
ops guide promises: pruning removes exactly the oldest versions, the
latest version always survives (and restores) right after a prune, and
concurrent writers never overwrite or skip-number each other's
snapshots.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.serving import SnapshotStore


def _document(tag: int) -> dict:
    return {"format": "test-doc", "version": 1, "tag": tag}


# ----------------------------------------------------------------------
# keep_last pruning order
# ----------------------------------------------------------------------
def test_keep_last_prunes_oldest_versions_in_order(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=3)
    for tag in range(6):
        store.save(_document(tag))
    # Exactly the newest three survive, oldest three are gone.
    assert store.versions() == [4, 5, 6]
    for version in (1, 2, 3):
        assert not store.path_of(version).exists()
        with pytest.raises(FileNotFoundError, match=f"version {version}"):
            store.load(version)
    # Surviving documents are the ones written under those versions.
    assert [store.load(version)["tag"] for version in (4, 5, 6)] == [3, 4, 5]


def test_keep_last_one_keeps_only_the_newest(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=1)
    for tag in range(4):
        info = store.save(_document(tag))
    assert store.versions() == [info.version] == [4]
    assert store.load()["tag"] == 3


def test_keep_last_validation_and_unbounded_default(tmp_path):
    with pytest.raises(ValueError, match="keep_last"):
        SnapshotStore(tmp_path, keep_last=0)
    store = SnapshotStore(tmp_path)  # no cap
    for tag in range(5):
        store.save(_document(tag))
    assert store.versions() == [1, 2, 3, 4, 5]


def test_pruning_applies_to_preexisting_versions(tmp_path):
    """Opening an existing store with a cap prunes on the next save."""
    unbounded = SnapshotStore(tmp_path)
    for tag in range(5):
        unbounded.save(_document(tag))
    capped = SnapshotStore(tmp_path, keep_last=2)
    capped.save(_document(99))
    assert capped.versions() == [5, 6]


# ----------------------------------------------------------------------
# Restore-after-prune of the latest version
# ----------------------------------------------------------------------
def test_latest_version_restores_right_after_prune(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=2)
    for tag in range(10):
        saved = store.save(_document(tag))
        # After every save (and its prune) the just-written version is
        # the latest and loads back byte-identically.
        assert store.latest_version() == saved.version
        assert store.load() == _document(tag)
        assert store.load(saved.version) == _document(tag)


def test_load_of_pruned_explicit_version_names_the_version(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=1)
    first = store.save(_document(0))
    store.save(_document(1))
    with pytest.raises(FileNotFoundError,
                       match=f"no snapshot version {first.version}"):
        store.load(first.version)


# ----------------------------------------------------------------------
# Concurrent version-claim collisions
# ----------------------------------------------------------------------
def test_concurrent_saves_claim_distinct_contiguous_versions(tmp_path):
    """Racing writers never overwrite or skip a version slot."""
    store = SnapshotStore(tmp_path)
    n_writers, per_writer = 8, 5
    barrier = threading.Barrier(n_writers)
    claims: list[tuple[int, int]] = []
    lock = threading.Lock()

    def writer(writer_id: int) -> None:
        barrier.wait()
        for sequence in range(per_writer):
            info = store.save(_document(writer_id * 1000 + sequence))
            with lock:
                claims.append((writer_id, info.version))

    threads = [threading.Thread(target=writer, args=(writer_id,))
               for writer_id in range(n_writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    versions = sorted(version for _, version in claims)
    # Every claim is unique and the numbering has no holes.
    assert versions == list(range(1, n_writers * per_writer + 1))
    assert store.versions() == versions
    # Every stored document is intact (no torn/overwritten writes), and
    # each writer's documents all landed.
    tags = {store.load(version)["tag"] for version in versions}
    assert tags == {writer_id * 1000 + sequence
                    for writer_id in range(n_writers)
                    for sequence in range(per_writer)}


def test_concurrent_saves_with_retention_keep_the_newest(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=4)
    n_writers = 6
    barrier = threading.Barrier(n_writers)

    def writer(writer_id: int) -> None:
        barrier.wait()
        store.save(_document(writer_id))

    threads = [threading.Thread(target=writer, args=(writer_id,))
               for writer_id in range(n_writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    survivors = store.versions()
    # At most keep_last versions remain, they are the newest slots, and
    # the latest one loads.
    assert len(survivors) <= 4
    assert survivors == sorted(survivors)
    assert survivors[-1] == n_writers
    assert store.load() == store.load(n_writers)
    for version in survivors:
        json.dumps(store.load(version))  # intact JSON
