"""Hybrid-Dimensional Grids (HDG) mechanism — the paper's main contribution.

HDG extends TDG with finer-grained 1-D grids and response matrices:

1. **Constructing grids** — users are split into ``d + C(d,2)`` groups.
   ``d`` groups each report a 1-D grid (granularity ``g1``) for one
   attribute, ``C(d,2)`` groups each report a 2-D grid (granularity
   ``g2``) for one attribute pair, both through OLH.  The granularities
   follow the guideline of Section 4.6.
2. **Removing negativity and inconsistency** — Norm-Sub and cross-grid
   consistency, now spanning the 1-D and 2-D grids together (Phase 2).
3. **Answering range queries** — before answering, a ``c x c`` response
   matrix is built per attribute pair from its three grids (Algorithm 1).
   A 2-D query is answered from the pair's 2-D grid, with partially
   covered cells evaluated through the response matrix instead of the
   uniformity assumption.  λ-D queries (λ > 2) combine the associated 2-D
   answers with Weighted Update (Algorithm 2); 1-D queries read the
   attribute's own fine-grained 1-D grid.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..datasets import Dataset
from ..frequency_oracles import OptimizedLocalHash, SupportAccumulator
from ..protocol import partition_users, partition_users_weighted
from ..queries import RangeQuery
from .base import RangeQueryMechanism
from .granularity import (DEFAULT_ALPHA1, DEFAULT_ALPHA2,
                          choose_granularities_hdg)
from .grid import Grid1D, Grid2D
from .phase2 import run_phase2
from .prefix_sum import SummedAreaTable
from .query_estimation import PairwiseBatchAnswering, estimate_lambda_query
from .response_matrix import build_response_matrix


class HDG(PairwiseBatchAnswering, RangeQueryMechanism):
    """Hybrid-Dimensional Grids under ε-LDP.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    granularities:
        Optional explicit ``(g1, g2)`` pair; by default the guideline
        values are derived at fit time.
    alpha1, alpha2:
        Guideline constants (used only when ``granularities`` is None).
    sigma:
        Fraction of users assigned to 1-D grids.  ``None`` (default) uses
        the equal-population split σ0 = d / (d + C(d,2)); Figure 15 sweeps
        this parameter.
    postprocess:
        Whether to run Phase 2.  ``False`` yields the IHDG ablation
        variant from Appendix A.1.
    consistency_rounds:
        Number of Norm-Sub/consistency interleavings in Phase 2.
    estimation_method:
        ``"weighted_update"`` (Algorithm 2) or ``"max_entropy"``
        (Appendix A.8) for λ > 2 queries.
    matrix_iterations, estimation_iterations:
        Iteration caps for Algorithms 1 and 2 (the paper caps both at 100
        for the inconsistent variants; converged runs stop much earlier).
    convergence_threshold:
        Convergence threshold for Algorithms 1 and 2 (the paper uses any
        value below ``1/n``).
    oracle_mode:
        ``"fast"`` or ``"user"`` execution mode of the OLH oracle.
    seed:
        Seed for grouping and perturbation randomness.
    """

    name = "HDG"

    def __init__(self, epsilon: float,
                 granularities: tuple[int, int] | None = None,
                 alpha1: float = DEFAULT_ALPHA1, alpha2: float = DEFAULT_ALPHA2,
                 sigma: float | None = None, postprocess: bool = True,
                 consistency_rounds: int = 3,
                 estimation_method: str = "weighted_update",
                 matrix_iterations: int = 100, estimation_iterations: int = 100,
                 convergence_threshold: float = 1e-7,
                 oracle_mode: str = "fast", seed: int | None = None):
        super().__init__(epsilon, seed)
        self.granularities = granularities
        self.alpha1 = float(alpha1)
        self.alpha2 = float(alpha2)
        if sigma is not None and not 0.0 < sigma < 1.0:
            raise ValueError(f"sigma must be in (0, 1), got {sigma}")
        self.sigma = sigma
        self.postprocess = bool(postprocess)
        self.consistency_rounds = int(consistency_rounds)
        self.estimation_method = estimation_method
        self.matrix_iterations = int(matrix_iterations)
        self.estimation_iterations = int(estimation_iterations)
        self.convergence_threshold = float(convergence_threshold)
        self.oracle_mode = oracle_mode
        self.grids_1d: dict[int, Grid1D] = {}
        self.grids_2d: dict[tuple[int, int], Grid2D] = {}
        self.response_matrices: dict[tuple[int, int], np.ndarray] = {}
        #: Per-pair (source matrix, summed-area table) pairs; the source
        #: reference detects a replaced response matrix so the table is
        #: rebuilt instead of served stale.
        self._response_indexes: dict[tuple[int, int],
                                     tuple[np.ndarray, SummedAreaTable]] = {}
        self.matrix_iteration_history: dict[tuple[int, int], list[float]] = {}
        self.chosen_g1: int | None = None
        self.chosen_g2: int | None = None
        self._acc_1d: dict[int, SupportAccumulator | None] = {}
        self._acc_2d: dict[tuple[int, int], SupportAccumulator | None] = {}
        self._total_reports = 0

    # ------------------------------------------------------------------
    # Phase 1 + 2: collection and post-processing
    # ------------------------------------------------------------------
    def _fit(self, dataset: Dataset) -> None:
        self._reset_aggregation()
        self._partial_fit(dataset, total_users=None)
        self._finalize()

    def _reset_aggregation(self) -> None:
        self.grids_1d = {}
        self.grids_2d = {}
        self.response_matrices = {}
        self._response_indexes = {}
        self.matrix_iteration_history = {}
        self.chosen_g1 = None
        self.chosen_g2 = None
        self._acc_1d = {}
        self._acc_2d = {}
        self._total_reports = 0

    def _ensure_layout(self, planning_users: int | None) -> None:
        if self.chosen_g1 is not None:
            return
        d, c = self._n_attributes, self._domain_size
        if d < 2:
            raise ValueError(f"{self.name} requires at least 2 attributes")
        pairs = list(combinations(range(d), 2))
        if self.granularities is not None:
            g1, g2 = int(self.granularities[0]), int(self.granularities[1])
            if g1 < g2:
                raise ValueError(
                    f"g1 ({g1}) must be at least g2 ({g2}) so the consistency "
                    "buckets align")
        else:
            if planning_users is None:
                raise ValueError(
                    "total_users is required to derive the guideline "
                    "granularities before the first batch")
            planning = choose_granularities_hdg(
                self.epsilon, planning_users, d, c,
                alpha1=self.alpha1, alpha2=self.alpha2, sigma=self.sigma)
            g1, g2 = planning.g1, planning.g2
        self.chosen_g1, self.chosen_g2 = g1, g2
        self.grids_1d = {attribute: Grid1D(attribute, c, g1)
                         for attribute in range(d)}
        self.grids_2d = {pair: Grid2D(pair, c, g2) for pair in pairs}
        self._acc_1d = {attribute: None for attribute in range(d)}
        self._acc_2d = {pair: None for pair in pairs}

    def _partial_fit(self, dataset: Dataset, total_users: int | None) -> None:
        d = dataset.n_attributes
        if d < 2:
            raise ValueError("HDG requires at least 2 attributes")
        pairs = list(combinations(range(d), 2))
        self._ensure_layout(total_users or dataset.n_users)
        g1, g2 = self.chosen_g1, self.chosen_g2

        # Split this batch's population between 1-D and 2-D duties (the σ
        # split applies per shard), then into per-grid groups.
        n1, n2 = self._batch_split(dataset.n_users, d)
        block_1d, block_2d = self._population_blocks(dataset.n_users, n1, n2)
        groups_1d = partition_users(max(block_1d.size, 1), d, self.rng)
        groups_2d = partition_users(max(block_2d.size, 1), len(pairs), self.rng)

        for attribute, group in zip(range(d), groups_1d):
            members = block_1d[group] if block_1d.size else np.array([], dtype=int)
            if members.size > 0:
                oracle = OptimizedLocalHash(self.epsilon, g1, rng=self.rng,
                                            mode=self.oracle_mode)
                batch = self.grids_1d[attribute].accumulate(
                    dataset.column(attribute)[members], oracle)
                if self._acc_1d[attribute] is None:
                    self._acc_1d[attribute] = batch
                else:
                    self._acc_1d[attribute].merge(batch)

        for pair, group in zip(pairs, groups_2d):
            members = block_2d[group] if block_2d.size else np.array([], dtype=int)
            if members.size > 0:
                oracle = OptimizedLocalHash(self.epsilon, g2 * g2, rng=self.rng,
                                            mode=self.oracle_mode)
                batch = self.grids_2d[pair].accumulate(
                    dataset.columns(pair)[members], oracle)
                if self._acc_2d[pair] is None:
                    self._acc_2d[pair] = batch
                else:
                    self._acc_2d[pair].merge(batch)
        self._total_reports += dataset.n_users

    def _merge(self, other: "HDG") -> None:
        if other.chosen_g1 is None:
            return
        if self.chosen_g1 is None:
            self.chosen_g1, self.chosen_g2 = other.chosen_g1, other.chosen_g2
            c = self._domain_size
            self.grids_1d = {attribute: Grid1D(attribute, c, other.chosen_g1)
                             for attribute in other.grids_1d}
            self.grids_2d = {pair: Grid2D(pair, c, other.chosen_g2)
                             for pair in other.grids_2d}
            self._acc_1d = {attribute: None for attribute in other.grids_1d}
            self._acc_2d = {pair: None for pair in other.grids_2d}
        elif (self.chosen_g1, self.chosen_g2) != (other.chosen_g1, other.chosen_g2):
            raise ValueError(
                f"shards disagree on granularities (g1={self.chosen_g1}, "
                f"g2={self.chosen_g2}) vs (g1={other.chosen_g1}, "
                f"g2={other.chosen_g2}); pass the same total_users or explicit "
                "granularities to every shard")
        for attribute, accumulator in other._acc_1d.items():
            if accumulator is None:
                continue
            if self._acc_1d[attribute] is None:
                self._acc_1d[attribute] = accumulator.copy()
            else:
                self._acc_1d[attribute].merge(accumulator)
        for pair, accumulator in other._acc_2d.items():
            if accumulator is None:
                continue
            if self._acc_2d[pair] is None:
                self._acc_2d[pair] = accumulator.copy()
            else:
                self._acc_2d[pair].merge(accumulator)
        self._total_reports += other._total_reports

    def _finalize(self) -> None:
        g1, g2 = self.chosen_g1, self.chosen_g2
        c = self._domain_size
        for attribute, grid in self.grids_1d.items():
            oracle = OptimizedLocalHash(self.epsilon, g1, rng=self.rng,
                                        mode=self.oracle_mode)
            grid.finalize_from(self._acc_1d[attribute], oracle)
        for pair, grid in self.grids_2d.items():
            oracle = OptimizedLocalHash(self.epsilon, g2 * g2, rng=self.rng,
                                        mode=self.oracle_mode)
            grid.finalize_from(self._acc_2d[pair], oracle)

        if self.postprocess:
            run_phase2(self._n_attributes, self.grids_1d, self.grids_2d,
                       n_buckets=g2, rounds=self.consistency_rounds)

        # Build all response matrices up front (they are reused by every query).
        threshold = min(self.convergence_threshold,
                        1.0 / max(self._total_reports, 1))
        self.response_matrices = {}
        self._response_indexes = {}
        self.matrix_iteration_history = {}
        for pair, grid in self.grids_2d.items():
            result = build_response_matrix(self.grids_1d[pair[0]],
                                           self.grids_1d[pair[1]], grid, c,
                                           threshold=threshold,
                                           max_iterations=self.matrix_iterations,
                                           track_history=True)
            self.response_matrices[pair] = result.matrix
            self.matrix_iteration_history[pair] = result.change_history

        # Precompute the batch engine's lookup tables: prefix-sum indexes
        # over every grid plus a summed-area table per response matrix.
        for grid in self.grids_1d.values():
            grid.build_index()
        for grid in self.grids_2d.values():
            grid.build_index()
        self._response_indexes = {
            pair: (matrix, SummedAreaTable(matrix))
            for pair, matrix in self.response_matrices.items()}

    # ------------------------------------------------------------------
    # Shared-memory accumulator layout (see docs/ingest.md)
    # ------------------------------------------------------------------
    def accumulator_slots(self) -> list[tuple[str, int]]:
        if self.chosen_g1 is None:
            raise RuntimeError(
                "aggregation layout not prepared; call prepare_aggregation "
                "or ingest a batch first")
        g1, g2 = self.chosen_g1, self.chosen_g2
        slots = [(f"1d:{attribute}", g1)
                 for attribute in sorted(self._acc_1d)]
        slots.extend((f"2d:{a},{b}", g2 * g2)
                     for (a, b) in sorted(self._acc_2d))
        return slots

    def _accumulator_ref(self, slot: str) -> tuple[dict, object]:
        section, _, subkey = slot.partition(":")
        if section == "1d":
            return self._acc_1d, int(subkey)
        if section == "2d":
            a, _, b = subkey.partition(",")
            return self._acc_2d, (int(a), int(b))
        raise KeyError(slot)

    # ------------------------------------------------------------------
    # Shard-state serialization (see docs/architecture.md for the schema)
    # ------------------------------------------------------------------
    def shard_state(self) -> dict:
        """Portable snapshot of the un-finalised accumulator state."""
        if self.chosen_g1 is None:
            raise RuntimeError("no batches ingested; nothing to serialize")
        return {
            "mechanism": self.name,
            "epsilon": self.epsilon,
            "n_attributes": self._n_attributes,
            "domain_size": self._domain_size,
            "granularity": {"g1": self.chosen_g1, "g2": self.chosen_g2},
            "total_reports": self._total_reports,
            "accumulators": {
                "1d": {str(attribute): (acc.to_dict() if acc is not None else None)
                       for attribute, acc in self._acc_1d.items()},
                "2d": {f"{a},{b}": (acc.to_dict() if acc is not None else None)
                       for (a, b), acc in self._acc_2d.items()},
            },
        }

    def load_shard_state(self, state: dict) -> "HDG":
        """Restore accumulator state produced by :meth:`shard_state`."""
        if self.chosen_g1 is not None or self._fitted:
            raise RuntimeError("shard state can only be loaded into a fresh "
                               "mechanism instance")
        if state["mechanism"] != self.name:
            raise ValueError(f"state belongs to {state['mechanism']!r}, "
                             f"not {self.name!r}")
        if float(state["epsilon"]) != self.epsilon:
            raise ValueError("state was collected under a different epsilon")
        self._n_attributes = int(state["n_attributes"])
        self._domain_size = int(state["domain_size"])
        self.chosen_g1 = int(state["granularity"]["g1"])
        self.chosen_g2 = int(state["granularity"]["g2"])
        self._total_reports = int(state["total_reports"])
        self._n_reports = self._total_reports
        d, c = self._n_attributes, self._domain_size
        pairs = list(combinations(range(d), 2))
        self.grids_1d = {attribute: Grid1D(attribute, c, self.chosen_g1)
                         for attribute in range(d)}
        self.grids_2d = {pair: Grid2D(pair, c, self.chosen_g2) for pair in pairs}
        entries_1d = state["accumulators"]["1d"]
        entries_2d = state["accumulators"]["2d"]
        self._acc_1d = {
            attribute: (SupportAccumulator.from_dict(entries_1d[str(attribute)])
                        if entries_1d.get(str(attribute)) is not None else None)
            for attribute in range(d)}
        self._acc_2d = {
            pair: (SupportAccumulator.from_dict(entries_2d[f"{pair[0]},{pair[1]}"])
                   if entries_2d.get(f"{pair[0]},{pair[1]}") is not None else None)
            for pair in pairs}
        return self

    # ------------------------------------------------------------------
    # Fitted-state serialization (snapshots; see docs/serving.md)
    # ------------------------------------------------------------------
    def _snapshot_config(self) -> dict:
        return {
            "granularities": (list(self.granularities)
                              if self.granularities is not None else None),
            "alpha1": self.alpha1,
            "alpha2": self.alpha2,
            "sigma": self.sigma,
            "postprocess": self.postprocess,
            "consistency_rounds": self.consistency_rounds,
            "estimation_method": self.estimation_method,
            "matrix_iterations": self.matrix_iterations,
            "estimation_iterations": self.estimation_iterations,
            "convergence_threshold": self.convergence_threshold,
            "oracle_mode": self.oracle_mode,
        }

    def _state_payload(self) -> dict:
        return {
            "g1": self.chosen_g1,
            "g2": self.chosen_g2,
            "total_reports": self._total_reports,
            "grids_1d": {str(attribute): grid.frequencies.tolist()
                         for attribute, grid in self.grids_1d.items()},
            "grids_2d": {f"{a},{b}": grid.frequencies.tolist()
                         for (a, b), grid in self.grids_2d.items()},
            "response_matrices": {f"{a},{b}": matrix.tolist()
                                  for (a, b), matrix
                                  in self.response_matrices.items()},
            "matrix_iteration_history": {
                f"{a},{b}": [float(change) for change in history]
                for (a, b), history in self.matrix_iteration_history.items()},
        }

    def _restore_state_payload(self, payload: dict) -> None:
        self.chosen_g1 = int(payload["g1"])
        self.chosen_g2 = int(payload["g2"])
        self._total_reports = int(payload["total_reports"])
        if self._n_reports is None:
            # Pre-IR snapshot documents carry no top-level n_reports, but
            # the grid payload always recorded the same count.
            self._n_reports = self._total_reports
        c = self._domain_size
        self.grids_1d = {}
        for key, values in payload["grids_1d"].items():
            attribute = int(key)
            grid = Grid1D(attribute, c, self.chosen_g1)
            grid.set_frequencies(np.asarray(values, dtype=float))
            grid.build_index()
            self.grids_1d[attribute] = grid
        self.grids_2d = {}
        for key, rows in payload["grids_2d"].items():
            a, b = (int(part) for part in key.split(","))
            grid = Grid2D((a, b), c, self.chosen_g2)
            grid.set_frequencies(np.asarray(rows, dtype=float))
            grid.build_index()
            self.grids_2d[(a, b)] = grid
        self.response_matrices = {}
        for key, rows in payload["response_matrices"].items():
            a, b = (int(part) for part in key.split(","))
            self.response_matrices[(a, b)] = np.asarray(rows, dtype=float)
        self._response_indexes = {
            pair: (matrix, SummedAreaTable(matrix))
            for pair, matrix in self.response_matrices.items()}
        self.matrix_iteration_history = {}
        for key, history in payload.get("matrix_iteration_history", {}).items():
            a, b = (int(part) for part in key.split(","))
            self.matrix_iteration_history[(a, b)] = [float(change)
                                                     for change in history]
        self._acc_1d = {attribute: None for attribute in self.grids_1d}
        self._acc_2d = {pair: None for pair in self.grids_2d}

    def _batch_split(self, n_users: int, d: int) -> tuple[int, int]:
        """1-D/2-D user split ``(n1, n2)`` for one batch.

        Same proportions and clamping as the guideline's user split, but
        computable for arbitrarily small batches: a 1-user batch sends its
        user to one side instead of failing the guideline's n1 >= 1 / n2 >= 1
        requirement.
        """
        if self.sigma is None:
            m1, m2 = d, d * (d - 1) // 2
            raw = n_users * m1 / (m1 + m2)
        else:
            raw = n_users * self.sigma
        n1 = int(round(raw))
        if n_users >= 2:
            n1 = min(max(n1, 1), n_users - 1)
        else:
            n1 = min(max(n1, 0), n_users)
        return n1, n_users - n1

    def _population_blocks(self, n_users: int, n1: int,
                           n2: int) -> tuple[np.ndarray, np.ndarray]:
        """Split user indices into the 1-D block and the 2-D block."""
        blocks = partition_users_weighted(n_users, [n1, n2], self.rng)
        return blocks[0], blocks[1]

    # ------------------------------------------------------------------
    # Phase 3: answering
    # ------------------------------------------------------------------
    def _pair_key(self, attr_a: int, attr_b: int) -> tuple[tuple[int, int], bool]:
        if (attr_a, attr_b) in self.grids_2d:
            return (attr_a, attr_b), False
        if (attr_b, attr_a) in self.grids_2d:
            return (attr_b, attr_a), True
        raise KeyError(f"no grid for attribute pair ({attr_a}, {attr_b})")

    def _pair_intervals(self, query: RangeQuery) -> tuple[tuple[int, int],
                                                          tuple[int, int],
                                                          tuple[int, int]]:
        """The grid key of a pair query plus the grid-axis-ordered intervals."""
        attr_a, attr_b = query.attributes
        key, flipped = self._pair_key(attr_a, attr_b)
        interval_a = query.interval(attr_a)
        interval_b = query.interval(attr_b)
        if flipped:
            interval_a, interval_b = interval_b, interval_a
        return key, interval_a, interval_b

    def _response_index(self, key: tuple[int, int]) -> SummedAreaTable | None:
        """The pair's response-matrix summed-area table, built on demand.

        Returning None only when the pair genuinely has no response
        matrix keeps the batch path on the HDG rule whenever the scalar
        path would be — a missing or out-of-date cache entry (the pair's
        matrix was replaced after finalize) is rebuilt, never silently
        downgraded to the uniformity rule or served stale.
        """
        matrix = self.response_matrices.get(key)
        if matrix is None:
            return None
        entry = self._response_indexes.get(key)
        if entry is None or entry[0] is not matrix:
            entry = (matrix, SummedAreaTable(matrix))
            self._response_indexes[key] = entry
        return entry[1]

    def _answer_pair(self, query: RangeQuery) -> float:
        key, interval_a, interval_b = self._pair_intervals(query)
        grid = self.grids_2d[key]
        if self.use_legacy_answering:
            return grid.answer_range_loop(interval_a, interval_b,
                                          self.response_matrices.get(key))
        return grid.answer_range(interval_a, interval_b,
                                 response_matrix=self.response_matrices.get(key),
                                 response_index=self._response_index(key))

    def _answer_single(self, query: RangeQuery) -> float:
        attribute = query.attributes[0]
        low, high = query.interval(attribute)
        grid = self.grids_1d[attribute]
        if self.use_legacy_answering:
            return grid.answer_range_loop(low, high)
        return grid.answer_range(low, high)

    # ------------------------------------------------------------------
    # Batch engine
    # ------------------------------------------------------------------
    def _answer_interval_pairs_batched(self, entries) -> np.ndarray:
        """Grouped, vectorised corner lookups through the response SATs."""
        return self._grid_interval_pairs_batched(entries, self.grids_2d,
                                                 self._response_index)

    _supports_fused_plans = True

    def _fused_pair_ranges(self, key, row_lows, row_highs, col_lows,
                           col_highs) -> np.ndarray:
        """One pair grid's corner lookups for a compiled pair group."""
        grid = self.grids_2d.get(key)
        if grid is None:
            key = (key[1], key[0])
            grid = self.grids_2d[key]
            row_lows, row_highs, col_lows, col_highs = \
                col_lows, col_highs, row_lows, row_highs
        return grid.answer_ranges(row_lows, row_highs, col_lows, col_highs,
                                  response_index=self._response_index(key))

    def _fused_attribute_ranges(self, attribute, lows, highs) -> np.ndarray:
        """1-D group: vectorised lookups on the fine-grained 1-D grid."""
        return self.grids_1d[attribute].answer_ranges(lows, highs)

    def _answer_singles_batched(self, queries: list[RangeQuery]) -> np.ndarray:
        """Batch 1-D answers from the fine-grained 1-D grids."""
        answers = np.empty(len(queries))
        by_attribute: dict[int, list[tuple[int, int, int]]] = {}
        for position, query in enumerate(queries):
            attribute = query.attributes[0]
            low, high = query.interval(attribute)
            by_attribute.setdefault(attribute, []).append((position, low, high))
        for attribute, entries in by_attribute.items():
            positions = np.array([entry[0] for entry in entries])
            lows = np.array([entry[1] for entry in entries])
            highs = np.array([entry[2] for entry in entries])
            answers[positions] = self.grids_1d[attribute].answer_ranges(lows, highs)
        return answers

    def _answer(self, query: RangeQuery) -> float:
        if query.dimension == 1:
            return self._answer_single(query)
        if query.dimension == 2:
            return self._answer_pair(query)
        return estimate_lambda_query(query, self._answer_pair,
                                     method=self.estimation_method,
                                     max_iterations=self.estimation_iterations)

    # ------------------------------------------------------------------
    # Diagnostics used by the convergence experiments
    # ------------------------------------------------------------------
    def estimate_with_history(self, query: RangeQuery) -> tuple[float, list[float]]:
        """Answer a λ-D query and return Algorithm 2's change history."""
        self._require_fitted()
        self._validate_query(query)
        if query.dimension <= 2:
            return self._answer(query), []
        return estimate_lambda_query(query, self._answer_pair,
                                     method=self.estimation_method,
                                     max_iterations=self.estimation_iterations,
                                     track_history=True)


class IHDG(HDG):
    """Inconsistent HDG: the Phase-2 ablation variant (Appendix A.1)."""

    name = "IHDG"

    def __init__(self, epsilon: float, **kwargs):
        kwargs["postprocess"] = False
        super().__init__(epsilon, **kwargs)
