#!/usr/bin/env python3
"""AST lint for silent error handling in the library source.

Walks the given files (or all ``*.py`` under given directories) and
flags the two patterns that make failures invisible:

1. **Bare excepts** — ``except:`` catches everything including
   ``KeyboardInterrupt`` and ``SystemExit``; the resilience layer
   depends on errors reaching :func:`repro.resilience.classify_error`,
   not vanishing.
2. **Swallowed broad excepts** — ``except Exception:`` (or
   ``BaseException``) whose body does nothing: only ``pass``/``...``.
   Catching broadly is fine *when the handler acts* (logs, converts,
   re-raises, falls back); catching broadly and discarding is not.

A handler can be allowlisted with a trailing ``# lint: silent-except``
comment on its ``except`` line when silence is the documented intent
(e.g. best-effort cleanup where the resource may already be gone).

Usage: python tools/check_error_handling.py src tools benchmarks
Exit status is non-zero when any violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Trailing comment that allowlists one except handler.
ALLOW_MARKER = "# lint: silent-except"

#: Exception names considered "broad": swallowing these silently hides
#: every failure mode at once.
BROAD_NAMES = {"Exception", "BaseException"}


def collect_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (or a tuple
    containing one of them)."""
    node = handler.type
    if node is None:
        return True
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in types:
        if isinstance(item, ast.Name) and item.id in BROAD_NAMES:
            return True
        if isinstance(item, ast.Attribute) and item.attr in BROAD_NAMES:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing: only pass/... statements."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if (isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis):
            continue
        return False
    return True


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: cannot parse: {error.msg}"]
    lines = source.splitlines()
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if ALLOW_MARKER in line:
            continue
        if node.type is None:
            problems.append(
                f"{path}:{node.lineno}: bare 'except:' — name the "
                "exception types (or 'except Exception' with a handler "
                "that acts)")
        elif _is_broad(node) and _swallows(node):
            problems.append(
                f"{path}:{node.lineno}: 'except "
                f"{ast.unparse(node.type)}' with an empty body silently "
                "swallows every failure — log, convert or re-raise "
                f"(or annotate '{ALLOW_MARKER}')")
    return problems


def main(arguments: list[str]) -> int:
    if not arguments:
        print("usage: check_error_handling.py <file-or-directory>...",
              file=sys.stderr)
        return 2
    files = collect_files(arguments)
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} file(s): "
          f"{len(problems)} silent-error problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
