"""Response-matrix construction (Algorithm 1 of the paper).

For an attribute pair ``(a_j, a_k)``, HDG combines the pair's 2-D grid
with the two attributes' finer 1-D grids into a ``c x c`` response matrix
``M`` whose entry ``M[v_j, v_k]`` estimates the frequency of the 2-D value
``(v_j, v_k)``.  Algorithm 1 is a Weighted Update iteration: starting from
the uniform matrix, repeatedly rescale — for every cell ``s`` of every one
of the three grids — the block of ``M`` entries covered by ``s`` so that
the block sums to the cell's (post-processed, non-negative) frequency,
until the total change per sweep falls below a threshold (any value below
``1/n`` per the paper).

Because grid cells are axis-aligned equal-width blocks, the updates are
implemented as vectorised block rescalings rather than through the generic
constraint engine; the semantics match Algorithm 1 line for line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grid import Grid1D, Grid2D


@dataclass
class ResponseMatrixResult:
    """A built response matrix plus convergence diagnostics."""

    matrix: np.ndarray
    iterations: int
    converged: bool
    change_history: list[float] = field(default_factory=list)


def _scale_blocks(matrix: np.ndarray, block_sums: np.ndarray,
                  targets: np.ndarray, rows_per_block: int,
                  cols_per_block: int) -> None:
    """Rescale each (rows_per_block x cols_per_block) block of ``matrix``.

    ``block_sums`` and ``targets`` have one entry per block; blocks with a
    zero current sum are left untouched (Algorithm 1 line 7).
    """
    g_rows = matrix.shape[0] // rows_per_block
    g_cols = matrix.shape[1] // cols_per_block
    ratios = np.ones_like(targets)
    nonzero = block_sums != 0.0
    ratios[nonzero] = targets[nonzero] / block_sums[nonzero]
    blocked = matrix.reshape(g_rows, rows_per_block, g_cols, cols_per_block)
    blocked *= ratios.reshape(g_rows, 1, g_cols, 1)


def _block_sums(matrix: np.ndarray, rows_per_block: int,
                cols_per_block: int) -> np.ndarray:
    g_rows = matrix.shape[0] // rows_per_block
    g_cols = matrix.shape[1] // cols_per_block
    blocked = matrix.reshape(g_rows, rows_per_block, g_cols, cols_per_block)
    return blocked.sum(axis=(1, 3))


def build_response_matrix(grid_row: Grid1D, grid_col: Grid1D, grid_pair: Grid2D,
                          domain_size: int, threshold: float = 1e-7,
                          max_iterations: int = 100,
                          track_history: bool = False) -> ResponseMatrixResult:
    """Algorithm 1: build the ``c x c`` response matrix for one attribute pair.

    Parameters
    ----------
    grid_row, grid_col:
        The 1-D grids of the pair's first and second attribute (these
        constrain row-band and column-band sums of the matrix).
    grid_pair:
        The pair's 2-D grid (constrains block sums).
    domain_size:
        The common domain size ``c``.
    threshold:
        Convergence threshold on the summed absolute change of the matrix
        per sweep; the paper recommends any value below ``1/n``.
    max_iterations:
        Safety bound on sweeps (the paper observes convergence within
        roughly twenty).
    track_history:
        Record the per-sweep change for the convergence experiment
        (Figure 17).
    """
    c = int(domain_size)
    if grid_pair.domain_size != c or grid_row.domain_size != c or grid_col.domain_size != c:
        raise ValueError("all grids must share the requested domain size")
    matrix = np.full((c, c), 1.0 / (c * c))
    history: list[float] = []
    converged = False
    iterations = 0

    row_band = grid_row.cell_width      # rows per 1-D cell of the first attribute
    col_band = grid_col.cell_width      # columns per 1-D cell of the second attribute
    pair_band = grid_pair.cell_width    # rows/cols per 2-D cell

    for iterations in range(1, max_iterations + 1):
        before = matrix.copy()

        # 1-D grid of the row attribute: each cell covers a horizontal band.
        sums = _block_sums(matrix, row_band, c)
        _scale_blocks(matrix, sums, grid_row.frequencies.reshape(-1, 1),
                      row_band, c)

        # 1-D grid of the column attribute: each cell covers a vertical band.
        sums = _block_sums(matrix, c, col_band)
        _scale_blocks(matrix, sums, grid_col.frequencies.reshape(1, -1),
                      c, col_band)

        # 2-D grid: each cell covers a square block.
        sums = _block_sums(matrix, pair_band, pair_band)
        _scale_blocks(matrix, sums, grid_pair.frequencies, pair_band, pair_band)

        change = float(np.abs(matrix - before).sum())
        if track_history:
            history.append(change)
        if change < threshold:
            converged = True
            break

    return ResponseMatrixResult(matrix=matrix, iterations=iterations,
                                converged=converged, change_history=history)
