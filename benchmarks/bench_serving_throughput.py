"""Ingest and query throughput of the online serving subsystem.

PR 4 added a long-lived query service (``repro.serving``): privatized
reports stream in through the shard ``partial_fit`` path, a re-finalize
swaps in a fresh estimator, and workloads are answered over a stdlib
JSON-over-HTTP API.  This benchmark measures that serving loop
end-to-end against a live in-process worker-pool server:

* **ingest** — reports/sec through ``POST /ingest`` (JSON rows in,
  accumulator update, receipt out);
* **re-finalize** — seconds for one ``POST /refinalize`` (Phase 2 on
  the accumulated counts);
* **query (HTTP)** — queries/sec through per-request ``POST /query``
  calls on a mixed-λ workload (one fresh connection per request, the
  pre-batching wire pattern);
* **query (batched HTTP)** — queries/sec posting ``{"workloads":
  [...]}`` batches over one keep-alive connection: the whole batch is
  answered under a single service lock acquisition against compiled
  plans, so this is the serving front end's hot path;
* **query (in-process)** — the same workload straight through
  ``QueryService.query``, isolating the HTTP + JSON overhead;
* **query (in-process, single)** — one ``service.query([q])`` call per
  query through the epoch single-query fast path.  Reported twice:
  *uncached* (answer cache cleared first, plans warm — the honest
  repeated-single-call floor) and *cached* (the same calls repeated,
  hitting the ``(epoch_id, workload)`` answer LRU).

With ``--clients N [N ...]`` the run adds a **read scaling** sweep:
N keep-alive connections post the batched workload concurrently
against the worker pool, exercising the lock-free epoch read path;
the ``read_scaling`` trajectory section records aggregate queries/sec
per client count and the 8-vs-1 speedup.  ``--min-single-qps Q``
fails the run (exit 1) when the cached single-call rate drops below
Q — CI's regression gate on the fast path.

With ``--backend json|sqlite`` the server runs multi-tenant over that
storage backend instead of a bare service: ingest then flows through
the write-ahead ingest log (durability on the hot path), and the run
additionally reports a **storage comparison** — snapshot save/restore
latency and write-ahead ingest-log throughput for *both* backends side
by side — so one trajectory row captures JSON vs SQLite.

With ``--fault-rate P`` the run adds a **resilience** section: ingest
throughput under injected locked-database faults (retried by the
resilience layer), query throughput while a tripped circuit breaker
holds the tenant in degraded mode, and the no-fault overhead of the
retry/fault-injection wrappers — gated by ``--max-overhead-fraction``
(default 5%; CI passes a lax 0.5 against shared-runner noise, the same
precedent as ``bench_mixed_workload.py``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \\
        --smoke --backend sqlite
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \\
        --smoke --fault-rate 0.1

``--smoke`` shrinks the load so CI exercises the whole path in a few
seconds.  Every run appends a record to the ``BENCH_fit.json``
trajectory artifact at the repository root.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _scale import append_trajectory, report  # noqa: E402

from repro.datasets import make_dataset  # noqa: E402
from repro.queries import WorkloadGenerator  # noqa: E402
from repro.resilience import (DegradedServiceError,  # noqa: E402
                              FaultInjectingBackend, FaultPlan, FaultSpec,
                              RetryPolicy)
from repro.serving import (QueryService, TenantManager,  # noqa: E402
                           build_server, query_to_wire)
from repro.storage import BACKENDS, open_backend  # noqa: E402


def _post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def measure_read_scaling(port: int, wire_workload: list,
                         client_counts: tuple[int, ...],
                         query_rounds: int) -> tuple[list[str], dict]:
    """Aggregate batched-query throughput vs concurrent client count.

    Each client posts the whole workload as one ``{"workloads": [...]}``
    batch per round over its own keep-alive connection; all clients
    start together behind a barrier after one warm-up round.  With the
    epoch read path queries never take the service lock, so throughput
    should grow with clients until the worker pool or the GIL-released
    NumPy kernels saturate the cores.
    """
    body = json.dumps({"workloads": [wire_workload]}).encode("utf-8")
    headers = {"Content-Type": "application/json"}

    def client_loop(barrier: threading.Barrier, elapsed: list,
                    index: int) -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=120)
        try:
            connection.request("POST", "/query", body=body, headers=headers)
            warmup = json.loads(connection.getresponse().read())
            assert warmup["count"] == len(wire_workload)
            barrier.wait()
            start = time.perf_counter()
            for _ in range(query_rounds):
                connection.request("POST", "/query", body=body,
                                   headers=headers)
                connection.getresponse().read()
            elapsed[index] = time.perf_counter() - start
        finally:
            connection.close()

    lines = [f"  read scaling      : {query_rounds} rounds x "
             f"{len(wire_workload)} queries per client"]
    rates: dict[str, float] = {}
    for clients in client_counts:
        barrier = threading.Barrier(clients)
        elapsed: list = [None] * clients
        threads = [threading.Thread(target=client_loop,
                                    args=(barrier, elapsed, index))
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        window = max(elapsed)
        rate = clients * query_rounds * len(wire_workload) / window
        rates[str(clients)] = round(rate, 1)
        base = rates[str(client_counts[0])]
        lines.append(f"    {clients:>3} clients     : {rate:10.1f} "
                     f"queries/sec  {rate / base:5.2f}x")
    section = {
        "client_counts": list(client_counts),
        "queries_per_sec": rates,
        "speedup_at_8_clients": (round(rates["8"] / rates["1"], 2)
                                 if "8" in rates and "1" in rates else None),
    }
    return lines, section


def compare_storage_backends(document: dict, rows: np.ndarray,
                             batch_size: int, domain_size: int,
                             rounds: int) -> tuple[list[str], dict]:
    """Save/restore/WAL-append the same state through every backend.

    ``document`` is a fitted service's ``state_dict()`` so the blob is
    realistically sized; ``rows`` feed the write-ahead ingest log in
    ``batch_size`` slices.  Returns report lines and a per-backend dict
    of snapshot save/restore latency and WAL append throughput.
    """
    lines = []
    results = {}
    n_batches = max(1, len(rows) // batch_size)
    for kind in sorted(BACKENDS):
        with tempfile.TemporaryDirectory() as tmp:
            location = Path(tmp) / ("store.db" if kind == "sqlite"
                                    else "store")
            with open_backend(kind, location) as backend:
                if not backend.has_tenant("default"):
                    backend.create_tenant("default", {})
                start = time.perf_counter()
                for _ in range(rounds):
                    record = backend.save_snapshot("default", document)
                save_seconds = (time.perf_counter() - start) / rounds

                start = time.perf_counter()
                for _ in range(rounds):
                    loaded, _meta = backend.load_snapshot("default")
                    restored = QueryService.from_state_dict(loaded)
                restore_seconds = (time.perf_counter() - start) / rounds
                assert restored.reports_ingested == document["reports_ingested"]

                batches = [
                    rows[index * batch_size:(index + 1) * batch_size].tolist()
                    for index in range(n_batches)]
                start = time.perf_counter()
                for chunk in batches:
                    backend.append_ingest("default", chunk, domain_size)
                wal_seconds = time.perf_counter() - start
                wal_rate = n_batches * batch_size / wal_seconds

        results[kind] = {
            "snapshot_save_ms": round(save_seconds * 1e3, 2),
            "snapshot_restore_ms": round(restore_seconds * 1e3, 2),
            "snapshot_bytes": record.size_bytes,
            "wal_append_reports_per_sec": round(wal_rate, 1),
        }
        lines.append(
            f"  storage [{kind:>6}]  : save {save_seconds * 1e3:7.2f} ms  "
            f"restore {restore_seconds * 1e3:7.2f} ms  "
            f"({record.size_bytes} bytes)  "
            f"wal append {wal_rate:10.1f} reports/sec")
    return lines, results


def measure_resilience(rows: np.ndarray, batch_size: int, domain_size: int,
                       wire_workload: list, fault_rate: float,
                       query_rounds: int, epsilon: float, seed: int,
                       total_users: int) -> tuple[list[str], dict]:
    """The ``--fault-rate`` section: resilience overhead + degraded mode.

    Three in-process measurements over the JSON backend (no HTTP, so
    the numbers isolate the resilience machinery itself):

    * **no-fault overhead** — write-ahead ingest throughput through a
      pass-through :class:`FaultInjectingBackend` under the default
      :class:`RetryPolicy`, against a raw backend with retries off.
      This is the price every healthy request pays, and the gated
      number (``--max-overhead-fraction``).
    * **faulted ingest** — the same ingest with locked-database faults
      injected at ``fault_rate``, retried transparently.
    * **degraded queries** — query throughput after a permanent-fault
      storm trips the tenant's breaker: answers keep flowing from the
      last finalized estimator while ingest answers 503.
    """
    config = {"mechanism": "HDG", "epsilon": epsilon, "seed": seed,
              "domain_size": domain_size, "total_users": total_users}
    n_batches = max(1, len(rows) // batch_size)
    batches = [rows[index * batch_size:(index + 1) * batch_size]
               for index in range(n_batches)]

    def ingest_rate(manager, repeats: int = 2) -> float:
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            for chunk in batches:
                manager.ingest("default", chunk)
            elapsed = time.perf_counter() - start
            best = max(best, n_batches * batch_size / elapsed)
        return best

    with tempfile.TemporaryDirectory() as tmp:
        with open_backend("json", Path(tmp) / "baseline") as raw:
            baseline = ingest_rate(TenantManager(
                raw, default_config=config,
                retry_policy=RetryPolicy.no_retry()))

        with open_backend("json", Path(tmp) / "guarded") as inner:
            guarded = ingest_rate(TenantManager(
                FaultInjectingBackend(inner), default_config=config))
        overhead = max(0.0, 1.0 - guarded / baseline)

        with open_backend("json", Path(tmp) / "faulted") as inner:
            plan = FaultPlan([FaultSpec(op="append_ingest", error="locked",
                                        rate=fault_rate, times=0)],
                             seed=seed)
            manager = TenantManager(
                FaultInjectingBackend(inner, plan), default_config=config,
                retry_policy=RetryPolicy(attempts=5, base_delay=1e-4,
                                         max_delay=1e-3, seed=seed))
            faulted = ingest_rate(manager, repeats=1)
            retries = manager.retry_policy.retries_performed
            faults_fired = plan.total_fired
            manager.refinalize("default")

            # Trip the breaker with a permanent-fault storm, then
            # measure query throughput in degraded mode.
            plan.specs.append(FaultSpec(op="append_ingest",
                                        error="permanent", rate=1.0,
                                        times=0))
            while not manager.degraded_tenants():
                try:
                    manager.ingest("default", batches[0])
                except DegradedServiceError:
                    continue
            service = manager.service("default")
            start = time.perf_counter()
            for _ in range(query_rounds):
                answered = service.query_wire(wire_workload)
            degraded_seconds = time.perf_counter() - start
            assert answered["count"] == len(wire_workload)
            degraded_rate = (query_rounds * len(wire_workload)
                             / degraded_seconds)

    lines = [
        f"  resilience        : no-fault overhead {overhead * 100:5.2f}%  "
        f"(guarded {guarded:10.1f} vs raw {baseline:10.1f} reports/sec)",
        f"  faulted ingest    : {faulted:10.1f} reports/sec at "
        f"fault rate {fault_rate} ({faults_fired} faults, "
        f"{retries} retries)",
        f"  degraded queries  : {degraded_rate:10.1f} queries/sec "
        "(breaker open, answers from last finalized estimator)",
    ]
    section = {
        "fault_rate": fault_rate,
        "no_fault_overhead_fraction": round(overhead, 4),
        "baseline_ingest_reports_per_sec": round(baseline, 1),
        "guarded_ingest_reports_per_sec": round(guarded, 1),
        "faulted_ingest_reports_per_sec": round(faulted, 1),
        "faults_fired": faults_fired,
        "retries_performed": retries,
        "degraded_queries_per_sec": round(degraded_rate, 1),
    }
    return lines, section


def run(n_batches: int, batch_size: int, n_attributes: int, domain_size: int,
        n_queries: int, query_rounds: int, epsilon: float, seed: int,
        smoke: bool, backend: str | None = None,
        fault_rate: float | None = None,
        client_counts: tuple[int, ...] = ()) -> tuple[str, dict]:
    rng = np.random.default_rng(seed)
    total_users = n_batches * batch_size
    dataset = make_dataset("normal", total_users, n_attributes, domain_size,
                           rng=rng)
    generator = WorkloadGenerator(n_attributes, domain_size,
                                  rng=np.random.default_rng(seed + 1))
    workload = (generator.random_workload(n_queries // 2, 2, 0.5)
                + generator.random_workload(n_queries - n_queries // 2, 3, 0.5))
    wire_workload = [query_to_wire(query) for query in workload]

    stack = []
    if backend is None:
        service = QueryService("HDG", epsilon, seed=seed,
                               domain_size=domain_size,
                               total_users=total_users)
        server = build_server(service, port=0)
    else:
        # Multi-tenant serving over a durable backend: every ingest
        # batch is WAL-appended before it is applied, so the measured
        # ingest rate includes the durability cost.
        tmp = tempfile.TemporaryDirectory()
        stack.append(tmp.cleanup)
        location = Path(tmp.name) / ("store.db" if backend == "sqlite"
                                     else "store")
        storage = open_backend(backend, location)
        stack.append(storage.close)
        manager = TenantManager(storage, default_config={
            "mechanism": "HDG", "epsilon": epsilon, "seed": seed,
            "domain_size": domain_size, "total_users": total_users})
        service = manager.service("default")
        server = build_server(tenant_manager=manager, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        # Ingest: one POST per batch of privatized reports.
        start = time.perf_counter()
        for index in range(n_batches):
            rows = dataset.values[index * batch_size:(index + 1) * batch_size]
            receipt = _post(port, "/ingest", {"rows": rows.tolist()})
        ingest_seconds = time.perf_counter() - start
        assert receipt["total_reports"] == total_users

        start = time.perf_counter()
        _post(port, "/refinalize", {})
        refinalize_seconds = time.perf_counter() - start

        # Queries over HTTP, then the same workload in-process.
        start = time.perf_counter()
        for _ in range(query_rounds):
            answered = _post(port, "/query", {"queries": wire_workload})
        http_seconds = time.perf_counter() - start
        assert answered["count"] == len(workload)
        assert all(np.isfinite(answered["answers"]))

        # Batched HTTP: every round ships the whole workload batch as
        # one {"workloads": [...]} POST over a single keep-alive
        # connection.  One warm-up round compiles the plans.
        batch = {"workloads": [wire_workload]}
        body = json.dumps(batch).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            connection.request("POST", "/query", body=body, headers=headers)
            warmup = json.loads(connection.getresponse().read())
            assert warmup["count"] == len(workload)
            start = time.perf_counter()
            for _ in range(query_rounds):
                connection.request("POST", "/query", body=body,
                                   headers=headers)
                batched = json.loads(connection.getresponse().read())
            batched_seconds = time.perf_counter() - start
            assert batched["count"] == len(workload)
        finally:
            connection.close()

        start = time.perf_counter()
        for _ in range(query_rounds):
            in_process = service.query(workload)
        direct_seconds = time.perf_counter() - start
        assert np.isfinite(in_process).all()

        # Single-call path: one service.query([q]) per query through
        # the epoch fast path.  One untimed pass warms the per-epoch
        # single-query plans; the uncached pass then measures the
        # plan-warm/answer-cold floor, and the cached rounds measure
        # repeated identical calls against the answer LRU.
        for query in workload:
            service.query([query])
        service.clear_answer_cache()
        start = time.perf_counter()
        for query in workload:
            single = service.query([query])
        single_uncached_seconds = time.perf_counter() - start
        assert np.isfinite(single).all()
        start = time.perf_counter()
        for _ in range(query_rounds):
            for query in workload:
                single = service.query([query])
        single_seconds = time.perf_counter() - start
        assert np.isfinite(single).all()

        if client_counts:
            scaling_lines, scaling_section = measure_read_scaling(
                port, wire_workload, client_counts, query_rounds)
        if backend is not None:
            document = service.state_dict()
            storage_lines, storage_results = compare_storage_backends(
                document, dataset.values, batch_size, domain_size,
                rounds=3 if smoke else 10)
        if fault_rate is not None:
            resilience_lines, resilience_section = measure_resilience(
                dataset.values, batch_size, domain_size, wire_workload,
                fault_rate, query_rounds, epsilon, seed, total_users)
    finally:
        server.shutdown()
        server.server_close()
        for cleanup in reversed(stack):
            cleanup()

    ingest_rate = total_users / ingest_seconds
    http_rate = query_rounds * len(workload) / http_seconds
    batched_rate = query_rounds * len(workload) / batched_seconds
    direct_rate = query_rounds * len(workload) / direct_seconds
    single_rate = query_rounds * len(workload) / single_seconds
    single_uncached_rate = len(workload) / single_uncached_seconds
    front_end = "single-tenant" if backend is None else f"backend={backend}"
    lines = [
        f"serving throughput: HDG eps={epsilon} d={n_attributes} "
        f"c={domain_size} {front_end} ({'smoke' if smoke else 'full'})",
        f"  ingest            : {total_users:>8} reports in "
        f"{ingest_seconds:6.2f}s  -> {ingest_rate:10.1f} reports/sec",
        f"  re-finalize       : {refinalize_seconds:6.3f}s",
        f"  query over HTTP   : {query_rounds * len(workload):>8} queries in "
        f"{http_seconds:6.2f}s  -> {http_rate:10.1f} queries/sec",
        f"  query batched HTTP: {query_rounds * len(workload):>8} queries in "
        f"{batched_seconds:6.2f}s  -> {batched_rate:10.1f} queries/sec",
        f"  query in-process  : {query_rounds * len(workload):>8} queries in "
        f"{direct_seconds:6.2f}s  -> {direct_rate:10.1f} queries/sec",
        f"  query single-call : {query_rounds * len(workload):>8} queries in "
        f"{single_seconds:6.2f}s  -> {single_rate:10.1f} queries/sec "
        "(cached)",
        f"  query single-call : {len(workload):>8} queries in "
        f"{single_uncached_seconds:6.2f}s  -> "
        f"{single_uncached_rate:10.1f} queries/sec (uncached)",
    ]
    entry = {
        "mode": "smoke" if smoke else "full",
        "n_reports": total_users,
        "n_queries": query_rounds * len(workload),
        "ingest_reports_per_sec": round(ingest_rate, 1),
        "refinalize_seconds": round(refinalize_seconds, 4),
        "http_queries_per_sec": round(http_rate, 1),
        "batched_http_queries_per_sec": round(batched_rate, 1),
        "in_process_queries_per_sec": round(direct_rate, 1),
        "in_process_single_query_per_sec": round(single_rate, 1),
        "in_process_single_query_uncached_per_sec":
            round(single_uncached_rate, 1),
    }
    if client_counts:
        lines.extend(scaling_lines)
        entry["read_scaling"] = scaling_section
    if backend is not None:
        lines.extend(storage_lines)
        entry["backend"] = backend
        entry["storage"] = storage_results
    if fault_rate is not None:
        lines.extend(resilience_lines)
        entry["resilience"] = resilience_section
    return "\n".join(lines), entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small batches, few queries")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                        help="serve multi-tenant over this storage backend "
                             "and add a JSON-vs-SQLite storage comparison")
    parser.add_argument("--fault-rate", type=float, default=None,
                        metavar="P",
                        help="add the resilience section: measure ingest "
                             "under injected locked-database faults at "
                             "this rate, degraded-mode query throughput, "
                             "and the no-fault resilience overhead")
    parser.add_argument("--clients", type=int, nargs="+", default=None,
                        metavar="N",
                        help="add the read-scaling sweep: this many "
                             "concurrent keep-alive clients posting the "
                             "batched workload (e.g. --clients 1 2 4 8)")
    parser.add_argument("--min-single-qps", type=float, default=None,
                        metavar="Q",
                        help="fail (exit 1) when the cached in-process "
                             "single-call rate is below Q queries/sec "
                             "(CI's fast-path regression gate)")
    parser.add_argument("--max-overhead-fraction", type=float, default=0.05,
                        metavar="F",
                        help="with --fault-rate: fail (exit 1) when the "
                             "no-fault resilience overhead exceeds this "
                             "fraction of raw ingest throughput (CI uses "
                             "a lax 0.5 to tolerate shared-runner noise)")
    args = parser.parse_args(argv)
    if args.fault_rate is not None and not 0.0 <= args.fault_rate < 1.0:
        parser.error("--fault-rate must be in [0, 1)")

    if args.smoke:
        settings = dict(n_batches=4, batch_size=500, n_attributes=3,
                        domain_size=16, n_queries=40, query_rounds=3)
    else:
        settings = dict(n_batches=20, batch_size=5_000, n_attributes=4,
                        domain_size=32, n_queries=200, query_rounds=10)
    text, entry = run(epsilon=args.epsilon, seed=args.seed, smoke=args.smoke,
                      backend=args.backend, fault_rate=args.fault_rate,
                      client_counts=tuple(args.clients or ()),
                      **settings)
    report("serving_throughput", text)
    append_trajectory("serving_throughput", entry)
    failed = False
    if args.fault_rate is not None:
        overhead = entry["resilience"]["no_fault_overhead_fraction"]
        if overhead > args.max_overhead_fraction:
            print(f"FAIL: no-fault resilience overhead {overhead:.4f} "
                  f"exceeds --max-overhead-fraction "
                  f"{args.max_overhead_fraction}", file=sys.stderr)
            failed = True
    if args.min_single_qps is not None:
        single = entry["in_process_single_query_per_sec"]
        if single < args.min_single_qps:
            print(f"FAIL: cached single-call rate {single:.1f} q/s "
                  f"< --min-single-qps {args.min_single_qps}",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
