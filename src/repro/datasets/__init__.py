"""Dataset container, synthetic generators and stand-ins for the paper's data."""

from .dataset import Dataset
from .real_like import (generate_acs_like, generate_bfive_like,
                        generate_ipums_like, generate_loan_like)
from .registry import available_datasets, make_dataset
from .synthetic import (discretize, generate_laplace, generate_normal,
                        generate_uniform)

__all__ = [
    "Dataset",
    "available_datasets",
    "discretize",
    "generate_acs_like",
    "generate_bfive_like",
    "generate_ipums_like",
    "generate_laplace",
    "generate_loan_like",
    "generate_normal",
    "generate_uniform",
    "make_dataset",
]
