"""Tests for the granularity guideline (Section 4.6, Table 2)."""

import math

import pytest

from repro.core import (choose_granularities_hdg, choose_granularity_tdg,
                        default_user_split, nearest_power_of_two, raw_g1,
                        raw_g2, recommended_granularity_table)


def test_nearest_power_of_two_basic():
    assert nearest_power_of_two(1.0) == 2            # floored at the minimum
    assert nearest_power_of_two(2.9) == 2
    assert nearest_power_of_two(3.1) == 4
    assert nearest_power_of_two(23.3) == 16           # |23.3-16| < |32-23.3|
    assert nearest_power_of_two(25.0) == 32
    assert nearest_power_of_two(100.0, maximum=64) == 64


def test_nearest_power_of_two_tie_goes_down():
    assert nearest_power_of_two(3.0) == 2
    assert nearest_power_of_two(6.0) == 4


def test_raw_formulas_match_closed_forms():
    epsilon, n1, m1 = 1.0, 285_714, 6
    e_eps = math.exp(epsilon)
    expected_g1 = (n1 * (e_eps - 1) ** 2 * 0.49 / (2 * m1 * e_eps)) ** (1 / 3)
    assert raw_g1(epsilon, n1, m1) == pytest.approx(expected_g1)

    n2, m2 = 714_286, 15
    expected_g2 = math.sqrt(2 * 0.03 * (e_eps - 1) * math.sqrt(n2 / (m2 * e_eps)))
    assert raw_g2(epsilon, n2, m2) == pytest.approx(expected_g2)


def test_default_user_split_equal_population():
    n1, n2, m1, m2 = default_user_split(1_000_000, 6)
    assert m1 == 6 and m2 == 15
    assert n1 + n2 == 1_000_000
    # Equal population per group: n1/m1 == n2/m2 (up to rounding).
    assert n1 / m1 == pytest.approx(n2 / m2, rel=0.01)


def test_hdg_choice_matches_table2_reference_cell():
    # Table 2, row (d=6, lg n=6), eps=1.0 -> (16, 4).
    choice = choose_granularities_hdg(1.0, 1_000_000, 6, 64)
    assert (choice.g1, choice.g2) == (16, 4)


@pytest.mark.parametrize("epsilon,expected", [
    (0.2, (8, 2)),
    (0.6, (16, 2)),
    (1.0, (16, 4)),
    (1.4, (32, 4)),
    (2.0, (32, 4)),
])
def test_hdg_choice_matches_table2_d6_row(epsilon, expected):
    choice = choose_granularities_hdg(epsilon, 1_000_000, 6, 64)
    assert (choice.g1, choice.g2) == expected


@pytest.mark.parametrize("d,epsilon,expected", [
    (3, 1.0, (32, 4)),
    (10, 0.2, (4, 2)),
    (10, 2.0, (32, 4)),
])
def test_hdg_choice_matches_table2_other_rows(d, epsilon, expected):
    choice = choose_granularities_hdg(epsilon, 1_000_000, d, 64)
    assert (choice.g1, choice.g2) == expected


def test_granularities_never_exceed_domain():
    choice = choose_granularities_hdg(2.0, 10_000_000, 3, 16)
    assert choice.g1 <= 16
    assert choice.g2 <= 16


def test_g1_at_least_g2():
    for epsilon in (0.2, 0.5, 1.0, 2.0):
        for n in (10_000, 100_000, 1_000_000):
            choice = choose_granularities_hdg(epsilon, n, 6, 64)
            assert choice.g1 >= choice.g2
            assert choice.g1 % choice.g2 == 0


def test_sigma_override_changes_split():
    default = choose_granularities_hdg(1.0, 100_000, 6, 64)
    shifted = choose_granularities_hdg(1.0, 100_000, 6, 64, sigma=0.8)
    assert shifted.n1 > default.n1
    assert shifted.n1 + shifted.n2 == 100_000
    with pytest.raises(ValueError):
        choose_granularities_hdg(1.0, 100_000, 6, 64, sigma=1.5)


def test_tdg_choice_uses_all_users():
    choice = choose_granularity_tdg(1.0, 1_000_000, 6, 64)
    assert choice.n2 == 1_000_000
    assert choice.m2 == 15
    assert choice.g2 == 4


def test_granularity_monotone_in_population():
    small = choose_granularity_tdg(1.0, 50_000, 6, 64)
    large = choose_granularity_tdg(1.0, 5_000_000, 6, 64)
    assert large.g2 >= small.g2


def test_granularity_monotone_in_epsilon():
    low = choose_granularities_hdg(0.2, 1_000_000, 6, 64)
    high = choose_granularities_hdg(2.0, 1_000_000, 6, 64)
    assert high.g1 >= low.g1
    assert high.g2 >= low.g2


def test_recommended_table_covers_requested_settings():
    table = recommended_granularity_table([0.2, 1.0],
                                          [(6, 6.0), (3, 6.0)], domain_size=64)
    assert (6, 6.0, 1.0) in table
    assert table[(6, 6.0, 1.0)] == (16, 4)
    assert len(table) == 4


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        raw_g1(1.0, 0, 6)
    with pytest.raises(ValueError):
        raw_g2(1.0, 100, 0)
    with pytest.raises(ValueError):
        default_user_split(100, 1)
    with pytest.raises(ValueError):
        choose_granularity_tdg(1.0, 100, 1, 64)


# ----------------------------------------------------------------------
# Non-power-of-two domains: the guideline snaps to divisors of c
# ----------------------------------------------------------------------
def test_nearest_divisor_basic():
    from repro.core import nearest_divisor
    assert nearest_divisor(7.0, 100) == 5          # candidates ... 5, 10 ...
    assert nearest_divisor(9.0, 100) == 10
    assert nearest_divisor(3.0, 9) == 3
    assert nearest_divisor(1.0, 9) == 3            # floored at the minimum
    assert nearest_divisor(1000.0, 100) == 100     # capped at the domain


def test_nearest_divisor_multiple_of_constraint():
    from repro.core import nearest_divisor
    assert nearest_divisor(7.0, 60, multiple_of=6) == 6
    assert nearest_divisor(11.0, 60, multiple_of=6) == 12
    with pytest.raises(ValueError):
        nearest_divisor(5.0, 60, multiple_of=7)    # 7 does not divide 60


def test_nearest_divisor_matches_power_of_two_on_power_of_two_domains():
    from repro.core import nearest_divisor
    # For power-of-two domains the divisors are exactly the powers of two,
    # so the divisor snap reproduces the paper's rounding (ties included).
    for value in (1.0, 2.9, 3.0, 3.1, 6.0, 23.3, 25.0, 100.0):
        assert nearest_divisor(value, 64) == nearest_power_of_two(value,
                                                                  maximum=64)


@pytest.mark.parametrize("domain_size", [100, 96, 60, 48, 9, 15, 7])
def test_hdg_guideline_non_power_of_two_domain(domain_size):
    # Regression: these raised "granularity must divide the domain size"
    # before the guideline snapped to divisors of c.
    choice = choose_granularities_hdg(1.0, 100_000, 4, domain_size)
    assert domain_size % choice.g1 == 0
    assert domain_size % choice.g2 == 0
    assert choice.g1 % choice.g2 == 0


@pytest.mark.parametrize("domain_size", [100, 96, 60, 9, 7])
def test_tdg_guideline_non_power_of_two_domain(domain_size):
    choice = choose_granularity_tdg(1.0, 100_000, 4, domain_size)
    assert domain_size % choice.g2 == 0


def test_power_of_two_table2_unchanged_by_divisor_snap():
    # The Table 2 reference values must survive the divisor generalisation.
    assert (lambda ch: (ch.g1, ch.g2))(
        choose_granularities_hdg(1.0, 1_000_000, 6, 64)) == (16, 4)
    assert choose_granularity_tdg(1.0, 1_000_000, 6, 64).g2 == 4


# ----------------------------------------------------------------------
# Degenerate populations: clamp the split, fall back to minimums
# ----------------------------------------------------------------------
def test_default_user_split_tiny_populations():
    n1, n2, m1, m2 = default_user_split(2, 6)
    assert n1 == 1 and n2 == 1
    n1, n2, _, _ = default_user_split(1, 6)
    assert n1 + n2 == 1 and n1 >= 0 and n2 >= 0
    n1, n2, _, _ = default_user_split(0, 6)
    assert (n1, n2) == (0, 0)


@pytest.mark.parametrize("n_users", [0, 1, 2, 3])
def test_hdg_guideline_tiny_population(n_users):
    # Regression: n_users=1 used to produce n1=0 and raise
    # "n1 and m1 must be positive" from raw_g1.
    choice = choose_granularities_hdg(1.0, n_users, 6, 64)
    assert choice.g1 >= 2 and choice.g2 >= 2
    assert choice.g1 % choice.g2 == 0
    assert choice.n1 + choice.n2 == n_users


@pytest.mark.parametrize("n_users", [0, 1, 2])
def test_tdg_guideline_tiny_population(n_users):
    choice = choose_granularity_tdg(1.0, n_users, 6, 64)
    assert 2 <= choice.g2 <= 64


def test_hdg_guideline_tiny_population_with_sigma():
    choice = choose_granularities_hdg(1.0, 1, 6, 64, sigma=0.4)
    assert choice.n1 + choice.n2 == 1
    assert choice.g1 >= choice.g2 >= 2
