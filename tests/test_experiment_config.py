"""Tests for the experiment configuration."""

import pytest

from repro.experiments import DEFAULT_METHODS, ExperimentConfig


def test_defaults_match_paper_settings():
    config = ExperimentConfig()
    assert config.epsilon == 1.0
    assert config.volume == 0.5
    assert config.n_attributes == 6
    assert config.domain_size == 64
    assert config.n_queries == 200
    assert config.methods == DEFAULT_METHODS


def test_with_overrides_returns_new_config():
    config = ExperimentConfig()
    modified = config.with_overrides(epsilon=0.5, dataset="laplace")
    assert modified.epsilon == 0.5
    assert modified.dataset == "laplace"
    assert config.epsilon == 1.0  # original unchanged


def test_validation_accepts_defaults():
    ExperimentConfig().validate()


@pytest.mark.parametrize("overrides", [
    {"n_users": 0},
    {"n_attributes": 1},
    {"domain_size": 63},
    {"epsilon": 0.0},
    {"query_dimension": 7},
    {"volume": 0.0},
    {"volume": 1.5},
    {"n_queries": 0},
    {"n_repeats": 0},
    {"methods": ()},
])
def test_validation_rejects_bad_values(overrides):
    config = ExperimentConfig().with_overrides(**overrides)
    with pytest.raises(ValueError):
        config.validate()


def test_config_is_frozen():
    config = ExperimentConfig()
    with pytest.raises(Exception):
        config.epsilon = 2.0
