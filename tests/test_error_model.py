"""Tests for the analytical error model (Section 4.5 / 4.6)."""

import math

import pytest

from repro.analysis import (best_modelled_granularity, cell_noise_variance,
                            grid1d_squared_error, grid2d_error_breakdown,
                            grid2d_squared_error)
from repro.core import choose_granularities_hdg, nearest_power_of_two, raw_g1, raw_g2


def test_cell_noise_variance_formula():
    epsilon, n_group, n_groups = 1.0, 10_000, 15
    expected = 4 * n_groups * math.e / ((n_group * n_groups) * (math.e - 1) ** 2)
    assert cell_noise_variance(epsilon, n_group, n_groups) == pytest.approx(expected)


def test_cell_noise_variance_decreases_with_population():
    small = cell_noise_variance(1.0, 1_000, 10)
    large = cell_noise_variance(1.0, 100_000, 10)
    assert large < small


def test_cell_noise_variance_invalid_inputs():
    with pytest.raises(ValueError):
        cell_noise_variance(0.0, 100)
    with pytest.raises(ValueError):
        cell_noise_variance(1.0, 0)


def test_grid_errors_have_a_minimum_in_granularity():
    # The modelled error must be convex-ish: large at both extremes.
    kwargs = dict(epsilon=1.0, n1=300_000, m1=6)
    coarse = grid1d_squared_error(2, **kwargs)
    fine = grid1d_squared_error(1024, **kwargs)
    middle = grid1d_squared_error(16, **kwargs)
    assert middle < coarse
    assert middle < fine


def test_guideline_g1_minimises_modelled_error():
    epsilon, n1, m1 = 1.0, 285_714, 6
    candidates = [2 ** k for k in range(1, 10)]
    best = best_modelled_granularity(candidates, grid1d_squared_error,
                                     epsilon=epsilon, n1=n1, m1=m1)
    guideline = nearest_power_of_two(raw_g1(epsilon, n1, m1), minimum=2, maximum=512)
    # The rounded guideline value is within one power of two of the brute
    # force minimiser of the same model.
    assert abs(math.log2(best) - math.log2(guideline)) <= 1


def test_guideline_g2_minimises_modelled_error():
    epsilon, n2, m2 = 1.0, 714_286, 15
    candidates = [2 ** k for k in range(1, 8)]
    best = best_modelled_granularity(candidates, grid2d_squared_error,
                                     epsilon=epsilon, n2=n2, m2=m2)
    guideline = nearest_power_of_two(raw_g2(epsilon, n2, m2), minimum=2, maximum=128)
    assert abs(math.log2(best) - math.log2(guideline)) <= 1


def test_breakdown_sums_to_total():
    breakdown = grid2d_error_breakdown(4, 1.0, 714_286, 15)
    total = grid2d_squared_error(4, 1.0, 714_286, 15)
    assert breakdown.total == pytest.approx(total)
    assert breakdown.noise > 0 and breakdown.non_uniformity > 0


def test_noise_grows_and_non_uniformity_shrinks_with_granularity():
    coarse = grid2d_error_breakdown(2, 1.0, 100_000, 15)
    fine = grid2d_error_breakdown(16, 1.0, 100_000, 15)
    assert fine.noise > coarse.noise
    assert fine.non_uniformity < coarse.non_uniformity


def test_hdg_guideline_consistent_with_model():
    # The full HDG guideline (user split + rounding) should land near the
    # model's brute-force optimum for both granularities.
    epsilon, n_users, d, c = 1.0, 1_000_000, 6, 64
    choice = choose_granularities_hdg(epsilon, n_users, d, c)
    candidates = [2 ** k for k in range(1, 7)]
    best_g2 = best_modelled_granularity(candidates, grid2d_squared_error,
                                        epsilon=epsilon, n2=choice.n2, m2=choice.m2)
    assert abs(math.log2(best_g2) - math.log2(choice.g2)) <= 1


def test_invalid_granularity_rejected():
    with pytest.raises(ValueError):
        grid1d_squared_error(0, 1.0, 1000, 3)
    with pytest.raises(ValueError):
        grid2d_squared_error(0, 1.0, 1000, 3)
    with pytest.raises(ValueError):
        best_modelled_granularity([], grid1d_squared_error)
