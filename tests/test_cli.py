"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_table2_command(capsys):
    exit_code = main(["table2", "--d", "6", "--lg-n", "6.0",
                      "--epsilons", "1.0"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "g1= 16" in output and "g2=  4" in output


def test_run_command_tiny(capsys):
    exit_code = main(["run", "--dataset", "normal", "--n-users", "3000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "10", "--methods", "Uni", "HDG"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Uni" in output and "HDG" in output and "MAE" in output


def test_sweep_command_tiny(capsys):
    exit_code = main(["sweep", "--dataset", "normal", "--n-users", "3000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "10", "--methods", "Uni",
                      "--parameter", "epsilon", "--values", "0.5", "1.0"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "epsilon" in output
    assert "0.5" in output and "1.0" in output


def test_sweep_command_integer_parameter(capsys):
    exit_code = main(["sweep", "--dataset", "normal", "--n-users", "3000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "5", "--methods", "Uni",
                      "--parameter", "n_attributes", "--values", "3", "4"])
    assert exit_code == 0
    assert "n_attributes" in capsys.readouterr().out


def test_run_command_with_explicit_granularities(capsys):
    exit_code = main(["run", "--dataset", "normal", "--n-users", "3000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "5", "--methods", "HDG(8,4)"])
    assert exit_code == 0
    assert "HDG(8,4)" in capsys.readouterr().out


def test_run_command_with_shards(capsys):
    exit_code = main(["run", "--dataset", "normal", "--n-users", "4000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "10", "--methods", "HDG",
                      "--shards", "2", "--shard-workers", "2"])
    assert exit_code == 0
    assert "MAE" in capsys.readouterr().out


def test_shard_demo_command(capsys):
    exit_code = main(["shard-demo", "--dataset", "normal", "--n-users", "4000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "10", "--shards", "2"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "single-shot fit" in output
    assert "2 shards merged" in output


def test_shard_demo_save_state_and_merge(tmp_path, capsys):
    state_dir = tmp_path / "shards"
    exit_code = main(["shard-demo", "--dataset", "normal", "--n-users", "4000",
                      "--n-attributes", "3", "--domain-size", "16",
                      "--n-queries", "5", "--shards", "2", "--mechanism", "TDG",
                      "--save-state", str(state_dir)])
    assert exit_code == 0
    states = sorted(state_dir.glob("shard*.json"))
    assert len(states) == 2

    merged_path = tmp_path / "merged.json"
    exit_code = main(["merge"] + [str(p) for p in states]
                     + ["--output", str(merged_path), "--finalize"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "merged: 4000 reports over 2 shards" in output
    assert "finalized TDG" in output
    assert merged_path.exists()
