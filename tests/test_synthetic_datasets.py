"""Tests for the synthetic Normal / Laplace / uniform dataset generators."""

import numpy as np
import pytest

from repro.datasets import (discretize, generate_laplace, generate_normal,
                            generate_uniform)


def test_normal_basic_shape(rng):
    dataset = generate_normal(5_000, 4, 32, covariance=0.8, rng=rng)
    assert dataset.n_users == 5_000
    assert dataset.n_attributes == 4
    assert dataset.domain_size == 32
    assert dataset.values.min() >= 0
    assert dataset.values.max() < 32


def test_normal_marginal_is_centered(rng):
    dataset = generate_normal(50_000, 2, 64, covariance=0.5, rng=rng)
    marginal = dataset.marginal(0)
    centre_mass = marginal[24:40].sum()
    # A standard normal clipped at 3 sigma puts most mass near the middle bins.
    assert centre_mass > 0.5


def test_normal_covariance_controls_correlation(rng):
    strong = generate_normal(30_000, 2, 64, covariance=0.9,
                             rng=np.random.default_rng(0))
    weak = generate_normal(30_000, 2, 64, covariance=0.0,
                           rng=np.random.default_rng(0))
    corr_strong = np.corrcoef(strong.values[:, 0], strong.values[:, 1])[0, 1]
    corr_weak = np.corrcoef(weak.values[:, 0], weak.values[:, 1])[0, 1]
    assert corr_strong > 0.7
    assert abs(corr_weak) < 0.1


def test_laplace_heavier_tails_than_normal():
    normal = generate_normal(50_000, 1, 64, covariance=0.0,
                             rng=np.random.default_rng(1))
    laplace = generate_laplace(50_000, 1, 64, covariance=0.0,
                               rng=np.random.default_rng(1))
    # The Laplace marginal concentrates more mass in the central bins
    # (spike) than the normal does.
    centre = slice(28, 36)
    assert laplace.marginal(0)[centre].sum() > normal.marginal(0)[centre].sum()


def test_laplace_preserves_correlation(rng):
    dataset = generate_laplace(30_000, 3, 32, covariance=0.8, rng=rng)
    corr = np.corrcoef(dataset.values[:, 0], dataset.values[:, 1])[0, 1]
    assert corr > 0.5


def test_uniform_is_flat(rng):
    dataset = generate_uniform(50_000, 2, 16, rng=rng)
    marginal = dataset.marginal(0)
    assert np.abs(marginal - 1 / 16).max() < 0.01


def test_discretize_bounds():
    values = np.array([-10.0, -3.0, 0.0, 3.0, 10.0])
    binned = discretize(values, 8)
    assert binned.min() >= 0
    assert binned.max() <= 7
    assert binned[0] == 0
    assert binned[-1] == 7


def test_discretize_monotone():
    values = np.linspace(-3, 3, 100)
    binned = discretize(values, 16)
    assert (np.diff(binned) >= 0).all()


def test_invalid_covariance_rejected():
    with pytest.raises(ValueError):
        generate_normal(100, 2, 8, covariance=1.5)
    with pytest.raises(ValueError):
        generate_laplace(100, 2, 8, covariance=-0.1)


def test_invalid_domain_rejected():
    with pytest.raises(ValueError):
        discretize(np.zeros(10), 1)
