"""Table 2: recommended (g1, g2) per (d, lg n, ε) under α1 = 0.7, α2 = 0.03.

This bench regenerates the full table and checks a set of reference cells
against the values printed in the paper.
"""

from _scale import current_scale, report

from repro.experiments import figures

#: Reference cells copied from Table 2 of the paper: (d, lg n, ε) -> (g1, g2).
PAPER_REFERENCE_CELLS = {
    (3, 6.0, 1.0): (32, 4),
    (6, 6.0, 0.2): (8, 2),
    (6, 6.0, 1.0): (16, 4),
    (6, 6.0, 2.0): (32, 4),
    (10, 6.0, 0.2): (4, 2),
    (10, 6.0, 2.0): (32, 4),
    (6, 5.0, 1.0): (8, 2),
    (6, 7.0, 1.0): (64, 8),
    (6, 6.4, 2.0): (64, 8),
}


def bench_table_2(benchmark):
    epsilons = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
    settings = ([(d, 6.0) for d in range(3, 11)]
                + [(6, lg) for lg in (5.0, 5.2, 5.4, 5.6, 5.8, 6.0, 6.2, 6.4,
                                      6.6, 6.8, 7.0)])

    def run():
        return figures.table_2_granularities(epsilons=epsilons, settings=settings)

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["== Table 2: recommended (g1, g2) =="]
    header = "d, lg(n)".ljust(10) + "  ".join(f"{eps:>7}" for eps in epsilons)
    lines.append(header)
    for d, lg_n in settings:
        cells = ["{},{}".format(*table[(d, lg_n, eps)]).rjust(7) for eps in epsilons]
        lines.append(f"{d}, {lg_n}".ljust(10) + "  ".join(cells))
    report("table2_granularities", "\n".join(lines))

    mismatches = {key: (table[key], expected)
                  for key, expected in PAPER_REFERENCE_CELLS.items()
                  if table[key] != expected}
    assert not mismatches, f"guideline deviates from Table 2: {mismatches}"
