"""Generalized Randomized Response (GRR) frequency oracle.

GRR (Section 2.2 of the paper, Equation (1)) reports the true value with
probability ``p = e^eps / (e^eps + c - 1)`` and a uniformly random *other*
value otherwise.  Its estimation variance grows linearly in the domain size
``c`` (Equation (2)), so it is preferable to OLH only for small domains
(``c - 2 < 3 e^eps``).
"""

from __future__ import annotations

import numpy as np

from .base import FrequencyOracle, SupportAccumulator, grr_variance


class GeneralizedRandomizedResponse(FrequencyOracle):
    """ε-LDP frequency oracle based on generalized randomized response."""

    def __init__(self, epsilon: float, domain_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__(epsilon, domain_size, rng)
        e_eps = self.e_eps
        self.p = e_eps / (e_eps + domain_size - 1)
        self.q = 1.0 / (e_eps + domain_size - 1)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def perturb(self, values: np.ndarray) -> np.ndarray:
        """Perturb each true value independently (one report per user).

        One vectorised pass over the whole user batch; the per-user
        reference :meth:`perturb_loop` consumes the identical draws and
        is kept for equivalence testing.
        """
        values = self._validate_values(values)
        n = values.size
        keep = self.rng.random(n) < self.p
        # Draw a replacement from the c-1 values different from the truth by
        # sampling an offset in [1, c) and adding it modulo c.
        offsets = self.rng.integers(1, self.domain_size, size=n)
        randomized = (values + offsets) % self.domain_size
        return np.where(keep, values, randomized)

    def perturb_loop(self, values: np.ndarray) -> np.ndarray:
        """Per-user reference for :meth:`perturb` (equivalence testing)."""
        values = self._validate_values(values)
        n = values.size
        keep_draws = self.rng.random(n)
        offsets = self.rng.integers(1, self.domain_size, size=n)
        reports = np.empty(n, dtype=np.int64)
        for i in range(n):
            if keep_draws[i] < self.p:
                reports[i] = values[i]
            else:
                reports[i] = (values[i] + offsets[i]) % self.domain_size
        return reports

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def aggregate(self, reports: np.ndarray) -> np.ndarray:
        """Turn raw perturbed reports into unbiased frequency estimates."""
        return self.estimate_from_accumulator(self.count_supports(reports))

    def count_supports(self, reports: np.ndarray) -> SupportAccumulator:
        """Count perturbed reports per candidate value."""
        reports = np.asarray(reports, dtype=np.int64)
        counts = np.bincount(reports, minlength=self.domain_size).astype(float)
        return SupportAccumulator(counts, reports.size)

    def accumulate(self, values: np.ndarray) -> SupportAccumulator:
        return self.count_supports(self.perturb(values))

    def estimate_from_accumulator(self,
                                  accumulator: SupportAccumulator) -> np.ndarray:
        if accumulator.supports.shape != (self.domain_size,):
            raise ValueError(
                f"accumulator covers {accumulator.supports.shape[0]} candidates, "
                f"expected {self.domain_size}")
        if accumulator.n_reports < 1:
            raise ValueError("cannot estimate frequencies from zero reports")
        n = accumulator.n_reports
        return (accumulator.supports / n - self.q) / (self.p - self.q)

    def estimate_frequencies(self, values: np.ndarray) -> np.ndarray:
        return self.estimate_from_accumulator(self.accumulate(values))

    def variance(self, n: int, true_frequency: float = 0.0) -> float:
        return grr_variance(self.epsilon, self.domain_size, n)
