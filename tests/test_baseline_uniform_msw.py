"""Tests for the Uni and MSW baselines."""

import numpy as np
import pytest

from repro.baselines import MSW, Uniform
from repro.datasets import generate_normal, generate_uniform
from repro.metrics import mean_absolute_error
from repro.queries import RangeQuery, WorkloadGenerator, answer_workload


# ----------------------------------------------------------------------
# Uni
# ----------------------------------------------------------------------
def test_uniform_answer_is_query_volume(small_dataset):
    mechanism = Uniform().fit(small_dataset)
    c = small_dataset.domain_size
    query = RangeQuery.from_dict({0: (0, c // 2 - 1), 1: (0, c // 4 - 1)})
    assert mechanism.answer(query) == pytest.approx(0.5 * 0.25)


def test_uniform_never_touches_data(small_dataset):
    mechanism = Uniform()
    # fit only records metadata; answering is purely combinatorial.
    mechanism.fit(small_dataset)
    query = RangeQuery.from_dict({0: (0, small_dataset.domain_size - 1)})
    assert mechanism.answer(query) == pytest.approx(1.0)


def test_uniform_is_exact_on_uniform_data(rng):
    dataset = generate_uniform(50_000, 3, 16, rng=rng)
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(0))
    queries = generator.random_workload(30, 2, 0.5)
    truths = answer_workload(dataset, queries)
    mechanism = Uniform().fit(dataset)
    estimates = mechanism.answer_workload(queries)
    assert mean_absolute_error(estimates, truths) < 0.02


# ----------------------------------------------------------------------
# MSW
# ----------------------------------------------------------------------
def test_msw_builds_one_distribution_per_attribute(small_dataset):
    mechanism = MSW(epsilon=1.0, seed=0).fit(small_dataset)
    assert len(mechanism.distributions) == small_dataset.n_attributes
    for distribution in mechanism.distributions.values():
        assert distribution.shape == (small_dataset.domain_size,)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-5)
        assert (distribution >= 0).all()


def test_msw_product_rule(small_dataset):
    mechanism = MSW(epsilon=1.0, seed=0).fit(small_dataset)
    query = RangeQuery.from_dict({0: (0, 15), 1: (0, 7)})
    expected = (mechanism.distributions[0][:16].sum()
                * mechanism.distributions[1][:8].sum())
    assert mechanism.answer(query) == pytest.approx(expected)


def test_msw_accurate_on_independent_data(rng):
    dataset = generate_normal(40_000, 3, 32, covariance=0.0, rng=rng)
    generator = WorkloadGenerator(3, 32, rng=np.random.default_rng(1))
    queries = generator.random_workload(30, 2, 0.5)
    truths = answer_workload(dataset, queries)
    mechanism = MSW(epsilon=2.0, seed=0).fit(dataset)
    estimates = mechanism.answer_workload(queries)
    assert mean_absolute_error(estimates, truths) < 0.05


def test_msw_loses_correlations():
    # On strongly correlated data MSW's independence assumption biases the
    # aligned-corner query: the truth is far above the product of marginals.
    dataset = generate_normal(60_000, 2, 32, covariance=0.95,
                              rng=np.random.default_rng(2))
    mechanism = MSW(epsilon=3.0, seed=0).fit(dataset)
    query = RangeQuery.from_dict({0: (0, 15), 1: (0, 15)})
    from repro.queries import answer_query
    truth = answer_query(dataset, query)
    estimate = mechanism.answer(query)
    assert truth - estimate > 0.1


def test_msw_single_attribute_query(small_dataset):
    mechanism = MSW(epsilon=1.0, seed=0).fit(small_dataset)
    query = RangeQuery.from_dict({2: (0, 15)})
    from repro.queries import answer_query
    truth = answer_query(small_dataset, query)
    assert mechanism.answer(query) == pytest.approx(truth, abs=0.1)


def test_msw_reproducible(small_dataset, workload_2d):
    first = MSW(epsilon=1.0, seed=5).fit(small_dataset)
    second = MSW(epsilon=1.0, seed=5).fit(small_dataset)
    np.testing.assert_allclose(first.answer_workload(workload_2d),
                               second.answer_workload(workload_2d))
