"""Property tests for the consistent-hash ingest router.

Pins the two properties the ingest tier's determinism and elasticity
rest on: assignment is a pure function of ``(key, seed, n_workers,
replicas)`` — stable across router instances, because the hash is an
explicit splitmix64 mixer, not the process-salted builtin ``hash`` —
and growing the ring moves only ``≈ 1/(N+1)`` of the key space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ingest import ConsistentHashRouter, mix64

KEYS = np.arange(20_000, dtype=np.uint64)


def test_mix64_is_a_fixed_function():
    """The mixer's outputs are pinned: any change to the constants or
    the rounds silently re-routes every deployed key space."""
    out = mix64(np.array([0, 1, 2, 12345678901234567], dtype=np.uint64))
    assert out.tolist() == [16294208416658607535,
                            10451216379200822465,
                            10905525725756348110,
                            13463060612230490842]


def test_assignment_stable_across_instances():
    first = ConsistentHashRouter(4, seed=9)
    second = ConsistentHashRouter(4, seed=9)
    assert np.array_equal(first.assign(KEYS), second.assign(KEYS))


def test_assignment_depends_on_seed():
    base = ConsistentHashRouter(4, seed=9).assign(KEYS)
    other = ConsistentHashRouter(4, seed=10).assign(KEYS)
    assert not np.array_equal(base, other)


def test_assignment_in_range_and_reasonably_balanced():
    router = ConsistentHashRouter(4, seed=0)
    owners = router.assign(KEYS)
    assert owners.min() >= 0 and owners.max() <= 3
    counts = np.bincount(owners, minlength=4)
    # Virtual nodes smooth the split; allow a generous spread around
    # the ideal n/4 per worker.
    assert counts.min() > len(KEYS) / 4 * 0.5
    assert counts.max() < len(KEYS) / 4 * 1.7


@pytest.mark.parametrize("n_workers", [2, 4, 8])
def test_adding_a_worker_moves_about_one_over_n_plus_one(n_workers):
    """Ring growth leaves old workers' points untouched, so only the
    keys whose successor point belongs to the new worker move."""
    before = ConsistentHashRouter(n_workers, seed=3).assign(KEYS)
    after = ConsistentHashRouter(n_workers + 1, seed=3).assign(KEYS)
    moved = before != after
    # Every moved key must land on the NEW worker — minimal disruption.
    assert np.all(after[moved] == n_workers)
    fraction = moved.mean()
    ideal = 1 / (n_workers + 1)
    assert 0.4 * ideal < fraction < 1.8 * ideal


def test_worker_for_matches_assign():
    router = ConsistentHashRouter(3, seed=5)
    owners = router.assign(KEYS[:100])
    assert [router.worker_for(int(key)) for key in KEYS[:100]] \
        == owners.tolist()


def test_split_partitions_keys_in_submission_order():
    router = ConsistentHashRouter(4, seed=1)
    split = router.split(KEYS[:1000])
    seen = np.concatenate(sorted((positions for positions in split.values()),
                                 key=lambda p: p[0]))
    # Each worker's positions are ascending (sub-batches preserve
    # submission order) and together they cover every key exactly once.
    for worker, positions in split.items():
        assert np.all(np.diff(positions) > 0)
        assert np.array_equal(router.assign(KEYS[:1000][positions]),
                              np.full(positions.size, worker))
    assert np.array_equal(np.sort(seen), np.arange(1000))


def test_routing_deterministic_for_submission_index_keys():
    """The tier keys reports by global submission index; two tiers
    with the same seed must route every batch identically."""
    router = ConsistentHashRouter(4, seed=13)
    again = ConsistentHashRouter(4, seed=13)
    start = 0
    for batch_size in (100, 57, 1, 400):
        keys = np.arange(start, start + batch_size, dtype=np.uint64)
        first = router.split(keys)
        second = again.split(keys)
        assert sorted(first) == sorted(second)
        for worker in first:
            assert np.array_equal(first[worker], second[worker])
        start += batch_size


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ConsistentHashRouter(0)
    with pytest.raises(ValueError):
        ConsistentHashRouter(2, replicas=0)
