"""Typed query IR + planner tests (repro.queries.ir / planner).

The load-bearing property: every IR kind lowers onto the *same* range
primitives the mechanisms already answer, so marginal cells and point
estimates must match the equivalent degenerate range queries at 1e-9
(they are in fact bitwise equal — one answering stack, one code path),
counts must be the range answer times the population, and top-k must be
the Norm-Sub'd marginal's deterministic arg-top-k.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_dataset
from repro.datasets import Dataset
from repro.postprocess import norm_sub
from repro.queries import (QUERY_KINDS, DistributionResult, MarginalQuery,
                           PointQuery, Predicate, PredicateCountQuery,
                           Query, QueryPlanner, RangeQuery, ScalarResult,
                           TopKQuery, TopKResult, WorkloadGenerator,
                           answer_workload, evaluate_query, evaluate_workload,
                           query_kind, top_k_cells)
from repro.serving import SNAPSHOT_MECHANISMS


@pytest.fixture(scope="module")
def ir_dataset() -> Dataset:
    return make_dataset("normal", 2_000, 3, 16,
                        rng=np.random.default_rng(11))


@pytest.fixture(scope="module")
def fitted(ir_dataset):
    """One fitted instance per mechanism, shared across this module."""
    return {name: factory(1.0, seed=9).fit(ir_dataset)
            for name, factory in SNAPSHOT_MECHANISMS.items()}


# ----------------------------------------------------------------------
# IR construction and validation
# ----------------------------------------------------------------------
def test_marginal_query_canonicalises_and_validates():
    query = MarginalQuery((2, 0))
    assert query.attributes == (0, 2)
    assert query.dimension == 2
    assert query.n_cells(4) == 16
    with pytest.raises(ValueError, match="at least one attribute"):
        MarginalQuery(())
    with pytest.raises(ValueError, match="at most once"):
        MarginalQuery((1, 1))
    with pytest.raises(ValueError, match="non-negative"):
        MarginalQuery((-1,))


def test_point_query_canonicalises_and_validates():
    query = PointQuery(((2, 5), (0, 3)))
    assert query.assignment == ((0, 3), (2, 5))
    assert query.attributes == (0, 2)
    assert PointQuery.from_dict({1: 4}).assignment == ((1, 4),)
    as_range = query.as_range()
    assert all(p.low == p.high for p in as_range.predicates)
    with pytest.raises(ValueError, match="at most once"):
        PointQuery(((0, 1), (0, 2)))
    with pytest.raises(ValueError, match="non-negative"):
        PointQuery(((0, -3),))


def test_count_query_wraps_range_and_checks_population():
    query = PredicateCountQuery((Predicate(1, 2, 6), Predicate(0, 0, 3)),
                                population=500)
    assert query.as_range() == RangeQuery((Predicate(0, 0, 3),
                                           Predicate(1, 2, 6)))
    assert query.population == 500
    assert PredicateCountQuery.from_dict({0: (1, 2)}).population is None
    with pytest.raises(ValueError, match="population"):
        PredicateCountQuery((Predicate(0, 0, 1),), population=0)


def test_topk_query_validates_k():
    query = TopKQuery((1, 0), k=3)
    assert query.attributes == (0, 1)
    assert query.marginal() == MarginalQuery((0, 1))
    # k larger than the table clamps at selection time.
    cells, values = top_k_cells(np.full((2, 2), 0.25), 100)
    assert len(cells) == 4
    with pytest.raises(ValueError, match="k must be >= 1"):
        TopKQuery((0,), k=0)


def test_query_kind_names_every_kind():
    kinds = {
        query_kind(RangeQuery((Predicate(0, 0, 1),))): RangeQuery,
        query_kind(MarginalQuery((0,))): MarginalQuery,
        query_kind(PointQuery(((0, 0),))): PointQuery,
        query_kind(PredicateCountQuery((Predicate(0, 0, 1),))):
            PredicateCountQuery,
        query_kind(TopKQuery((0,))): TopKQuery,
    }
    assert set(kinds) == set(QUERY_KINDS)
    assert isinstance(RangeQuery((Predicate(0, 0, 1),)), Query)
    with pytest.raises(TypeError, match="not an IR query"):
        query_kind("range")


# ----------------------------------------------------------------------
# Planner lowering and validation
# ----------------------------------------------------------------------
def test_planner_lowers_marginal_in_row_major_cell_order():
    planner = QueryPlanner(domain_size=3, n_attributes=4)
    plan = planner.plan([MarginalQuery((1, 3))])
    ranges = plan.ranges
    assert len(ranges) == 9
    # Row-major: the last attribute varies fastest.
    cells = [(r.interval(1)[0], r.interval(3)[0]) for r in ranges]
    assert cells == [(a, b) for a in range(3) for b in range(3)]
    results = plan.assemble(np.arange(9.0))
    assert isinstance(results[0], DistributionResult)
    assert results[0].values.shape == (3, 3)
    assert results[0].values[2, 1] == 7.0


def test_planner_count_scaling_and_population_fallbacks():
    planner = QueryPlanner(domain_size=8, n_attributes=2, population=1000)
    query = PredicateCountQuery((Predicate(0, 0, 3),))
    [result] = planner.plan([query]).assemble(np.array([0.25]))
    assert result.value == 250.0 and result.population == 1000
    explicit = PredicateCountQuery((Predicate(0, 0, 3),), population=40)
    [result] = planner.plan([explicit]).assemble(np.array([0.25]))
    assert result.value == 10.0 and result.population == 40
    bare = QueryPlanner(domain_size=8, n_attributes=2, population=None)
    with pytest.raises(ValueError, match="count query 0 has no population"):
        bare.plan([query])


def test_planner_rejects_out_of_schema_queries_by_position_and_kind():
    planner = QueryPlanner(domain_size=8, n_attributes=2)
    good = RangeQuery((Predicate(0, 0, 3),))
    with pytest.raises(ValueError, match="query 1 .marginal. references "
                                         "attribute 5"):
        planner.plan([good, MarginalQuery((5,))])
    with pytest.raises(ValueError, match="query 0 .range. interval"):
        planner.plan([RangeQuery((Predicate(0, 0, 9),))])
    with pytest.raises(TypeError, match="not an IR query"):
        planner.plan([object()])


def test_planner_capability_dispatch_rejects_unsupported_kinds():
    planner = QueryPlanner(domain_size=8, n_attributes=2)
    with pytest.raises(ValueError, match="query 0 is a topk query"):
        planner.plan([TopKQuery((0,))], capabilities=frozenset({"range"}))


def test_plan_assemble_checks_answer_count():
    planner = QueryPlanner(domain_size=4, n_attributes=2)
    plan = planner.plan([MarginalQuery((0,))])
    with pytest.raises(ValueError, match="expects 4 primitive answers"):
        plan.assemble(np.zeros(3))


def test_top_k_cells_is_deterministic_under_ties():
    table = np.array([[0.2, 0.3], [0.3, 0.2]])
    cells, values = top_k_cells(table, 3)
    # Ties broken by row-major order: (0,1) before (1,0), (0,0) before (1,1).
    assert cells == ((0, 1), (1, 0), (0, 0))
    assert np.array_equal(values, np.array([0.3, 0.3, 0.2]))


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------
def test_ground_truth_marginal_matches_dataset_tables(ir_dataset):
    result = evaluate_query(ir_dataset, MarginalQuery((0, 2)))
    assert np.array_equal(result.values, ir_dataset.marginal_table((0, 2)))
    assert np.array_equal(ir_dataset.marginal_table((1,)),
                          ir_dataset.marginal(1))
    assert np.array_equal(ir_dataset.marginal_table((0, 1)),
                          ir_dataset.joint_marginal(0, 1))
    assert result.values.sum() == pytest.approx(1.0)


def test_ground_truth_point_and_count_match_range(ir_dataset):
    point = PointQuery(((0, 3), (1, 7)))
    truth = evaluate_query(ir_dataset, point)
    assert truth.value == answer_workload(ir_dataset, [point.as_range()])[0]
    count = PredicateCountQuery((Predicate(0, 2, 9),))
    truth = evaluate_query(ir_dataset, count)
    fraction = answer_workload(ir_dataset, [count.as_range()])[0]
    assert truth.value == fraction * ir_dataset.n_users
    assert truth.population == ir_dataset.n_users


def test_ground_truth_topk_is_true_marginals_argmax(ir_dataset):
    truth = evaluate_query(ir_dataset, TopKQuery((0, 1), k=4))
    table = ir_dataset.marginal_table((0, 1))
    assert truth.distribution is not None
    assert np.array_equal(truth.distribution, table)
    assert truth.values[0] == table.max()
    assert len(truth.cells) == 4
    assert truth.values.tolist() == sorted(truth.values, reverse=True)


def test_answer_workload_rejects_typed_queries(ir_dataset):
    with pytest.raises(TypeError, match="query 1 is a marginal query"):
        answer_workload(ir_dataset, [RangeQuery((Predicate(0, 0, 1),)),
                                     MarginalQuery((0,))])


# ----------------------------------------------------------------------
# The property: every mechanism, every kind, one answering stack
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_marginal_matches_degenerate_ranges(name, fitted, ir_dataset):
    mechanism = fitted[name]
    query = MarginalQuery((0, 2))
    result = mechanism.answer(query)
    flat = mechanism.answer_workload(query.to_ranges(ir_dataset.domain_size))
    assert result.values.shape == (16, 16)
    np.testing.assert_allclose(result.values.ravel(), flat, atol=1e-9)


@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_point_and_count_match_equivalent_range(name, fitted, ir_dataset):
    mechanism = fitted[name]
    point = PointQuery(((0, 3), (1, 12)))
    assert abs(mechanism.answer(point).value
               - mechanism.answer(point.as_range())) <= 1e-9
    count = PredicateCountQuery((Predicate(0, 2, 9), Predicate(2, 0, 7)))
    expected = mechanism.answer(count.as_range()) * ir_dataset.n_users
    result = mechanism.answer(count)
    assert abs(result.value - expected) <= 1e-9 * max(1.0, abs(expected))
    assert result.population == ir_dataset.n_users
    assert mechanism.population == ir_dataset.n_users


@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_topk_is_norm_sub_of_the_estimated_marginal(name, fitted):
    mechanism = fitted[name]
    top = mechanism.answer(TopKQuery((1, 2), k=5))
    marginal = mechanism.answer(MarginalQuery((1, 2)))
    cleaned = norm_sub(marginal.values)
    cells, values = top_k_cells(cleaned, 5)
    assert isinstance(top, TopKResult)
    assert top.cells == cells
    np.testing.assert_allclose(top.values, values, atol=1e-12)


@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_mixed_workload_through_answer_workload(name, fitted, ir_dataset):
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(21))
    mixed = generator.mixed_workload(10, 2, 0.5)
    results = fitted[name].answer_workload(mixed)
    assert [r.kind for r in results] == [query_kind(q) for q in mixed]
    for result in results:
        if isinstance(result, ScalarResult):
            assert np.isfinite(result.value)
        elif isinstance(result, DistributionResult):
            assert np.isfinite(result.values).all()
        else:
            assert np.isfinite(result.values).all()
            assert len(result.cells) == result.query.k
    truths = evaluate_workload(ir_dataset, mixed)
    assert [t.kind for t in truths] == [r.kind for r in results]


def test_legacy_engine_matches_batch_for_typed_queries(fitted):
    """The planner's primitives respect use_legacy_answering."""
    for name in ("TDG", "HDG", "Uni", "MSW", "CALM"):
        mechanism = fitted[name]
        query = MarginalQuery((0, 1))
        batch = mechanism.answer(query).values
        mechanism.use_legacy_answering = True
        try:
            legacy = mechanism.answer(query).values
        finally:
            mechanism.use_legacy_answering = False
        np.testing.assert_allclose(batch, legacy, atol=1e-9)


def test_answer_typed_caches_compiled_plans(ir_dataset):
    mechanism = SNAPSHOT_MECHANISMS["TDG"](1.0, seed=0).fit(ir_dataset)
    workload = [MarginalQuery((0, 1)), PointQuery(((2, 5),))]
    first = mechanism.answer_typed(workload)
    assert len(mechanism._typed_plan_cache) == 1
    cached_plan = next(iter(mechanism._typed_plan_cache.values()))
    second = mechanism.answer_typed(list(workload))  # fresh list, same key
    assert next(iter(mechanism._typed_plan_cache.values())) is cached_plan
    assert np.array_equal(first[0].values, second[0].values)
    assert first[1].value == second[1].value
    # The cache is FIFO-bounded.
    for value in range(mechanism._PLAN_CACHE_ENTRIES + 2):
        mechanism.answer_typed([PointQuery(((0, value),))])
    assert len(mechanism._typed_plan_cache) == mechanism._PLAN_CACHE_ENTRIES


def test_capability_dispatch_on_mechanisms(ir_dataset):
    class RangeOnlyTDG(SNAPSHOT_MECHANISMS["TDG"]):
        query_capabilities = frozenset({"range"})

    mechanism = RangeOnlyTDG(1.0, seed=0).fit(ir_dataset)
    # Ranges still answer through the unchanged fast path...
    assert np.isfinite(mechanism.answer(RangeQuery((Predicate(0, 0, 5),))))
    # ...but planned kinds outside the capability set are rejected.
    with pytest.raises(ValueError, match="marginal query, which this "
                                         "mechanism does not support"):
        mechanism.answer_workload([MarginalQuery((0,))])


def test_count_query_needs_population_after_pre_ir_snapshot(ir_dataset):
    mechanism = SNAPSHOT_MECHANISMS["MSW"](1.0, seed=0).fit(ir_dataset)
    state = mechanism.save_state()
    del state["n_reports"]  # simulate a pre-IR snapshot document
    restored = SNAPSHOT_MECHANISMS["MSW"](1.0).load_state(state)
    assert restored.population is None
    with pytest.raises(ValueError, match="no population"):
        restored.answer(PredicateCountQuery((Predicate(0, 0, 3),)))
    # An explicit per-query population unblocks it.
    result = restored.answer(PredicateCountQuery((Predicate(0, 0, 3),),
                                                 population=750))
    assert result.population == 750


@pytest.mark.parametrize("name", ["TDG", "HDG"])
def test_grid_mechanisms_recover_population_from_pre_ir_snapshots(
        name, ir_dataset):
    """TDG/HDG payloads always carried total_reports; a pre-IR snapshot
    (no top-level n_reports) restores a usable population from it."""
    mechanism = SNAPSHOT_MECHANISMS[name](1.0, seed=0).fit(ir_dataset)
    state = mechanism.save_state()
    del state["n_reports"]
    restored = SNAPSHOT_MECHANISMS[name](1.0).load_state(state)
    assert restored.population == ir_dataset.n_users
    result = restored.answer(PredicateCountQuery((Predicate(0, 0, 3),)))
    assert result.population == ir_dataset.n_users


@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_snapshot_restore_answers_mixed_workloads_bitwise(name, fitted):
    """Typed answers survive save_state/load_state bit-for-bit."""
    import json

    from repro.serving import restore_mechanism

    mechanism = fitted[name]
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(33))
    mixed = generator.mixed_workload(8, 2, 0.5)
    restored = restore_mechanism(json.loads(json.dumps(mechanism.save_state())))
    for _ in range(2):  # twice: noise-drawing mechanisms must stay in sync
        live = mechanism.answer_workload(mixed)
        again = restored.answer_workload(mixed)
        for a, b in zip(live, again):
            if isinstance(a, ScalarResult):
                assert a.value == b.value
            elif isinstance(a, DistributionResult):
                assert np.array_equal(a.values, b.values)
            else:
                assert a.cells == b.cells
                assert np.array_equal(a.values, b.values)
