"""User-partitioning utilities shared by all LDP mechanisms."""

from .grouping import partition_users, partition_users_weighted, split_population

__all__ = [
    "partition_users",
    "partition_users_weighted",
    "split_population",
]
