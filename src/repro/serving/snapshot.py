"""Versioned on-disk snapshots of fitted mechanisms and services.

A snapshot is the JSON document produced by
:meth:`repro.core.RangeQueryMechanism.save_state` (one fitted
estimator) or :meth:`repro.serving.QueryService.state_dict` (estimator
plus the open ingest collector).  :class:`SnapshotStore` manages a
directory of such documents with monotonically increasing version
numbers — every ``save`` writes ``snapshot-NNNNNN.json`` atomically
(private temp file, then an exclusive hard-link claim of the version
slot; requires a filesystem with hard links), ``load`` reads the
latest (or any explicit) version, and an optional retention cap prunes
old versions.

:func:`restore_mechanism` is the inverse of ``save_state`` for callers
that only hold the document: it rebuilds the mechanism instance from
the registry and the document's ``config`` and then loads the fitted
state, so the restored estimator's answers are bitwise identical to
the live one's (``tests/test_serving.py`` pins this property for every
mechanism).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..baselines import CALM, HIO, LHIO, MSW, Uniform
from ..core import HDG, IHDG, ITDG, TDG, RangeQueryMechanism
from ..core.base import (MECHANISM_STATE_FORMAT, MECHANISM_STATE_VERSION,
                         check_state_document)

#: Snapshotable mechanisms by paper name (every mechanism in the
#: library implements the save_state/load_state hooks).
SNAPSHOT_MECHANISMS: dict[str, type] = {
    "TDG": TDG,
    "HDG": HDG,
    "ITDG": ITDG,
    "IHDG": IHDG,
    "CALM": CALM,
    "HIO": HIO,
    "LHIO": LHIO,
    "MSW": MSW,
    "Uni": Uniform,
}


def fsync_directory(directory: str | Path) -> None:
    """fsync a directory so a just-renamed/linked entry survives power loss.

    A rename or link is only durable once the *directory* holding the
    new name is flushed; fsyncing the file alone leaves the name
    itself in the page cache.  Platforms whose directories cannot be
    opened for reading (or that lack ``O_DIRECTORY``) degrade to a
    no-op rather than failing the write.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        descriptor = os.open(directory, flags)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(descriptor)


def restore_mechanism(state: dict,
                      seed: int | None = None) -> RangeQueryMechanism:
    """Rebuild a fitted mechanism from a ``save_state`` document.

    The instance is constructed from the registry entry for
    ``state["mechanism"]`` with the constructor keyword arguments the
    document recorded (``state["config"]``), then the fitted state —
    grids, matrices, caches and the RNG stream — is loaded, so the
    restored estimator answers bitwise identically to the saved one.
    ``seed`` only seeds the throwaway pre-restore generator; the saved
    RNG state overwrites it.
    """
    check_state_document(state, MECHANISM_STATE_FORMAT,
                         MECHANISM_STATE_VERSION)
    name = state["mechanism"]
    try:
        factory = SNAPSHOT_MECHANISMS[name]
    except KeyError:
        raise ValueError(f"unknown mechanism in state: {name!r}; "
                         f"known: {sorted(SNAPSHOT_MECHANISMS)}") from None
    config = dict(state.get("config", {}))
    mechanism = factory(float(state["epsilon"]), seed=seed, **config)
    return mechanism.load_state(state)


@dataclass(frozen=True)
class SnapshotInfo:
    """Identity of one stored snapshot: its version number and path."""

    version: int
    path: Path


class SnapshotStore:
    """A directory of versioned JSON snapshots.

    Parameters
    ----------
    directory:
        Where snapshot files live; created on first ``save``.
    keep_last:
        Optional retention cap — after each ``save``, only the newest
        ``keep_last`` versions are kept on disk.  ``None`` keeps all.
    """

    #: File name pattern of one stored version.
    FILE_TEMPLATE = "snapshot-{version:06d}.json"
    _FILE_GLOB = "snapshot-*.json"

    def __init__(self, directory: str | Path, keep_last: int | None = None):
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be >= 1 when set")
        self.directory = Path(directory)
        self.keep_last = keep_last

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def versions(self) -> list[int]:
        """Stored version numbers, ascending."""
        if not self.directory.is_dir():
            return []
        versions = []
        for path in self.directory.glob(self._FILE_GLOB):
            stem = path.stem.removeprefix("snapshot-")
            if stem.isdigit():
                versions.append(int(stem))
        return sorted(versions)

    def latest_version(self) -> int | None:
        """The newest stored version number, or None for an empty store."""
        versions = self.versions()
        return versions[-1] if versions else None

    def path_of(self, version: int) -> Path:
        """The on-disk path a given version is (or would be) stored at."""
        return self.directory / self.FILE_TEMPLATE.format(version=version)

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, state: dict) -> SnapshotInfo:
        """Write ``state`` as the next version (atomic write + prune).

        Safe under concurrent writers (the threaded ``/snapshot``
        endpoint, or a parallel ``repro snapshot create`` on the same
        store): the document lands in a fresh private temp file, and
        the version slot is claimed with an exclusive hard link —
        losing a claim race just moves this snapshot to the next
        version number, never overwriting or corrupting another one.

        Durable against power loss: the document bytes are fsync'd
        before the version slot is claimed, and the directory itself
        is fsync'd after, so a ``save`` that returned cannot produce a
        missing or truncated snapshot file.  A failed ``save`` never
        leaves its temp file behind.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        descriptor, temp = tempfile.mkstemp(dir=self.directory,
                                            suffix=".json.tmp")
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(json.dumps(state))
                handle.flush()
                os.fsync(handle.fileno())
            while True:
                version = (self.latest_version() or 0) + 1
                path = self.path_of(version)
                try:
                    os.link(temp, path)
                    break
                except FileExistsError:
                    continue
        finally:
            os.unlink(temp)
        fsync_directory(self.directory)
        self._prune()
        return SnapshotInfo(version=version, path=path)

    def load(self, version: int | None = None) -> dict:
        """Read one stored snapshot document (the latest by default)."""
        if version is None:
            version = self.latest_version()
            if version is None:
                raise FileNotFoundError(
                    f"snapshot store {self.directory} is empty")
        path = self.path_of(version)
        if not path.exists():
            raise FileNotFoundError(f"no snapshot version {version} in "
                                    f"{self.directory}")
        return json.loads(path.read_text())

    def _prune(self) -> None:
        if self.keep_last is None:
            return
        for version in self.versions()[:-self.keep_last]:
            self.path_of(version).unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SnapshotStore({str(self.directory)!r}, "
                f"versions={self.versions()})")
