"""Figure 11: MAE over all full 2-D marginal (point) queries.

Paper shape: all mechanisms achieve small absolute errors (the workload is
point queries); CALM is competitive here (it was designed for marginals),
HDG remains comparable or better on most datasets.
"""

from _scale import current_scale, report

from repro.experiments import appendix, figures


def bench_figure_11(benchmark):
    scale = current_scale()
    # The exhaustive marginal workload has C(d,2) * c^2 queries, so the quick
    # configuration shrinks the domain and attribute count.
    quick = scale.n_users <= 100_000
    domain_size = 16 if quick else 64
    n_attributes = 4 if quick else 6

    def run():
        return appendix.figure_11_full_marginals(
            datasets=scale.datasets[:2], epsilons=scale.epsilons[:3],
            n_users=scale.n_users, n_attributes=n_attributes,
            domain_size=domain_size, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig11_full_marginals",
           figures.format_figure_results(results, "Figure 11: full 2-D marginals"))
    for dataset, sweep in results.items():
        series = sweep.series()
        assert series["HDG"][-1] < series["Uni"][-1]
