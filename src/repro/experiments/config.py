"""Declarative experiment configuration.

An :class:`ExperimentConfig` captures everything one evaluation point in
the paper needs — dataset, population, domain, privacy budget, query
workload shape and the list of competing mechanisms — so that every figure
can be expressed as a sweep of one field of a base configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..queries import validate_query_kinds

#: Mechanism line-up of the main-body figures, in the paper's plot order.
DEFAULT_METHODS = ("Uni", "MSW", "CALM", "HIO", "LHIO", "TDG", "HDG")

#: Line-up used by figures where HIO is omitted for being off the chart.
METHODS_WITHOUT_HIO = ("Uni", "MSW", "CALM", "LHIO", "TDG", "HDG")


@dataclass(frozen=True)
class ExperimentConfig:
    """One evaluation point: dataset + workload + mechanisms.

    The default values mirror the paper's defaults (Section 5.1):
    ε = 1.0, ω = 0.5, d = 6, c = 64, n = 10^6, |Q| = 200 — except that the
    population and workload sizes default lower so the whole suite runs on
    a laptop; benchmarks scale them explicitly.
    """

    dataset: str = "normal"
    n_users: int = 100_000
    n_attributes: int = 6
    domain_size: int = 64
    epsilon: float = 1.0
    query_dimension: int = 2
    volume: float = 0.5
    n_queries: int = 200
    n_repeats: int = 1
    methods: tuple[str, ...] = DEFAULT_METHODS
    seed: int = 0
    dataset_kwargs: dict[str, Any] = field(default_factory=dict)
    mechanism_kwargs: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Number of user shards collected in parallel per mechanism (1 = the
    #: classic single-shot fit).  Mechanisms without sharding support fall
    #: back to fit() regardless.
    n_shards: int = 1
    #: Concurrency cap for the shard executor; None = one worker per shard.
    shard_workers: int | None = None
    #: Phase-3 answering path: "batch" (vectorised prefix-sum engine, the
    #: default) or "legacy" (original one-query-at-a-time loops, kept for
    #: comparison and benchmarking).
    query_engine: str = "batch"
    #: Worker processes used by the experiment executor to evaluate the
    #: (sweep value, repetition, mechanism) cell grid.  1 (the default)
    #: runs every cell in-process; any value reproduces the sequential
    #: results bit-for-bit because each cell derives its randomness from
    #: the configuration seed alone.
    n_jobs: int = 1
    #: Query kinds the generated workload cycles through (round-robin).
    #: The default is the paper's pure range workload; any other tuple
    #: produces a mixed typed-IR workload (see
    #: :meth:`repro.queries.WorkloadGenerator.mixed_workload`) scored
    #: per kind by the runner.
    query_kinds: tuple[str, ...] = ("range",)
    #: ``k`` of any generated top-k queries.
    top_k: int = 5

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def validate(self) -> None:
        """Raise ValueError when the configuration is internally inconsistent."""
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if self.n_attributes < 2:
            raise ValueError("n_attributes must be at least 2")
        if not (self.domain_size & (self.domain_size - 1)) == 0 or self.domain_size < 2:
            raise ValueError("domain_size must be a power of two >= 2")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 1 <= self.query_dimension <= self.n_attributes:
            raise ValueError("query_dimension must be in [1, n_attributes]")
        if not 0.0 < self.volume <= 1.0:
            raise ValueError("volume must be in (0, 1]")
        if self.n_queries < 1 or self.n_repeats < 1:
            raise ValueError("n_queries and n_repeats must be positive")
        if not self.methods:
            raise ValueError("at least one mechanism must be listed")
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be positive when set")
        if self.query_engine not in ("batch", "legacy"):
            raise ValueError("query_engine must be 'batch' or 'legacy'")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be positive")
        validate_query_kinds(self.query_kinds)
        if self.top_k < 1:
            raise ValueError("top_k must be positive")

    @property
    def is_mixed_workload(self) -> bool:
        """Whether the workload mixes typed IR kinds beyond plain ranges."""
        return tuple(self.query_kinds) != ("range",)
