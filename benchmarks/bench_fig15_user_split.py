"""Figure 15: HDG accuracy as the 1-D/2-D user split σ varies.

Paper shape: σ between 0.2 and 0.6 gives consistently good accuracy,
justifying the default equal-population split σ0 = d / (d + C(d,2)).
"""

from _scale import current_scale, report

from repro.experiments import appendix


def bench_figure_15(benchmark):
    scale = current_scale()
    sigmas = (0.1, 0.3, 0.5, 0.7, 0.9) if scale.n_users <= 100_000 else (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    epsilons = (0.2, 1.0, 1.8)

    def run():
        return appendix.figure_15_user_split(
            datasets=scale.datasets[:2], sigmas=sigmas, epsilons=epsilons,
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            domain_size=scale.domain_size, volume=0.5,
            n_queries=scale.n_queries, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Figure 15: HDG vs user split sigma =="]
    for dataset, per_epsilon in results.items():
        for epsilon, sweep in per_epsilon.items():
            maes = sweep.series()["HDG"]
            row = "  ".join(f"{sigma:.1f}:{mae:.4f}"
                            for sigma, mae in zip(sweep.values, maes))
            lines.append(f"{dataset} eps={epsilon}: {row}")
    report("fig15_user_split", "\n".join(lines))
    # The default-range sigmas (0.2-0.6) should not be far from the best.
    for dataset, per_epsilon in results.items():
        for epsilon, sweep in per_epsilon.items():
            maes = sweep.series()["HDG"]
            best = min(maes)
            mid = [mae for sigma, mae in zip(sweep.values, maes) if 0.2 <= sigma <= 0.6]
            assert min(mid) <= best * 2.5 + 0.01
