"""End-to-end integration tests: the paper's qualitative claims at test scale.

These check the *shape* of the evaluation results (who beats whom) that the
paper's figures report, on small but statistically sufficient populations.
"""

import numpy as np
import pytest

from repro.baselines import CALM, HIO, LHIO, MSW, Uniform
from repro.core import HDG, TDG
from repro.datasets import generate_normal, make_dataset
from repro.metrics import mean_absolute_error
from repro.queries import WorkloadGenerator, answer_workload


def _evaluate(mechanism, dataset, queries, truths):
    mechanism.fit(dataset)
    return mean_absolute_error(mechanism.answer_workload(queries), truths)


@pytest.fixture(scope="module")
def correlated_setup():
    rng = np.random.default_rng(0)
    dataset = generate_normal(60_000, 4, 32, covariance=0.8, rng=rng)
    generator = WorkloadGenerator(4, 32, rng=np.random.default_rng(1))
    queries = generator.random_workload(40, 2, 0.5)
    truths = answer_workload(dataset, queries)
    return dataset, queries, truths


def test_hdg_beats_every_baseline_on_2d_queries(correlated_setup):
    dataset, queries, truths = correlated_setup
    hdg_mae = _evaluate(HDG(1.0, granularities=(8, 4), seed=0), dataset,
                        queries, truths)
    for baseline in (Uniform(), MSW(1.0, seed=0), CALM(1.0, seed=0),
                     LHIO(1.0, seed=0), TDG(1.0, granularity=4, seed=0)):
        baseline_mae = _evaluate(baseline, dataset, queries, truths)
        assert hdg_mae < baseline_mae, (
            f"HDG ({hdg_mae:.4f}) should beat {baseline.name} ({baseline_mae:.4f})")


def test_hio_is_the_worst_mechanism(correlated_setup):
    dataset, queries, truths = correlated_setup
    hio_mae = _evaluate(HIO(1.0, seed=0), dataset, queries, truths)
    uni_mae = _evaluate(Uniform(), dataset, queries, truths)
    hdg_mae = _evaluate(HDG(1.0, granularities=(8, 4), seed=0), dataset,
                        queries, truths)
    # The paper reports HIO performing worse than even the uniform guess in
    # most cases, and far worse than HDG.
    assert hio_mae > hdg_mae
    assert hio_mae > uni_mae * 0.5


def test_hdg_improves_with_epsilon(correlated_setup):
    dataset, queries, truths = correlated_setup
    maes = []
    for epsilon in (0.2, 2.0):
        runs = [_evaluate(HDG(epsilon, granularities=(8, 4), seed=seed),
                          dataset, queries, truths) for seed in range(2)]
        maes.append(np.mean(runs))
    assert maes[1] < maes[0]


def test_hdg_improves_with_population():
    generator = WorkloadGenerator(4, 32, rng=np.random.default_rng(5))
    queries = generator.random_workload(30, 2, 0.5)
    maes = []
    for n_users in (5_000, 80_000):
        dataset = generate_normal(n_users, 4, 32, covariance=0.8,
                                  rng=np.random.default_rng(2))
        truths = answer_workload(dataset, queries)
        runs = [_evaluate(HDG(1.0, granularities=(8, 4), seed=seed), dataset,
                          queries, truths) for seed in range(2)]
        maes.append(np.mean(runs))
    assert maes[1] < maes[0]


def test_msw_competitive_only_on_weakly_correlated_data():
    # On a Bfive-like (weak correlation) dataset MSW is competitive with HDG;
    # on an Ipums-like (strong correlation) dataset HDG wins clearly.
    generator = WorkloadGenerator(4, 32, rng=np.random.default_rng(6))
    queries = generator.random_workload(40, 2, 0.5)

    def gap(dataset_name: str) -> float:
        dataset = make_dataset(dataset_name, 60_000, 4, 32,
                               rng=np.random.default_rng(3))
        truths = answer_workload(dataset, queries)
        msw_mae = _evaluate(MSW(1.0, seed=0), dataset, queries, truths)
        hdg_mae = _evaluate(HDG(1.0, granularities=(8, 4), seed=0), dataset,
                            queries, truths)
        return msw_mae - hdg_mae

    assert gap("ipums") > gap("bfive") - 0.01


def test_phase2_ablation_hdg_vs_ihdg(correlated_setup):
    # With a small privacy budget, removing Phase 2 (IHDG) should not help.
    dataset, queries, truths = correlated_setup
    from repro.core import IHDG
    hdg_runs, ihdg_runs = [], []
    for seed in range(2):
        hdg_runs.append(_evaluate(HDG(0.5, granularities=(8, 4), seed=seed),
                                  dataset, queries, truths))
        ihdg_runs.append(_evaluate(IHDG(0.5, granularities=(8, 4), seed=seed),
                                   dataset, queries, truths))
    assert np.mean(hdg_runs) <= np.mean(ihdg_runs) * 1.2


def test_all_mechanisms_answer_the_same_workload_consistently(correlated_setup):
    dataset, queries, truths = correlated_setup
    for mechanism in (Uniform(), MSW(1.0, seed=0), TDG(1.0, seed=0),
                      HDG(1.0, seed=0)):
        mechanism.fit(dataset)
        estimates = mechanism.answer_workload(queries)
        assert estimates.shape == truths.shape
        assert np.isfinite(estimates).all()
