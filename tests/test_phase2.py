"""Tests for Phase 2 (negativity and inconsistency removal)."""

import numpy as np
import pytest

from repro.core import Grid1D, Grid2D, run_phase2
from repro.core.phase2 import (apply_consistency, apply_norm_sub,
                               attribute_views)


def _noisy_grids(rng, c=16, g1=8, g2=4, d=3, noise=0.05):
    """Build noisy 1-D and 2-D grids around a common random joint."""
    joint = rng.random((c,) * d)
    joint /= joint.sum()
    grids_1d = {}
    for attribute in range(d):
        axis_sum = joint.sum(axis=tuple(a for a in range(d) if a != attribute))
        cells = axis_sum.reshape(g1, -1).sum(axis=1)
        grid = Grid1D(attribute, c, g1)
        grid.set_frequencies(cells + rng.normal(0, noise, g1))
        grids_1d[attribute] = grid
    grids_2d = {}
    for a in range(d):
        for b in range(a + 1, d):
            pair_joint = joint.sum(axis=tuple(x for x in range(d)
                                              if x not in (a, b)))
            w = c // g2
            cells = pair_joint.reshape(g2, w, g2, w).sum(axis=(1, 3))
            grid = Grid2D((a, b), c, g2)
            grid.set_frequencies(cells + rng.normal(0, noise, (g2, g2)))
            grids_2d[(a, b)] = grid
    return grids_1d, grids_2d


def test_norm_sub_applied_to_all_grids(rng):
    grids_1d, grids_2d = _noisy_grids(rng)
    apply_norm_sub(grids_1d, grids_2d)
    for grid in grids_1d.values():
        assert (grid.frequencies >= 0).all()
        assert grid.frequencies.sum() == pytest.approx(1.0)
    for grid in grids_2d.values():
        assert (grid.frequencies >= 0).all()
        assert grid.frequencies.sum() == pytest.approx(1.0)


def test_attribute_views_counts(rng):
    grids_1d, grids_2d = _noisy_grids(rng, d=4)
    views = attribute_views(1, grids_1d, grids_2d, n_buckets=4)
    # One 1-D grid plus three 2-D grids contain attribute 1.
    assert len(views) == 4


def test_attribute_views_requires_aligned_granularities(rng):
    grid = Grid1D(0, 16, 4)
    with pytest.raises(ValueError):
        attribute_views(0, {0: grid}, {}, n_buckets=8)


def test_consistency_aligns_marginals(rng):
    grids_1d, grids_2d = _noisy_grids(rng)
    apply_norm_sub(grids_1d, grids_2d)
    apply_consistency(3, grids_1d, grids_2d, n_buckets=4)
    # After the consistency step, the bucket totals of attribute 0 agree
    # between its 1-D grid and both 2-D grids containing it.
    one_d = grids_1d[0].frequencies.reshape(4, 2).sum(axis=1)
    from_01 = grids_2d[(0, 1)].frequencies.sum(axis=1)
    from_02 = grids_2d[(0, 2)].frequencies.sum(axis=1)
    np.testing.assert_allclose(one_d, from_01, atol=1e-9)
    np.testing.assert_allclose(one_d, from_02, atol=1e-9)


def test_run_phase2_ends_non_negative_and_normalised(rng):
    grids_1d, grids_2d = _noisy_grids(rng, noise=0.2)
    run_phase2(3, grids_1d, grids_2d, n_buckets=4, rounds=3)
    for grid in list(grids_1d.values()) + list(grids_2d.values()):
        assert (grid.frequencies >= -1e-12).all()
        assert grid.frequencies.sum() == pytest.approx(1.0, abs=1e-6)


def test_run_phase2_reduces_error_towards_truth(rng):
    # Phase 2 should not hurt (and typically helps) the grid estimates.
    c, g1, g2, d = 16, 8, 4, 3
    joint = rng.random((c,) * d)
    joint /= joint.sum()
    errors_before, errors_after = [], []
    for seed in range(5):
        local = np.random.default_rng(seed)
        grids_1d, grids_2d = _noisy_grids(local, c=c, g1=g1, g2=g2, d=d,
                                          noise=0.08)
        # Truth for the (0, 1) pair at grid granularity.
        pair_joint = joint.sum(axis=2)
        w = c // g2
        truth = pair_joint.reshape(g2, w, g2, w).sum(axis=(1, 3))
        errors_before.append(np.abs(grids_2d[(0, 1)].frequencies - truth).mean())
        run_phase2(d, grids_1d, grids_2d, n_buckets=g2, rounds=3)
        errors_after.append(np.abs(grids_2d[(0, 1)].frequencies - truth).mean())
    assert np.mean(errors_after) < np.mean(errors_before) * 1.05


def test_run_phase2_works_without_1d_grids(rng):
    # TDG calls Phase 2 with 2-D grids only.
    _, grids_2d = _noisy_grids(rng)
    run_phase2(3, {}, grids_2d, n_buckets=4, rounds=2)
    for grid in grids_2d.values():
        assert grid.frequencies.sum() == pytest.approx(1.0, abs=1e-6)


def test_run_phase2_rejects_bad_rounds(rng):
    grids_1d, grids_2d = _noisy_grids(rng)
    with pytest.raises(ValueError):
        run_phase2(3, grids_1d, grids_2d, n_buckets=4, rounds=0)
