"""Multi-dimensional range query model.

A λ-dimensional range query is a conjunction of per-attribute interval
predicates (Section 3.1 of the paper).  Intervals are closed and expressed
in domain coordinates ``0 <= low <= high < c``; the query's answer is the
fraction of users whose record satisfies every predicate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Predicate:
    """A closed interval restriction ``low <= value <= high`` on one attribute."""

    attribute: int
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.attribute < 0:
            raise ValueError("attribute index must be non-negative")
        if self.low < 0 or self.high < self.low:
            raise ValueError(
                f"invalid interval [{self.low}, {self.high}] for attribute "
                f"{self.attribute}")

    @property
    def width(self) -> int:
        """Number of domain values covered by the interval."""
        return self.high - self.low + 1

    def covers(self, value: int) -> bool:
        """Whether a single attribute value satisfies this predicate."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class RangeQuery:
    """A conjunction of interval predicates over distinct attributes."""

    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a range query needs at least one predicate")
        attributes = [p.attribute for p in self.predicates]
        if len(set(attributes)) != len(attributes):
            raise ValueError("each attribute may appear at most once in a query")
        # Store predicates sorted by attribute for a canonical representation.
        object.__setattr__(self, "predicates",
                           tuple(sorted(self.predicates, key=lambda p: p.attribute)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, intervals: dict[int, tuple[int, int]]) -> "RangeQuery":
        """Build a query from ``{attribute: (low, high)}``."""
        return cls(tuple(Predicate(a, lo, hi) for a, (lo, hi) in intervals.items()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Query dimension λ (number of restricted attributes)."""
        return len(self.predicates)

    @property
    def attributes(self) -> tuple[int, ...]:
        """Sorted tuple of restricted attribute indices."""
        return tuple(p.attribute for p in self.predicates)

    def interval(self, attribute: int) -> tuple[int, int]:
        """Return ``(low, high)`` for a restricted attribute."""
        for predicate in self.predicates:
            if predicate.attribute == attribute:
                return predicate.low, predicate.high
        raise KeyError(f"attribute {attribute} is not restricted by this query")

    def restrict(self, attributes: tuple[int, ...]) -> "RangeQuery":
        """Project the query onto a subset of its attributes.

        Used when splitting a λ-D query into its associated 2-D queries
        (Section 4.4): the projection keeps only the predicates on the
        requested attributes.
        """
        kept = tuple(p for p in self.predicates if p.attribute in attributes)
        if len(kept) != len(attributes):
            missing = set(attributes) - {p.attribute for p in kept}
            raise KeyError(f"attributes {sorted(missing)} not restricted by query")
        return RangeQuery(kept)

    def pairwise_subqueries(self) -> list["RangeQuery"]:
        """All C(λ, 2) associated 2-D sub-queries (λ must be >= 2)."""
        attrs = self.attributes
        if len(attrs) < 2:
            raise ValueError("pairwise decomposition needs a query with λ >= 2")
        pairs = []
        for i in range(len(attrs)):
            for j in range(i + 1, len(attrs)):
                pairs.append(self.restrict((attrs[i], attrs[j])))
        return pairs

    def volume(self, domain_size: int) -> float:
        """Fraction of the λ-D domain the query covers (product of widths / c^λ)."""
        vol = 1.0
        for predicate in self.predicates:
            vol *= predicate.width / domain_size
        return vol

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"a{p.attribute + 1}∈[{p.low},{p.high}]" for p in self.predicates]
        return " ∧ ".join(parts)
