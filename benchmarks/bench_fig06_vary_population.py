"""Figure 6: MAE vs population n on the synthetic datasets.

Paper shape: a larger population boosts every LDP mechanism's accuracy;
HDG achieves the best performance throughout.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_6(benchmark):
    scale = current_scale()
    populations = ((10_000, 40_000, 160_000) if scale.n_users <= 100_000
                   else (100_000, 1_000_000, 10_000_000))

    def run():
        return figures.figure_6_vary_population(
            datasets=("normal",) if scale.n_users <= 100_000 else ("normal", "laplace"),
            populations=populations, query_dimensions=(2,),
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            epsilon=1.0, volume=0.5, n_queries=scale.n_queries,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig06_vary_population",
           figures.format_figure_results(results, "Figure 6: MAE vs population"))
    for _, sweep in results.items():
        series = sweep.series()
        # More users -> HDG error shrinks.
        assert series["HDG"][-1] <= series["HDG"][0]
