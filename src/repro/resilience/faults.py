"""Deterministic fault injection for storage backends.

A :class:`FaultInjectingBackend` wraps any real
:class:`~repro.storage.StorageBackend` and executes a seeded,
scriptable :class:`FaultPlan` against it: fail the Nth write with a
locked-database error, storm ``times`` consecutive calls, inject
latency, or tear a write-ahead-log append mid-entry.  Every failure
mode the resilience layer handles is therefore *reproducible* — the
chaos tests and the benchmark's ``--fault-rate`` mode replay the
exact same fault schedule from the same seed.

Fault kinds
-----------
``locked``
    Raises ``sqlite3.OperationalError("database is locked")`` — the
    classic transient SQLite contention error, injectable against
    either backend.
``io``
    Raises ``OSError(EINTR)`` — a retryable I/O hiccup.
``permanent``
    Raises :class:`~repro.resilience.PermanentStorageError` — a
    failure retrying cannot fix.
``latency``
    Sleeps ``latency_ms`` then lets the call proceed (for deadline
    tests and tail-latency benchmarks).
``torn``
    Only meaningful on ``append_ingest``: against a
    :class:`~repro.storage.DirectoryBackend` it writes a *truncated*
    entry file at the next sequence number — exactly what a crash
    mid-write without the atomic-rename discipline would leave — and
    then raises a *permanent* error (a torn write models a crash; an
    in-process retry would append after the corrupt file and turn a
    discardable torn tail into mid-sequence corruption).  Against
    other backends nothing is persisted (their appends are
    transactional), so the fault degenerates to a plain write failure.
    Either way the batch was never acknowledged.

Plans are scriptable from the command line through
:meth:`FaultPlan.parse`::

    append_ingest:error=locked:nth=3:times=5
    save_snapshot:error=io:rate=0.2
    append_ingest:error=latency:latency_ms=5:rate=0.5

(one spec per comma-separated segment; ``nth`` fires on the Nth call
of the op and ``times`` consecutive calls after it, ``rate`` fires
with seeded probability per call).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..storage.base import (IngestLogEntry, SnapshotRecord, StorageBackend,
                            TenantRecord)
from .errors import PermanentStorageError

__all__ = ["FaultInjectingBackend", "FaultPlan", "FaultSpec"]

#: Legal ``FaultSpec.error`` kinds.
FAULT_KINDS = ("locked", "io", "permanent", "latency", "torn")


@dataclass
class FaultSpec:
    """One scripted fault against one backend operation.

    Parameters
    ----------
    op:
        Backend method name (``"append_ingest"``, ``"save_snapshot"``,
        ...) or ``"*"`` for every operation.
    error:
        Fault kind (see module docstring).
    nth:
        Fire on the Nth call of ``op`` (1-based) and, with
        ``times > 1``, the following ``times - 1`` calls — a locked-db
        *storm*.  Mutually exclusive with ``rate``.
    rate:
        Fire with this seeded probability on each call, at most
        ``times`` total fires (``times=0`` means unlimited).
    times:
        Number of fires (consecutive for ``nth``, total for ``rate``).
    latency_ms:
        Sleep duration for ``error="latency"``.
    """

    op: str
    error: str = "locked"
    nth: int | None = None
    rate: float | None = None
    times: int = 1
    latency_ms: float = 1.0
    #: How many times this spec has fired.
    fired: int = field(default=0, init=False)

    def __post_init__(self):
        if self.error not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.error!r}; "
                             f"known: {list(FAULT_KINDS)}")
        if (self.nth is None) == (self.rate is None):
            raise ValueError("exactly one of nth or rate must be set")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.times < 0:
            raise ValueError("times must be >= 0")

    def should_fire(self, call_number: int, rng: np.random.Generator) -> bool:
        """Whether this spec fires on ``call_number`` of its op."""
        if self.nth is not None:
            if not self.nth <= call_number < self.nth + self.times:
                return False
        else:
            if self.times and self.fired >= self.times:
                return False
            if rng.random() >= self.rate:
                return False
        self.fired += 1
        return True


class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` entries.

    The plan owns one seeded generator consumed in call order, so the
    same (plan, workload) pair fires the same faults every run.
    """

    def __init__(self, specs: list[FaultSpec] | None = None,
                 seed: int = 0):
        self.specs = list(specs or [])
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        #: ``(op, call_number, kind)`` for every fault fired.
        self.fired_log: list[tuple[str, int, str]] = []

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """A plan from its compact CLI syntax (see module docstring)."""
        specs = []
        for segment in filter(None, (part.strip()
                                     for part in text.split(","))):
            op, _, rest = segment.partition(":")
            kwargs: dict = {}
            for pair in filter(None, rest.split(":")):
                key, _, value = pair.partition("=")
                if key in ("nth", "times"):
                    kwargs[key] = int(value)
                elif key in ("rate", "latency_ms"):
                    kwargs[key] = float(value)
                elif key == "error":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault field {key!r} in "
                                     f"{segment!r}")
            specs.append(FaultSpec(op=op, **kwargs))
        return cls(specs, seed=seed)

    def next_fault(self, op: str, call_number: int) -> FaultSpec | None:
        """The first spec firing for this call, if any."""
        for spec in self.specs:
            if spec.op not in ("*", op):
                continue
            if spec.should_fire(call_number, self._rng):
                self.fired_log.append((op, call_number, spec.error))
                return spec
        return None

    @property
    def total_fired(self) -> int:
        """Faults fired so far across all specs."""
        return len(self.fired_log)


class FaultInjectingBackend(StorageBackend):
    """A :class:`StorageBackend` that executes a fault plan.

    Every method delegates to the wrapped backend after consulting the
    plan; a firing fault raises *before* the inner call so no partial
    state is written (the one deliberate exception is ``torn``, which
    persists a truncated write-ahead-log entry first — that is the
    failure it models).  With an empty plan the wrapper is a pure
    pass-through, which is what the benchmark's no-fault overhead gate
    measures.
    """

    def __init__(self, inner: StorageBackend,
                 plan: FaultPlan | None = None,
                 sleep=time.sleep):
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self._sleep = sleep
        self._lock = threading.Lock()
        self.call_counts: dict[str, int] = {}

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"fault+{self.inner.name}"

    # ------------------------------------------------------------------
    # Fault machinery
    # ------------------------------------------------------------------
    def _maybe_fail(self, op: str, tear=None) -> None:
        with self._lock:
            count = self.call_counts.get(op, 0) + 1
            self.call_counts[op] = count
            spec = self.plan.next_fault(op, count)
        if spec is None:
            return
        if spec.error == "latency":
            self._sleep(spec.latency_ms / 1e3)
            return
        if spec.error == "locked":
            import sqlite3
            raise sqlite3.OperationalError("database is locked")
        if spec.error == "io":
            import errno
            raise OSError(errno.EINTR, f"injected I/O fault on {op}")
        if spec.error == "permanent":
            raise PermanentStorageError(f"injected permanent fault on {op}")
        # torn: persist the partial write, then surface the failure.
        # Permanent, not transient: a torn write models a crash
        # mid-entry, and an in-process retry would append *after* the
        # corrupt file — turning a discardable torn tail into
        # mid-sequence corruption.
        if tear is not None:
            tear()
        raise PermanentStorageError(f"injected torn write on {op}")

    def _tear_wal_append(self, tenant: str) -> None:
        """Leave a truncated entry file where the next append would go.

        Only the directory backend has a byte-level entry layout to
        tear; transactional backends persist nothing on a torn append.
        """
        wal_dir = getattr(self.inner, "_wal_dir", None)
        if wal_dir is None:
            return
        directory = wal_dir(tenant)
        directory.mkdir(parents=True, exist_ok=True)
        seq = self.inner.last_ingest_seq(tenant) + 1
        path = directory / f"entry-{seq:08d}.json"
        path.write_text('{"seq": %d, "rows": [[1, 2' % seq)

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    def create_tenant(self, name: str, config: dict) -> TenantRecord:
        self._maybe_fail("create_tenant")
        return self.inner.create_tenant(name, config)

    def get_tenant(self, name: str) -> TenantRecord:
        self._maybe_fail("get_tenant")
        return self.inner.get_tenant(name)

    def list_tenants(self) -> list[TenantRecord]:
        self._maybe_fail("list_tenants")
        return self.inner.list_tenants()

    def delete_tenant(self, name: str) -> None:
        self._maybe_fail("delete_tenant")
        self.inner.delete_tenant(name)

    def save_snapshot(self, tenant: str, document: dict, *,
                      wal_seq: int = 0) -> SnapshotRecord:
        self._maybe_fail("save_snapshot")
        return self.inner.save_snapshot(tenant, document, wal_seq=wal_seq)

    def load_snapshot(self, tenant: str,
                      version: int | None = None) -> tuple[dict,
                                                           SnapshotRecord]:
        self._maybe_fail("load_snapshot")
        return self.inner.load_snapshot(tenant, version)

    def list_snapshots(self, tenant: str | None = None) -> list[SnapshotRecord]:
        self._maybe_fail("list_snapshots")
        return self.inner.list_snapshots(tenant)

    def prune_snapshots(self, tenant: str, keep_last: int) -> int:
        self._maybe_fail("prune_snapshots")
        return self.inner.prune_snapshots(tenant, keep_last)

    def append_ingest(self, tenant: str, rows: list,
                      domain_size: int | None = None) -> int:
        self._maybe_fail("append_ingest",
                         tear=lambda: self._tear_wal_append(tenant))
        return self.inner.append_ingest(tenant, rows, domain_size)

    def pending_ingest(self, tenant: str,
                       after_seq: int = 0) -> list[IngestLogEntry]:
        self._maybe_fail("pending_ingest")
        return self.inner.pending_ingest(tenant, after_seq)

    def prune_ingest(self, tenant: str, upto_seq: int) -> int:
        self._maybe_fail("prune_ingest")
        return self.inner.prune_ingest(tenant, upto_seq)

    def discard_ingest(self, tenant: str, seq: int) -> None:
        self._maybe_fail("discard_ingest")
        self.inner.discard_ingest(tenant, seq)

    def ingest_log_depth(self, tenant: str | None = None) -> int:
        self._maybe_fail("ingest_log_depth")
        return self.inner.ingest_log_depth(tenant)

    def last_ingest_seq(self, tenant: str) -> int:
        self._maybe_fail("last_ingest_seq")
        return self.inner.last_ingest_seq(tenant)

    def location(self) -> str:
        return self.inner.location()

    def describe(self) -> dict:
        description = self.inner.describe()
        description["backend"] = self.name
        description["faults_fired"] = self.plan.total_fired
        return description

    def close(self) -> None:
        self.inner.close()
