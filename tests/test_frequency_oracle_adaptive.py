"""Tests for the adaptive GRR/OLH selection."""

import math

import numpy as np
import pytest

from repro.frequency_oracles import (AdaptiveFrequencyOracle,
                                     GeneralizedRandomizedResponse,
                                     OptimizedLocalHash, choose_oracle_kind,
                                     grr_variance, olh_variance)


def test_small_domain_prefers_grr():
    # For c - 2 < 3 e^eps, GRR has lower variance.
    assert choose_oracle_kind(1.0, 4) == "grr"
    assert choose_oracle_kind(2.0, 8) == "grr"


def test_large_domain_prefers_olh():
    assert choose_oracle_kind(1.0, 64) == "olh"
    assert choose_oracle_kind(0.5, 1024) == "olh"


def test_crossover_matches_variance_formulas():
    epsilon = 1.0
    for c in range(2, 40):
        expected = "grr" if grr_variance(epsilon, c, 1) <= olh_variance(epsilon, 1) else "olh"
        assert choose_oracle_kind(epsilon, c) == expected


def test_delegate_type_matches_choice():
    grr_oracle = AdaptiveFrequencyOracle(1.0, 4, rng=np.random.default_rng(0))
    assert isinstance(grr_oracle._delegate, GeneralizedRandomizedResponse)
    olh_oracle = AdaptiveFrequencyOracle(1.0, 256, rng=np.random.default_rng(0))
    assert isinstance(olh_oracle._delegate, OptimizedLocalHash)


def test_adaptive_estimates_are_reasonable(rng):
    values = rng.choice(4, size=30_000, p=[0.5, 0.3, 0.15, 0.05])
    oracle = AdaptiveFrequencyOracle(1.0, 4, rng=rng)
    estimates = oracle.estimate_frequencies(values)
    true = np.bincount(values, minlength=4) / values.size
    assert np.abs(estimates - true).max() < 0.03


def test_threshold_domain_value():
    oracle = AdaptiveFrequencyOracle(1.0, 16)
    assert oracle.threshold_domain == pytest.approx(3 * math.e + 2)


def test_invalid_domain_rejected():
    with pytest.raises(ValueError):
        choose_oracle_kind(1.0, 1)
