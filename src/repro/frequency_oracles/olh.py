"""Optimized Local Hash (OLH) frequency oracle.

OLH (Wang et al., USENIX Security 2017; Section 2.2 of the paper) first
hashes the value into a small domain ``[c']`` with ``c' = e^eps + 1`` and
then applies generalized randomized response on the hashed value.  Its
estimation variance (Equation (3)) is ``4 e^eps / ((e^eps - 1)^2 n)``,
independent of the original domain size, which makes it the oracle of
choice for the grids in TDG and HDG.

Two execution modes are provided:

``mode="user"``
    Faithful per-user simulation: every user draws a hash function from a
    2-universal family, hashes the true value, perturbs the hashed value
    with GRR over ``[c']`` and reports ``(seed, perturbed)``.  The
    aggregator counts, for every candidate value ``v``, how many reports
    support it (``H_i(v) == y_i``).  This is the protocol exactly as
    published but costs ``O(n * c)`` hash evaluations.

``mode="fast"``
    Aggregate binomial simulation: for each value ``v`` with ``n_v`` users,
    the support count is distributed as
    ``Binomial(n_v, p) + Binomial(n - n_v, 1/c')`` (each true holder
    supports its own value w.p. ``p``; every other user supports it w.p.
    ``1/c'`` through hash collisions).  Sampling these binomials per value
    reproduces the marginal distribution of every estimate while ignoring
    the (negligible, O(1/c')) correlation induced by shared hash functions.
    This is the standard simulation shortcut for large-n LDP experiments
    and is what makes the paper-scale parameter sweeps tractable; the two
    modes are checked against each other statistically in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

from .base import FrequencyOracle, SupportAccumulator, olh_variance
from .hashing import UniversalHashFamily


class OptimizedLocalHash(FrequencyOracle):
    """ε-LDP frequency oracle using optimized local hashing.

    Parameters
    ----------
    epsilon:
        Per-report privacy budget.
    domain_size:
        Original categorical domain size ``c``.
    mode:
        ``"fast"`` (default) for the aggregate binomial simulation or
        ``"user"`` for the faithful per-user protocol.
    hash_range:
        Optional override of ``c'``; defaults to ``round(e^eps) + 1`` as in
        the paper, never below 2.
    support_chunk_elements:
        Memory budget for ``mode="user"`` aggregation, expressed as the
        maximum number of hash-matrix entries evaluated at once.  The
        aggregator counts supports in report chunks of
        ``support_chunk_elements // domain_size`` rows instead of
        materialising the full ``n x c`` matrix (which at paper scale,
        n = 10^6 reports over a 64 x 64-cell grid, would need tens of
        gigabytes).  Chunking is exact — the support counts are integer
        sums and do not depend on the chunk boundaries.
    """

    #: Default memory budget: 4M int64 entries, ~32 MB per chunk.
    DEFAULT_SUPPORT_CHUNK_ELEMENTS = 1 << 22

    def __init__(self, epsilon: float, domain_size: int,
                 rng: np.random.Generator | None = None,
                 mode: str = "fast", hash_range: int | None = None,
                 support_chunk_elements: int | None = None):
        super().__init__(epsilon, domain_size, rng)
        if mode not in ("fast", "user"):
            raise ValueError(f"mode must be 'fast' or 'user', got {mode!r}")
        self.mode = mode
        if support_chunk_elements is None:
            support_chunk_elements = self.DEFAULT_SUPPORT_CHUNK_ELEMENTS
        if support_chunk_elements < 1:
            raise ValueError("support_chunk_elements must be positive")
        self.support_chunk_elements = int(support_chunk_elements)
        if hash_range is None:
            hash_range = int(round(math.exp(epsilon))) + 1
        self.hash_range = max(2, int(hash_range))
        e_eps = self.e_eps
        # GRR probabilities over the hashed domain [c'].
        self.p = e_eps / (e_eps + self.hash_range - 1)
        self.q = 1.0 / (e_eps + self.hash_range - 1)
        # Probability that a non-holder supports a given value: the hash is
        # uniform over [c'], so support happens w.p. 1/c' regardless of
        # whether the report was kept or randomized.
        self.q_support = 1.0 / self.hash_range

    # ------------------------------------------------------------------
    # Faithful per-user protocol
    # ------------------------------------------------------------------
    def perturb(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Produce per-user reports ``(a_seeds, b_seeds, perturbed_hash)``."""
        values = self._validate_values(values)
        n = values.size
        family = UniversalHashFamily(self.domain_size, self.hash_range, self.rng)
        a, b = family.sample_seeds(n)
        hashed = family.evaluate(a, b, values)
        keep = self.rng.random(n) < self.p
        offsets = self.rng.integers(1, self.hash_range, size=n)
        randomized = (hashed + offsets) % self.hash_range
        reports = np.where(keep, hashed, randomized)
        return a, b, reports

    def aggregate(self, a: np.ndarray, b: np.ndarray,
                  reports: np.ndarray) -> np.ndarray:
        """Aggregate per-user reports into unbiased frequency estimates."""
        return self.estimate_from_accumulator(self.count_supports(a, b, reports))

    def count_supports(self, a: np.ndarray, b: np.ndarray,
                       reports: np.ndarray) -> SupportAccumulator:
        """Count, per candidate value, how many reports support it.

        Reports are processed in fixed-size chunks so memory stays at
        ``support_chunk_elements`` hash evaluations regardless of ``n``;
        the resulting counts are identical to the one-shot evaluation.
        """
        family = UniversalHashFamily(self.domain_size, self.hash_range, self.rng)
        supports = np.zeros(self.domain_size)
        rows_per_chunk = max(1, self.support_chunk_elements // self.domain_size)
        for start in range(0, reports.size, rows_per_chunk):
            stop = start + rows_per_chunk
            hash_matrix = family.evaluate_matrix(a[start:stop], b[start:stop])
            supports += (hash_matrix == reports[start:stop, None]).sum(axis=0)
        return SupportAccumulator(supports, reports.size)

    # ------------------------------------------------------------------
    # Fast aggregate simulation
    # ------------------------------------------------------------------
    def _accumulate_fast(self, values: np.ndarray) -> SupportAccumulator:
        values = self._validate_values(values)
        n = values.size
        true_counts = np.bincount(values, minlength=self.domain_size)
        own_support = self.rng.binomial(true_counts, self.p)
        other_support = self.rng.binomial(n - true_counts, self.q_support)
        supports = (own_support + other_support).astype(float)
        return SupportAccumulator(supports, n)

    # ------------------------------------------------------------------
    # FrequencyOracle API
    # ------------------------------------------------------------------
    def accumulate(self, values: np.ndarray) -> SupportAccumulator:
        if self.mode == "fast":
            return self._accumulate_fast(values)
        a, b, reports = self.perturb(values)
        return self.count_supports(a, b, reports)

    def estimate_from_accumulator(self,
                                  accumulator: SupportAccumulator) -> np.ndarray:
        if accumulator.supports.shape != (self.domain_size,):
            raise ValueError(
                f"accumulator covers {accumulator.supports.shape[0]} candidates, "
                f"expected {self.domain_size}")
        if accumulator.n_reports < 1:
            raise ValueError("cannot estimate frequencies from zero reports")
        n = accumulator.n_reports
        return ((accumulator.supports / n - self.q_support)
                / (self.p - self.q_support))

    def estimate_frequencies(self, values: np.ndarray) -> np.ndarray:
        return self.estimate_from_accumulator(self.accumulate(values))

    def variance(self, n: int, true_frequency: float = 0.0) -> float:
        return olh_variance(self.epsilon, n)
