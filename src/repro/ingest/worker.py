"""Collector worker process: the ingest tier's per-core unit.

A worker owns one shared-memory block and one inbound queue.  In
**stream** mode it holds a private mechanism instance (seeded with the
same ``shard_seed`` convention as :func:`repro.pipeline.parallel_fit`)
whose accumulator slots are bound onto the shared block, so every
``partial_fit`` lands directly in memory the merge coordinator can
read.  In **refit** mode it appends raw rows (with their global keys)
to a shared row log instead.

Protocol over the worker's inbox queue (FIFO, one consumer):

``("batch", seq, rows)`` / ``("batch", seq, keys, rows)``
    Ingest one routed sub-batch.  ``seq`` is the tier-wide submission
    sequence number; rows arrive in submission order.
``("state",)``
    Reply on the outbox with ``("state", index, payload)`` where the
    payload carries the collector's ``shard_state`` and RNG state
    (stream) or ``None`` (refit — the rows already live in shared
    memory).  Used for snapshots.
``("stop",)``
    Exit the loop cleanly.

The worker publishes its header (report totals, batches done, last
sequence) under the per-worker lock after every batch; holding the
lock across the whole ``partial_fit`` is what gives the coordinator
batch-granular consistent cuts.

Determinism: a stream worker's accumulator state is a pure function of
``(worker seed, ordered sub-batch sequence)`` — exactly the state the
same sub-batches produce through single-process ``partial_fit`` — so
merging worker blocks reproduces the single-process shard plan bit for
bit (``tests/test_distributed_ingest.py``).
"""

from __future__ import annotations

import dataclasses
import traceback

import numpy as np

from ..baselines import CALM, HIO, LHIO, MSW, Uniform
from ..core import HDG, IHDG, ITDG, TDG
from ..datasets import Dataset
from .shared_state import (HEADER_BATCHES_DONE, HEADER_FIXED_FIELDS,
                           HEADER_LAST_SEQ, HEADER_TOTAL_REPORTS,
                           AccumulatorLayout, SharedAccumulatorBlock,
                           SharedRowBuffer)

#: Mechanism classes by paper name, importable from a freshly spawned
#: worker without touching :mod:`repro.serving` (avoids an import cycle
#: with the service layer, which itself imports this package).
MECHANISM_CLASSES: dict[str, type] = {
    "TDG": TDG,
    "HDG": HDG,
    "ITDG": ITDG,
    "IHDG": IHDG,
    "CALM": CALM,
    "HIO": HIO,
    "LHIO": LHIO,
    "MSW": MSW,
    "Uni": Uniform,
}


@dataclasses.dataclass
class WorkerSpec:
    """Everything a worker process needs to build its collector.

    Plain data (picklable) so workers start under ``fork`` and
    ``spawn`` alike.
    """

    index: int
    mode: str  # "stream" | "refit"
    mechanism: str
    epsilon: float
    seed: int | None
    mechanism_kwargs: dict
    n_attributes: int
    domain_size: int
    #: Population fed to the granularity guideline (resolved once by
    #: the tier so every worker pins the same layout as the template).
    planning_users: int | None
    #: ``partial_fit``'s total_users argument (service-level setting).
    total_users: int | None
    shm_name: str
    slots: list[tuple[str, int]] | None  # stream mode
    row_capacity: int | None  # refit mode
    #: Restored per-worker state (snapshot recovery): ``{"shard_state":
    #: ..., "rng_state": ...}`` or None for a fresh worker.
    initial_state: dict | None = None
    #: Whether to unregister the attached segment from this process's
    #: resource tracker (spawn start method only; see shared_state).
    unregister_shm: bool = False


def worker_main(spec: WorkerSpec, inbox, outbox, lock) -> None:
    """Process entry point: report fatal errors, then re-raise."""
    try:
        _run_worker(spec, inbox, outbox, lock)
    except BaseException:
        outbox.put(("error", spec.index, traceback.format_exc()))
        raise


def _build_collector(spec: WorkerSpec):
    """The worker's mechanism instance, layout pinned, state restored."""
    factory = MECHANISM_CLASSES[spec.mechanism]
    collector = factory(spec.epsilon, seed=spec.seed,
                        **spec.mechanism_kwargs)
    if spec.initial_state is not None:
        collector.load_shard_state(spec.initial_state["shard_state"])
        collector.rng.bit_generator.state = spec.initial_state["rng_state"]
        # load_shard_state restores the layout, so prepare_aggregation
        # below only validates the schema instead of re-deriving it.
    collector.prepare_aggregation(spec.n_attributes, spec.domain_size,
                                  total_users=spec.planning_users)
    return collector


def _run_stream_worker(spec: WorkerSpec, inbox, outbox, lock) -> None:
    collector = _build_collector(spec)
    layout = AccumulatorLayout(spec.slots)
    block = SharedAccumulatorBlock.attach(layout, spec.shm_name,
                                          unregister=spec.unregister_shm)
    slot_index = {key: i for i, (key, _) in enumerate(layout.slots)}
    with lock:
        collector.bind_accumulator_views(block.views())
        _publish_counts(collector, block, slot_index)
    outbox.put(("ready", spec.index))
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "batch":
            _, seq, rows = message
            batch = Dataset(rows, spec.domain_size)
            with lock:
                collector.partial_fit(batch, total_users=spec.total_users)
                _publish_counts(collector, block, slot_index)
                block.header[HEADER_BATCHES_DONE] += 1
                block.header[HEADER_LAST_SEQ] = seq
        elif kind == "state":
            with lock:
                payload = {
                    "shard_state": collector.shard_state(),
                    "rng_state": collector.rng.bit_generator.state,
                }
            outbox.put(("state", spec.index, payload))
        elif kind == "stop":
            return
        else:
            raise ValueError(f"unknown worker message {kind!r}")


def _publish_counts(collector, block: SharedAccumulatorBlock,
                    slot_index: dict[str, int]) -> None:
    counts = collector.accumulator_counts()
    header = block.header
    for key, count in counts.items():
        header[HEADER_FIXED_FIELDS + slot_index[key]] = count
    header[HEADER_TOTAL_REPORTS] = int(collector.population or 0)


def _run_refit_worker(spec: WorkerSpec, inbox, outbox, lock) -> None:
    buffer = SharedRowBuffer.attach(spec.row_capacity, spec.n_attributes,
                                    spec.shm_name,
                                    unregister=spec.unregister_shm)
    outbox.put(("ready", spec.index))
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "batch":
            _, seq, keys, rows = message
            with lock:
                buffer.append(seq, np.asarray(keys, dtype=np.int64),
                              np.asarray(rows, dtype=np.int64))
        elif kind == "state":
            # Refit rows live in shared memory; the tier reads them
            # directly, so there is no private state to capture.
            outbox.put(("state", spec.index, None))
        elif kind == "stop":
            return
        else:
            raise ValueError(f"unknown worker message {kind!r}")


def _run_worker(spec: WorkerSpec, inbox, outbox, lock) -> None:
    if spec.mode == "stream":
        _run_stream_worker(spec, inbox, outbox, lock)
    elif spec.mode == "refit":
        _run_refit_worker(spec, inbox, outbox, lock)
    else:
        raise ValueError(f"unknown worker mode {spec.mode!r}")
