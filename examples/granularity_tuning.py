"""Granularity tuning: how the Section 4.6 guideline picks g1 and g2.

This example makes the guideline tangible: it prints the raw closed-form
values and the rounded power-of-two choices across privacy budgets and
population sizes (reproducing rows of Table 2), and then verifies on one
concrete dataset that the guideline's choice is close to the best fixed
combination (the Figure 7 experiment in miniature).

Run with:  python examples/granularity_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import (HDG, WorkloadGenerator, answer_workload,
                   choose_granularities_hdg, make_dataset,
                   mean_absolute_error)
from repro.core import raw_g1, raw_g2


def print_guideline_table() -> None:
    print("guideline choices for d=6 attributes, domain c=64 "
          "(rows of the paper's Table 2):")
    print(f"{'n users':>12} {'epsilon':>8} {'raw g1':>8} {'raw g2':>8} "
          f"{'chosen (g1, g2)':>16}")
    for n_users in (100_000, 1_000_000, 10_000_000):
        for epsilon in (0.2, 1.0, 2.0):
            choice = choose_granularities_hdg(epsilon, n_users, 6, 64)
            g1_raw = raw_g1(epsilon, choice.n1, choice.m1)
            g2_raw = raw_g2(epsilon, choice.n2, choice.m2)
            print(f"{n_users:>12,} {epsilon:>8.1f} {g1_raw:>8.2f} {g2_raw:>8.2f} "
                  f"{str((choice.g1, choice.g2)):>16}")
    print()


def compare_with_fixed_choices() -> None:
    epsilon = 1.0
    rng = np.random.default_rng(3)
    dataset = make_dataset("normal", n_users=200_000, n_attributes=6,
                           domain_size=64, rng=rng)
    generator = WorkloadGenerator(6, 64, rng=np.random.default_rng(4))
    queries = generator.random_workload(100, 2, 0.5)
    truths = answer_workload(dataset, queries)

    print(f"MAE of HDG on 100 random 2-D queries (epsilon={epsilon}, "
          f"n={dataset.n_users:,}):")
    results = {}
    for label, granularities in (("guideline", None), ("(8, 2)", (8, 2)),
                                 ("(16, 4)", (16, 4)), ("(32, 8)", (32, 8)),
                                 ("(64, 16)", (64, 16))):
        mechanism = HDG(epsilon, granularities=granularities, seed=0).fit(dataset)
        mae = mean_absolute_error(mechanism.answer_workload(queries), truths)
        results[label] = mae
        chosen = (mechanism.chosen_g1, mechanism.chosen_g2)
        print(f"  {label:>10} -> g1,g2={chosen}  MAE={mae:.5f}")
    best = min(results, key=results.get)
    print(f"\nbest fixed combination here: {best}; the guideline choice is "
          f"within {results['guideline'] / results[best]:.2f}x of it.")


def main() -> None:
    print_guideline_table()
    compare_with_fixed_choices()


if __name__ == "__main__":
    main()
