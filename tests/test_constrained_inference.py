"""Tests for Hay et al. constrained inference on interval hierarchies."""

import numpy as np
import pytest

from repro.postprocess import (constrained_inference, constrained_inference_2d,
                               mean_consistency_pass, weighted_average_pass)


def _noisy_hierarchy(rng, leaves, branching, noise):
    """Build a 3-level hierarchy of noisy counts from exact leaf values."""
    level2 = leaves
    level1 = level2.reshape(-1, branching).sum(axis=1)
    level0 = level1.reshape(-1, branching).sum(axis=1)
    return [level0 + rng.normal(0, noise, level0.shape),
            level1 + rng.normal(0, noise, level1.shape),
            level2 + rng.normal(0, noise, level2.shape)]


def test_mean_consistency_makes_parents_equal_child_sums():
    levels = [np.array([1.0]), np.array([0.2, 0.3]), np.array([0.1, 0.2, 0.1, 0.3])]
    consistent = mean_consistency_pass(levels, branching=2)
    np.testing.assert_allclose(consistent[0],
                               consistent[1].reshape(1, 2).sum(axis=1))
    np.testing.assert_allclose(consistent[1],
                               consistent[2].reshape(2, 2).sum(axis=1))


def test_constrained_inference_is_consistent():
    rng = np.random.default_rng(0)
    leaves = rng.random(16)
    levels = _noisy_hierarchy(rng, leaves, branching=4, noise=0.05)
    fixed = constrained_inference(levels, branching=4)
    np.testing.assert_allclose(fixed[0], fixed[1].reshape(1, 4).sum(axis=1),
                               atol=1e-9)
    np.testing.assert_allclose(fixed[1], fixed[2].reshape(4, 4).sum(axis=1),
                               atol=1e-9)


def test_constrained_inference_reduces_leaf_error():
    rng = np.random.default_rng(1)
    leaves = rng.random(64)
    noisy_errors, fixed_errors = [], []
    for seed in range(10):
        local = np.random.default_rng(seed)
        levels = _noisy_hierarchy(local, leaves, branching=4, noise=0.2)
        fixed = constrained_inference(levels, branching=4)
        noisy_errors.append(np.abs(levels[2] - leaves).mean())
        fixed_errors.append(np.abs(fixed[2] - leaves).mean())
    assert np.mean(fixed_errors) < np.mean(noisy_errors)


def test_weighted_average_pass_preserves_shapes():
    rng = np.random.default_rng(2)
    levels = [rng.random(1), rng.random(2), rng.random(4)]
    blended = weighted_average_pass(levels, branching=2)
    assert [len(level) for level in blended] == [1, 2, 4]


def test_exact_hierarchy_is_fixed_point():
    leaves = np.array([0.1, 0.2, 0.3, 0.4])
    levels = [np.array([1.0]), np.array([0.3, 0.7]), leaves]
    fixed = constrained_inference(levels, branching=2)
    np.testing.assert_allclose(fixed[2], leaves, atol=1e-9)
    np.testing.assert_allclose(fixed[0], [1.0], atol=1e-9)


def test_invalid_hierarchy_rejected():
    with pytest.raises(ValueError):
        constrained_inference([np.zeros(1), np.zeros(3)], branching=2)
    with pytest.raises(ValueError):
        constrained_inference([np.zeros(1), np.zeros(2)], branching=1)
    with pytest.raises(ValueError):
        constrained_inference([], branching=2)


def test_2d_constrained_inference_consistency():
    rng = np.random.default_rng(3)
    branching = 2
    heights = (2, 2)
    # Exact 2-D leaf distribution plus noise at every 2-dim level.
    leaves = rng.random((4, 4))
    leaves /= leaves.sum()
    levels = {}
    for l1 in range(3):
        for l2 in range(3):
            shape = (branching ** l1, branching ** l2)
            block = leaves.reshape(shape[0], 4 // shape[0],
                                   shape[1], 4 // shape[1]).sum(axis=(1, 3))
            levels[(l1, l2)] = block + rng.normal(0, 0.05, shape)
    fixed = constrained_inference_2d(levels, branching, heights)
    # After the second pass, each level must be consistent along attribute 2:
    # the children-sum along axis 1 equals the parent at the coarser level.
    for l1 in range(3):
        for l2 in range(2):
            parents = fixed[(l1, l2)]
            children = fixed[(l1, l2 + 1)]
            sums = children.reshape(parents.shape[0], parents.shape[1],
                                    branching).sum(axis=2)
            np.testing.assert_allclose(parents, sums, atol=1e-8)


def test_2d_constrained_inference_reduces_error():
    rng = np.random.default_rng(4)
    branching = 2
    leaves = rng.random((8, 8))
    leaves /= leaves.sum()
    noisy_err, fixed_err = [], []
    for seed in range(5):
        local = np.random.default_rng(seed)
        levels = {}
        for l1 in range(4):
            for l2 in range(4):
                shape = (branching ** l1, branching ** l2)
                block = leaves.reshape(shape[0], 8 // shape[0],
                                       shape[1], 8 // shape[1]).sum(axis=(1, 3))
                levels[(l1, l2)] = block + local.normal(0, 0.05, shape)
        fixed = constrained_inference_2d(levels, branching, (3, 3))
        noisy_err.append(np.abs(levels[(3, 3)] - leaves).mean())
        fixed_err.append(np.abs(fixed[(3, 3)] - leaves).mean())
    assert np.mean(fixed_err) < np.mean(noisy_err)
