"""Mixed typed workloads through the runner, metrics, serving and CLI.

Covers the layers above the planner: experiment configuration and
workload generation of mixed kinds, per-kind error scoring, the typed
JSON wire format of ``POST /query``, the service snapshot round trip
with mixed workloads, and the CLI's ``--query-kinds`` / ``--version``
surface.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import make_dataset, package_version
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.cache import CellResult
from repro.experiments.executor import validate_equal_workload_lengths
from repro.metrics import per_kind_errors, result_error, workload_result_errors
from repro.queries import (QUERY_KINDS, MarginalQuery, PointQuery, Predicate,
                           PredicateCountQuery, RangeQuery, ScalarResult,
                           TopKQuery, WorkloadGenerator, evaluate_query,
                           evaluate_workload, query_kind)
from repro.serving import (QueryService, build_server, queries_from_wire,
                           query_from_wire, query_to_wire)

MIXED = ("range", "marginal", "point", "count", "topk")


@pytest.fixture(scope="module")
def mixed_dataset():
    return make_dataset("normal", 2_000, 3, 16, rng=np.random.default_rng(4))


@pytest.fixture(scope="module")
def mixed_service(mixed_dataset):
    service = QueryService("HDG", 1.0, seed=2,
                           domain_size=mixed_dataset.domain_size)
    service.ingest(mixed_dataset)
    service.refinalize()
    return service


def _serve(service):
    server = build_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, server.server_address[1]


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
def test_mixed_workload_cycles_kinds_round_robin():
    generator = WorkloadGenerator(4, 16, rng=np.random.default_rng(0))
    workload = generator.mixed_workload(12, 2, 0.5, query_kinds=MIXED)
    assert [query_kind(q) for q in workload[:5]] == list(MIXED)
    assert [query_kind(q) for q in workload[5:10]] == list(MIXED)
    assert len(workload) == 12


def test_mixed_workload_caps_table_dimension():
    generator = WorkloadGenerator(4, 8, rng=np.random.default_rng(0))
    workload = generator.mixed_workload(10, 3, 0.5,
                                        query_kinds=("marginal", "topk"))
    for query in workload:
        assert query.dimension == 2  # min(dimension, 2) by default
    deep = generator.mixed_workload(2, 3, 0.5, query_kinds=("marginal",),
                                    table_dimension=3)
    assert deep[0].dimension == 3


def test_mixed_workload_names_bad_kind_and_position():
    generator = WorkloadGenerator(4, 8, rng=np.random.default_rng(0))
    with pytest.raises(ValueError, match="unknown query kind 'nope' at "
                                         "position 1"):
        generator.mixed_workload(4, 2, 0.5, query_kinds=("range", "nope"))
    with pytest.raises(ValueError, match="at least one kind"):
        generator.mixed_workload(4, 2, 0.5, query_kinds=())


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_result_error_scales_per_kind(mixed_dataset):
    point = PointQuery(((0, 3),))
    truth = evaluate_query(mixed_dataset, point)
    estimate = ScalarResult(point, truth.value + 0.01)
    assert result_error(estimate, truth) == pytest.approx(0.01)

    count = PredicateCountQuery((Predicate(0, 0, 7),))
    truth = evaluate_query(mixed_dataset, count)
    estimate = ScalarResult(count, truth.value + 20.0,
                            population=truth.population)
    # Count errors are reported back on the frequency scale.
    assert result_error(estimate, truth) == pytest.approx(
        20.0 / mixed_dataset.n_users)

    marginal = MarginalQuery((0, 1))
    truth = evaluate_query(mixed_dataset, marginal)
    estimate = evaluate_query(mixed_dataset, marginal)
    estimate.values = truth.values + 0.001
    assert result_error(estimate, truth) == pytest.approx(0.001)


def test_result_error_rejects_mismatched_kinds(mixed_dataset):
    point = evaluate_query(mixed_dataset, PointQuery(((0, 3),)))
    marginal = evaluate_query(mixed_dataset, MarginalQuery((0,)))
    with pytest.raises(TypeError, match="cannot score"):
        result_error(point, marginal)
    # Same result class but different query kind (range vs count) is
    # also a misalignment, not a scorable pair.
    range_truth = evaluate_query(mixed_dataset,
                                 RangeQuery((Predicate(0, 0, 3),)))
    count_truth = evaluate_query(mixed_dataset,
                                 PredicateCountQuery((Predicate(0, 0, 3),)))
    with pytest.raises(TypeError, match="range estimate against a count"):
        result_error(range_truth, count_truth)


def test_topk_error_scores_against_true_distribution(mixed_dataset):
    query = TopKQuery((0, 1), k=3)
    truth = evaluate_query(mixed_dataset, query)
    # A perfect estimate has zero error even if it dropped the table.
    perfect = evaluate_query(mixed_dataset, query)
    perfect.distribution = None
    assert result_error(perfect, truth) == 0.0
    with pytest.raises(ValueError, match="full marginal table"):
        result_error(perfect, perfect)


def test_per_kind_errors_partitions_the_workload(mixed_dataset):
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(1))
    workload = generator.mixed_workload(10, 2, 0.5, query_kinds=MIXED)
    truths = evaluate_workload(mixed_dataset, workload)
    errors = workload_result_errors(truths, truths)
    assert np.array_equal(errors, np.zeros(10))
    by_kind = per_kind_errors(workload, errors)
    assert set(by_kind) == set(MIXED)
    with pytest.raises(ValueError, match="estimates"):
        workload_result_errors(truths[:-1], truths)


# ----------------------------------------------------------------------
# Experiment configuration + runner
# ----------------------------------------------------------------------
def test_config_validates_query_kinds():
    with pytest.raises(ValueError, match="unknown query kind 'foo' at "
                                         "position 1"):
        ExperimentConfig(query_kinds=("range", "foo")).validate()
    with pytest.raises(ValueError, match="at least one kind"):
        ExperimentConfig(query_kinds=()).validate()
    with pytest.raises(ValueError, match="top_k"):
        ExperimentConfig(top_k=0).validate()
    assert not ExperimentConfig().is_mixed_workload
    assert ExperimentConfig(query_kinds=MIXED).is_mixed_workload


def test_run_experiment_scores_mixed_workloads_per_kind():
    config = ExperimentConfig(dataset="normal", n_users=2_000,
                              n_attributes=3, domain_size=8, n_queries=10,
                              n_repeats=2, methods=("Uni", "TDG"),
                              query_kinds=MIXED)
    result = run_experiment(config)
    for method in config.methods:
        method_result = result.methods[method]
        assert method_result.per_kind_mae is not None
        assert set(method_result.per_kind_mae) == set(MIXED)
        for summary in method_result.per_kind_mae.values():
            assert summary.n_runs == 2
            assert np.isfinite(summary.mean)
        assert method_result.per_query_errors.shape == (10,)


def test_mixed_config_with_all_range_workload_still_runs():
    """A mixed query_kinds config whose tiny workload never reaches the
    non-range kinds must score through the flat path, not crash on a
    truths/estimates shape mismatch."""
    config = ExperimentConfig(dataset="normal", n_users=1_000,
                              n_attributes=3, domain_size=8, n_queries=1,
                              methods=("Uni",),
                              query_kinds=("range", "marginal"))
    result = run_experiment(config)
    assert result.methods["Uni"].per_kind_mae is None
    assert np.isfinite(result.methods["Uni"].mae.mean)


def test_range_only_runs_keep_flat_scoring():
    config = ExperimentConfig(dataset="normal", n_users=1_000,
                              n_attributes=3, domain_size=8, n_queries=5,
                              methods=("Uni",))
    result = run_experiment(config)
    assert result.methods["Uni"].per_kind_mae is None


def test_validate_equal_workload_lengths_names_repeat_and_kinds():
    config = ExperimentConfig(methods=("Uni",), n_repeats=2)
    cells = {
        (0, "Uni"): CellResult("Uni", 0, 0.0, np.zeros(3),
                               query_kinds=["range", "range", "marginal"]),
        (1, "Uni"): CellResult("Uni", 1, 0.0, np.zeros(2),
                               query_kinds=["range", "marginal"]),
    }
    with pytest.raises(ValueError) as excinfo:
        validate_equal_workload_lengths(config, cells)
    message = str(excinfo.value)
    assert "repeat 0: 3 queries (1 marginal, 2 range)" in message
    assert "repeat 1: 2 queries (1 marginal, 1 range)" in message
    assert "repeat 1 first disagrees with repeat 0" in message


def test_validate_equal_workload_lengths_rejects_kind_misalignment():
    """Same-length workloads whose kinds differ position-wise are named."""
    config = ExperimentConfig(methods=("Uni",), n_repeats=2)
    cells = {
        (0, "Uni"): CellResult("Uni", 0, 0.0, np.zeros(2),
                               query_kinds=["range", "marginal"]),
        (1, "Uni"): CellResult("Uni", 1, 0.0, np.zeros(2),
                               query_kinds=["marginal", "range"]),
    }
    with pytest.raises(ValueError, match="query 0 is a marginal query in "
                                         "repeat 1 but a range query in "
                                         "repeat 0"):
        validate_equal_workload_lengths(config, cells)


def test_validate_equal_workload_lengths_catches_pure_range_vs_typed():
    """A kind-less (pure range) repetition still participates in the
    position-wise kind comparison."""
    config = ExperimentConfig(methods=("Uni",), n_repeats=2)
    cells = {
        (0, "Uni"): CellResult("Uni", 0, 0.0, np.zeros(2),
                               query_kinds=["range", "marginal"]),
        (1, "Uni"): CellResult("Uni", 1, 0.0, np.zeros(2)),  # all ranges
    }
    with pytest.raises(ValueError, match="query 1 is a range query in "
                                         "repeat 1 but a marginal query in "
                                         "repeat 0"):
        validate_equal_workload_lengths(config, cells)


def test_validate_equal_workload_lengths_fingers_the_minority_repeat():
    """The anomalous repetition is named even when it is the shorter one."""
    config = ExperimentConfig(methods=("Uni",), n_repeats=3)
    cells = {(repeat, "Uni"): CellResult("Uni", repeat, 0.0,
                                         np.zeros(12 if repeat < 2 else 10))
             for repeat in range(3)}
    with pytest.raises(ValueError, match="repeat 2 first disagrees with "
                                         "repeat 0"):
        validate_equal_workload_lengths(config, cells)


def test_cell_result_round_trips_kind_fields():
    cell = CellResult("TDG", 1, 0.5, np.array([0.1, 0.9]),
                      query_kinds=["range", "topk"],
                      per_kind_mae={"range": 0.1, "topk": 0.9})
    restored = CellResult.from_dict(json.loads(json.dumps(cell.to_dict())))
    assert restored.query_kinds == ["range", "topk"]
    assert restored.per_kind_mae == {"range": 0.1, "topk": 0.9}
    plain = CellResult.from_dict(json.loads(json.dumps(
        CellResult("Uni", 0, 0.1, np.array([0.1])).to_dict())))
    assert plain.query_kinds is None and plain.per_kind_mae is None


# ----------------------------------------------------------------------
# Serving: wire format, HTTP, snapshot round trip
# ----------------------------------------------------------------------
def test_wire_round_trips_every_kind():
    queries = [
        RangeQuery((Predicate(0, 1, 5), Predicate(2, 0, 3))),
        MarginalQuery((0, 2)),
        PointQuery(((1, 4), (2, 0))),
        PredicateCountQuery((Predicate(0, 0, 7),), population=123),
        PredicateCountQuery((Predicate(1, 2, 3),)),
        TopKQuery((0, 1), k=7),
    ]
    wires = [query_to_wire(query) for query in queries]
    assert queries_from_wire(json.loads(json.dumps(wires))) == queries


def test_wire_accepts_dict_assignment_and_rejects_unknown_type():
    query = query_from_wire({"type": "point", "assignment": {"0": 3, "2": 1}})
    assert query == PointQuery(((0, 3), (2, 1)))
    with pytest.raises(ValueError, match="unknown query type 'nope'"):
        query_from_wire({"type": "nope"})


def test_http_query_serves_typed_results(mixed_service, mixed_dataset):
    server, port = _serve(mixed_service)
    try:
        document = _post(port, "/query", {"queries": [
            {"predicates": [[0, 0, 7]]},
            {"type": "marginal", "attributes": [0, 1]},
            {"type": "point", "assignment": [[0, 3], [2, 5]]},
            {"type": "count", "predicates": [[1, 2, 9]]},
            {"type": "topk", "attributes": [0, 1], "k": 3},
        ]})
        assert document["count"] == 5
        kinds = [result["type"] for result in document["results"]]
        assert kinds == ["range", "marginal", "point", "count", "topk"]
        assert "answers" not in document  # non-scalar results present
        marginal = document["results"][1]
        table = np.asarray(marginal["values"])
        assert table.shape == (16, 16)
        count = document["results"][3]
        assert count["population"] == mixed_dataset.n_users
        topk = document["results"][4]
        assert len(topk["items"]) == 3
        values = [item["value"] for item in topk["items"]]
        assert values == sorted(values, reverse=True)

        # Scalar-only workloads still carry the flat answers list.
        scalars = _post(port, "/query", {"queries": [
            {"predicates": [[0, 0, 7]]},
            {"type": "point", "assignment": [[1, 2]]},
        ]})
        assert len(scalars["answers"]) == 2
        assert scalars["answers"][0] == scalars["results"][0]["value"]
    finally:
        server.shutdown()
        server.server_close()


def test_healthz_reports_package_version(mixed_service):
    server, port = _serve(mixed_service)
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30) as response:
            health = json.loads(response.read())
        assert health["version"] == package_version()
        assert health["status"] == "ok"
    finally:
        server.shutdown()
        server.server_close()


def test_service_snapshot_restores_mixed_answers_bitwise(mixed_service,
                                                         tmp_path):
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(9))
    mixed = generator.mixed_workload(10, 2, 0.5, query_kinds=MIXED)
    wire = [query_to_wire(query) for query in mixed]
    info = mixed_service.save_snapshot(str(tmp_path / "store"))
    restored = QueryService.from_snapshot(str(tmp_path / "store"),
                                          version=info.version)
    for _ in range(2):
        live = mixed_service.query_wire(wire)
        again = restored.query_wire(wire)
        assert json.dumps(live, sort_keys=True) == json.dumps(again,
                                                              sort_keys=True)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_version_flag(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {package_version()}" in capsys.readouterr().out


def test_cli_run_with_mixed_kinds(capsys):
    from repro.cli import main
    code = main(["run", "--dataset", "normal", "--n-users", "1500",
                 "--n-attributes", "3", "--domain-size", "8",
                 "--n-queries", "10", "--methods", "Uni", "TDG",
                 "--query-kinds", *MIXED])
    assert code == 0
    output = capsys.readouterr().out
    assert "kinds=range,marginal,point,count,topk" in output
    assert "per-kind:" in output
    for kind in MIXED:
        assert f"{kind}=" in output


def test_query_kinds_constant_matches_cli_surface():
    assert MIXED == QUERY_KINDS
