"""Crash-recovery tests: the write-ahead ingest log, pinned bitwise.

The scenario: a serving process ingests a batch, snapshots, ingests
more batches, and dies *mid-ingest* — after a batch's write-ahead-log
append became durable but before the in-memory apply / finalize
happened.  A restarted process recovers the tenant from the newest
snapshot plus the pending log tail, and from then on its answers must
be **bitwise identical** to a process that never crashed.

The property is pinned for TDG and HDG (shardable: recovery restores
the collector's accumulators and RNG stream, replay re-draws the same
randomness) and for LHIO under ``ingest_mode="refit"`` (recovery
restores the buffered raw rows; refitting a fresh same-seeded instance
is deterministic in (seed, rows), and LHIO's answer-time noise draws
come from the refitted clone's RNG stream, identical in both runs).

One test also kills a real ``repro serve`` process with SIGKILL
between the WAL append and the finalize, then recovers from the
SQLite file it left behind.

The ``chaos``-marked tests extend the scenario to the distributed
ingest tier: SIGKILL one *collector worker* mid-ingest.  The tier
fails the in-flight batch fast (so the manager discards its
already-durable WAL entry — the log never holds a batch the tier only
partially absorbed), and a restarted process recovers from snapshot +
WAL replay bitwise on both storage backends.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.serving import TenantManager
from repro.storage import BACKENDS, DirectoryBackend, SQLiteBackend

DOMAIN = 8

#: (mechanism, service config) cases the recovery property is pinned
#: for: two shardable stream-mode mechanisms and one refit-mode
#: non-shardable mechanism.
CASES = {
    "TDG": {"mechanism": "TDG", "epsilon": 1.0, "seed": 13,
            "domain_size": DOMAIN},
    "HDG": {"mechanism": "HDG", "epsilon": 1.0, "seed": 13,
            "domain_size": DOMAIN},
    "LHIO": {"mechanism": "LHIO", "epsilon": 1.0, "seed": 13,
             "domain_size": DOMAIN, "ingest_mode": "refit"},
}

#: A batch of two wire workloads: one 2-dim range query, then two
#: 1-dim range queries.
WORKLOAD = [
    [[[0, 0, 3], [1, 2, 5]]],
    [[[0, 1, 6]], [[1, 0, 2]]],
]


def _rows(seed: int, n: int = 50) -> list:
    rng = np.random.default_rng(seed)
    return rng.integers(0, DOMAIN, size=(n, 2)).tolist()


def _open(kind, tmp_path, tag):
    if kind == "json":
        return DirectoryBackend(tmp_path / f"{tag}-store")
    return SQLiteBackend(tmp_path / f"{tag}.db")


def _answers(service) -> list:
    return service.query_wire_batch(WORKLOAD)["workloads"]


@pytest.mark.parametrize("mechanism", sorted(CASES))
@pytest.mark.parametrize("kind", sorted(BACKENDS))
def test_crash_mid_ingest_recovers_bitwise(kind, mechanism, tmp_path):
    config = CASES[mechanism]

    # Reference: an uninterrupted run.
    reference_backend = _open(kind, tmp_path, "ref")
    reference = TenantManager(reference_backend, default_config=config)
    reference.ingest("default", _rows(0))
    reference.save_snapshot("default")
    reference.ingest("default", _rows(1))
    reference.ingest("default", _rows(2))
    reference.refinalize("default")
    expected = _answers(reference.service("default"))
    reference_backend.close()

    # Crashed: same sequence, but the process dies mid-ingest — the
    # last two batches' WAL appends are durable, the apply/finalize
    # never ran (simulated by appending directly to the backend).
    backend = _open(kind, tmp_path, "crash")
    crashed = TenantManager(backend, default_config=config)
    crashed.ingest("default", _rows(0))
    crashed.save_snapshot("default")
    backend.append_ingest("default", _rows(1), DOMAIN)
    backend.append_ingest("default", _rows(2), DOMAIN)
    del crashed  # the process is gone; only the backend's files remain
    backend.close()

    # Restart: recovery restores the snapshot and replays the tail.
    backend = _open(kind, tmp_path, "crash")
    recovered = TenantManager(backend)
    service = recovered.service("default")
    assert service.reports_ingested == 150
    recovered.refinalize("default")
    assert _answers(service) == expected

    # Recovery is idempotent: snapshot now, restart again, same answers.
    recovered.save_snapshot("default")
    backend.close()
    backend = _open(kind, tmp_path, "crash")
    again = TenantManager(backend)
    assert _answers(again.service("default")) == expected
    backend.close()


@pytest.mark.parametrize("mechanism", sorted(CASES))
def test_crash_before_any_snapshot_recovers_from_log_alone(mechanism,
                                                           tmp_path):
    """No snapshot yet: recovery rebuilds from the config + full log."""
    config = CASES[mechanism]
    reference_backend = SQLiteBackend(tmp_path / "ref.db")
    reference = TenantManager(reference_backend, default_config=config)
    reference.ingest("default", _rows(0))
    reference.refinalize("default")
    expected = _answers(reference.service("default"))
    reference_backend.close()

    backend = SQLiteBackend(tmp_path / "crash.db")
    crashed = TenantManager(backend, default_config=config)
    backend.append_ingest("default", _rows(0), DOMAIN)
    del crashed
    backend.close()

    backend = SQLiteBackend(tmp_path / "crash.db")
    recovered = TenantManager(backend)
    recovered.refinalize("default")
    assert _answers(recovered.service("default")) == expected
    backend.close()


@pytest.mark.chaos
@pytest.mark.parametrize("kind", sorted(BACKENDS))
def test_sigkill_collector_worker_recovers_bitwise(kind, tmp_path):
    """Kill one ingest-tier worker process mid-stream; the failed
    batch's WAL entry is discarded and a restart replays the surviving
    log tail bitwise."""
    from repro.ingest import IngestWorkerError

    config = {**CASES["TDG"], "ingest_workers": 2}

    # Reference: an uninterrupted distributed run over the batches
    # that will survive the crash (batch 2's ingest fails and its WAL
    # entry is discarded, so it is part of neither history).
    reference_backend = _open(kind, tmp_path, "ref")
    reference = TenantManager(reference_backend, default_config=config)
    reference.ingest("default", _rows(0))
    reference.save_snapshot("default")
    reference.ingest("default", _rows(1))
    reference.refinalize("default")
    expected = _answers(reference.service("default"))
    reference.close()
    reference_backend.close()

    backend = _open(kind, tmp_path, "crash")
    crashed = TenantManager(backend, default_config=config)
    crashed.ingest("default", _rows(0))
    crashed.save_snapshot("default")
    crashed.ingest("default", _rows(1))

    # SIGKILL one collector worker: no cleanup, no atexit — the shared
    # memory block survives (the parent owns it) but the worker's
    # inbox will never drain again.
    victim = crashed.service("default")._tier.worker_pids()[0]
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        alive = crashed.service("default").status()["ingest_tier"]
        if not all(worker["alive"] for worker in alive["workers"]):
            break
        time.sleep(0.05)

    # The next ingest fails fast instead of hanging; the manager
    # discards the batch's already-durable WAL entry, so recovery will
    # not replay a batch the tier never absorbed.
    with pytest.raises(IngestWorkerError):
        crashed.ingest("default", _rows(2))
    assert backend.ingest_log_depth("default") == 1  # batch 1 only
    del crashed  # the process is gone; only the backend's files remain
    backend.close()

    # Restart: snapshot restore rebuilds a fresh 2-worker tier (same
    # worker states + key base), WAL replay re-routes batch 1
    # identically, answers match the uninterrupted run bitwise.
    backend = _open(kind, tmp_path, "crash")
    recovered = TenantManager(backend)
    assert not recovered.quarantined_tenants()
    service = recovered.service("default")
    assert service.reports_ingested == 100
    recovered.refinalize("default")
    assert _answers(service) == expected
    recovered.close()
    backend.close()


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode())
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def test_sigkill_mid_ingest_recovers_bitwise(tmp_path):
    """Kill a real serve process after WAL appends, before finalize;
    restart from the SQLite file and compare answers bitwise."""
    config = CASES["TDG"]
    reference_backend = SQLiteBackend(tmp_path / "ref.db")
    reference = TenantManager(reference_backend, default_config=config)
    reference.ingest("default", _rows(0))
    reference.save_snapshot("default")
    reference.ingest("default", _rows(1))
    reference.refinalize("default")
    expected = _answers(reference.service("default"))
    reference_backend.close()

    db = tmp_path / "crash.db"
    port_file = tmp_path / "port.txt"
    # A tiny launcher that reports its bound port, so the test can talk
    # to the server without racing on a fixed port.
    script = (
        "import sys, pathlib\n"
        "from repro.cli import build_parser\n"
        "from repro.serving import TenantManager, build_server, serve\n"
        "from repro.storage import open_backend\n"
        f"backend = open_backend('sqlite', {str(db)!r})\n"
        "manager = TenantManager(backend, default_config="
        f"{config!r})\n"
        "server = build_server(tenant_manager=manager)\n"
        f"pathlib.Path({str(port_file)!r}).write_text("
        "str(server.server_address[1]))\n"
        "server.serve_forever()\n")
    env = {**os.environ,
           "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
    process = subprocess.Popen([sys.executable, "-c", script], env=env)
    try:
        deadline = time.monotonic() + 30
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        port = int(port_file.read_text())
        _post(port, "/ingest", {"rows": _rows(0)})
        _post(port, "/snapshot", {})
        receipt = _post(port, "/ingest", {"rows": _rows(1)})
        assert receipt["wal_seq"] == 2
    finally:
        # SIGKILL: no cleanup, no atexit — exactly a crash. The WAL
        # append for batch 2 is durable; no finalize ever ran.
        process.kill()
        process.wait(timeout=30)

    backend = SQLiteBackend(db)
    recovered = TenantManager(backend)
    service = recovered.service("default")
    assert service.reports_ingested == 100
    recovered.refinalize("default")
    assert _answers(service) == expected
    backend.close()
