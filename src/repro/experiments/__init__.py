"""Experiment harness: configs, executor, runner and per-figure drivers."""

from .cache import CellResult, ResultCache, cell_key, clear_memos
from .config import (DEFAULT_METHODS, METHODS_WITHOUT_HIO, ExperimentConfig)
from .executor import evaluate_cell, execute_grid
from .runner import (MECHANISM_FACTORIES, ExperimentResult, MethodResult,
                     SweepResult, build_mechanism, run_experiment,
                     sweep_parameter)
from . import appendix, figures

__all__ = [
    "DEFAULT_METHODS",
    "METHODS_WITHOUT_HIO",
    "CellResult",
    "ExperimentConfig",
    "ExperimentResult",
    "MECHANISM_FACTORIES",
    "MethodResult",
    "ResultCache",
    "SweepResult",
    "appendix",
    "build_mechanism",
    "cell_key",
    "clear_memos",
    "evaluate_cell",
    "execute_grid",
    "figures",
    "run_experiment",
    "sweep_parameter",
]
