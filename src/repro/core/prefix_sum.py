"""Prefix-sum indexes for O(1) range answering (the batch query engine).

Phase 3 originally answered every range query by looping over grid cells
in Python.  This module precomputes summed-area tables (2-D prefix sums)
so that a range answer becomes a constant number of corner lookups:

* :class:`PrefixIndex1D` — answers 1-D range queries over a
  :class:`~repro.core.grid.Grid1D` frequency vector under the uniformity
  assumption.  The value-level prefix ``V(x)`` (mass strictly below value
  ``x``) is ``P[x // w] + (x mod w) * f[x // w] / w`` where ``P`` is the
  cell prefix sum, so an answer is ``V(high + 1) - V(low)``.
* :class:`PrefixIndex2D` — the 2-D analogue for
  :class:`~repro.core.grid.Grid2D` under the uniformity assumption (the
  TDG rule).  The bilinear value prefix ``D(x, y)`` decomposes into a
  cell summed-area term, two partial-band terms and a corner term, each a
  single table lookup.
* :class:`SummedAreaTable` — a plain 2-D prefix sum over an arbitrary
  value-level matrix; used for the HDG response matrices, where partially
  covered cells contribute exact response-matrix mass.

All three evaluate vectorised over arrays of interval endpoints, which is
what makes workload batching (thousands of queries per call) cheap.  The
answers are algebraically identical to the legacy cell loops; the test
suite asserts agreement to 1e-9 on randomised inputs.
"""

from __future__ import annotations

import numpy as np


def prefix_sum_1d(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums: ``P[i] = sum(values[:i])``, length ``n + 1``."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("prefix_sum_1d expects a 1-D array")
    out = np.zeros(values.size + 1)
    np.cumsum(values, out=out[1:])
    return out


def summed_area_table(matrix: np.ndarray) -> np.ndarray:
    """Exclusive 2-D prefix sums: ``T[i, j] = matrix[:i, :j].sum()``.

    The returned table has one extra leading row and column of zeros so
    that rectangle sums need no boundary special-casing.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("summed_area_table expects a 2-D array")
    table = np.zeros((matrix.shape[0] + 1, matrix.shape[1] + 1))
    np.cumsum(matrix, axis=0, out=table[1:, 1:])
    np.cumsum(table[1:, 1:], axis=1, out=table[1:, 1:])
    return table


def _rect_sum(table: np.ndarray, row_low, row_high, col_low,
              col_high) -> np.ndarray:
    """Inclusive four-corner rectangle sums over an exclusive prefix table.

    All four bounds broadcast; rectangles with ``low > high`` in either
    axis contribute 0.
    """
    rl = np.asarray(row_low, dtype=np.int64)
    rh = np.asarray(row_high, dtype=np.int64)
    cl = np.asarray(col_low, dtype=np.int64)
    ch = np.asarray(col_high, dtype=np.int64)
    empty = (rl > rh) | (cl > ch)
    rl, rh, cl, ch = (np.where(empty, 0, a) for a in (rl, rh, cl, ch))
    total = (table[rh + 1, ch + 1] - table[rl, ch + 1]
             - table[rh + 1, cl] + table[rl, cl])
    return np.where(empty, 0.0, total)


class SummedAreaTable:
    """O(1) inclusive rectangle sums over a fixed value-level matrix."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        self.shape = matrix.shape
        self._table = summed_area_table(matrix)

    def rect_sum(self, row_low, row_high, col_low, col_high) -> np.ndarray:
        """Sum over the inclusive rectangle(s) ``[row_low..row_high] x [col_low..col_high]``."""
        return _rect_sum(self._table, row_low, row_high, col_low, col_high)


class PrefixIndex1D:
    """Uniformity-rule 1-D range answering in O(1) per query.

    Parameters
    ----------
    frequencies:
        Cell frequency vector of length ``g``.
    cell_width:
        Number of domain values per cell ``w`` (domain size is ``g * w``).
    """

    def __init__(self, frequencies: np.ndarray, cell_width: int):
        frequencies = np.asarray(frequencies, dtype=float)
        self.cell_width = int(cell_width)
        self.domain_size = frequencies.size * self.cell_width
        self._cell_prefix = prefix_sum_1d(frequencies)
        # One trailing zero cell so position c (one past the domain) indexes
        # safely with a zero fractional part.
        self._freq_padded = np.concatenate((frequencies, [0.0]))

    def value_prefix(self, positions) -> np.ndarray:
        """Mass strictly below each position (positions in ``[0, c]``)."""
        x = np.asarray(positions, dtype=np.int64)
        cell, frac = np.divmod(x, self.cell_width)
        return (self._cell_prefix[cell]
                + frac * self._freq_padded[cell] / self.cell_width)

    def answer(self, lows, highs) -> np.ndarray:
        """Vectorised inclusive range answers ``[low, high]``."""
        return (self.value_prefix(np.asarray(highs, dtype=np.int64) + 1)
                - self.value_prefix(lows))


class PrefixIndex2D:
    """Uniformity-rule 2-D range answering in O(1) per query.

    Precomputes the cell summed-area table plus the row/column partial
    cumulative sums needed by the bilinear value prefix

    ``D(x, y) = S[i, j] + fx/w * R[i, j] + fy/w * C[i, j] + fx*fy/w^2 * f[i, j]``

    with ``i = x // w``, ``fx = x mod w`` (and likewise ``j``/``fy``), so a
    range answer is the usual four-corner difference of ``D``.
    """

    def __init__(self, frequencies: np.ndarray, cell_width: int):
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.ndim != 2:
            raise ValueError("PrefixIndex2D expects a 2-D frequency array")
        g_rows, g_cols = frequencies.shape
        self.cell_width = int(cell_width)
        self._cell_sat = summed_area_table(frequencies)
        # Partial sums along each axis, zero-padded so cell index g is valid.
        self._row_cum = np.zeros((g_rows + 1, g_cols + 1))
        np.cumsum(frequencies, axis=1, out=self._row_cum[:g_rows, 1:])
        self._col_cum = np.zeros((g_rows + 1, g_cols + 1))
        np.cumsum(frequencies, axis=0, out=self._col_cum[1:, :g_cols])
        self._freq_padded = np.zeros((g_rows + 1, g_cols + 1))
        self._freq_padded[:g_rows, :g_cols] = frequencies

    def value_prefix(self, xs, ys) -> np.ndarray:
        """Bilinear mass strictly below ``(x, y)`` (positions in ``[0, c]``)."""
        x = np.asarray(xs, dtype=np.int64)
        y = np.asarray(ys, dtype=np.int64)
        w = self.cell_width
        i, fx = np.divmod(x, w)
        j, fy = np.divmod(y, w)
        return (self._cell_sat[i, j]
                + fx * self._row_cum[i, j] / w
                + fy * self._col_cum[i, j] / w
                + fx * fy * self._freq_padded[i, j] / (w * w))

    def answer_uniform(self, row_lows, row_highs, col_lows, col_highs) -> np.ndarray:
        """Vectorised 2-D range answers under the uniformity assumption."""
        rl = np.asarray(row_lows, dtype=np.int64)
        rh = np.asarray(row_highs, dtype=np.int64) + 1
        cl = np.asarray(col_lows, dtype=np.int64)
        ch = np.asarray(col_highs, dtype=np.int64) + 1
        return (self.value_prefix(rh, ch) - self.value_prefix(rl, ch)
                - self.value_prefix(rh, cl) + self.value_prefix(rl, cl))

    def cell_block_sum(self, row_low, row_high, col_low, col_high) -> np.ndarray:
        """Inclusive *cell-coordinate* block sums (empty blocks yield 0)."""
        return _rect_sum(self._cell_sat, row_low, row_high, col_low, col_high)


def full_cell_range(lows: np.ndarray, highs: np.ndarray,
                    cell_width: int) -> tuple[np.ndarray, np.ndarray]:
    """Cell-coordinate range ``[first, last]`` of fully covered cells.

    ``first > last`` when the interval covers no cell entirely.
    """
    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    first = -(-lows // cell_width)            # ceil division
    last = (highs + 1) // cell_width - 1
    return first, last
