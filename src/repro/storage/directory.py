"""Directory-of-JSON storage backend.

This is the original PR-4 snapshot layout — a directory of
``snapshot-NNNNNN.json`` documents managed by
:class:`~repro.serving.SnapshotStore` — refactored behind the
:class:`~repro.storage.StorageBackend` contract and extended with the
two things the contract adds: a tenant registry and a write-ahead
ingest log.

Layout::

    root/
      snapshot-000001.json          # the *default* tenant's snapshots
      snapshot-000001.meta.json     # sidecar listing metadata
      tenants.json                  # tenant registry
      wal/
        default/entry-00000001.json # write-ahead ingest-log entries
      tenants/
        <name>/snapshot-000001.json # other tenants' snapshots
        <name>/...

The default tenant's snapshots live at the *root* so a store written
by earlier releases (plain ``SnapshotStore`` directories) opens as a
backend whose default tenant already has history — ``repro serve
--backend json --snapshot-dir old-store`` restores it.  Sidecar
``.meta.json`` records carry the listing metadata (size, creation
time, mechanism, ingest-log position); snapshots written before the
sidecars existed fall back to ``stat`` and report ``wal_seq 0``.

Every durable write goes through the same discipline as
``SnapshotStore.save``: private temp file, fsync, atomic
rename/link, fsync of the containing directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path

import logging

from ..serving.snapshot import SnapshotStore, fsync_directory
from .base import (DEFAULT_TENANT, CorruptEntryError, IngestLogEntry,
                   SnapshotRecord, StorageBackend, TenantExistsError,
                   TenantRecord, UnknownTenantError,
                   snapshot_meta_from_document, utc_now,
                   validate_tenant_name)

logger = logging.getLogger("repro.storage")

#: Registry file name at the backend root.
TENANTS_FILE = "tenants.json"
TENANTS_FORMAT = "repro.tenants"
TENANTS_VERSION = 1

_WAL_TEMPLATE = "entry-{seq:08d}.json"
_WAL_GLOB = "entry-*.json"


def _atomic_write_json(path: Path, document: dict) -> None:
    """Write ``document`` at ``path`` durably (temp + fsync + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(json.dumps(document))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except FileNotFoundError:
            pass
        raise
    fsync_directory(path.parent)


class DirectoryBackend(StorageBackend):
    """Tenanted snapshots + write-ahead log over a plain directory.

    Parameters
    ----------
    root:
        The store directory (created lazily).  A pre-existing
        single-tenant ``SnapshotStore`` directory is adopted as the
        default tenant's history.
    """

    name = "json"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._tenants_path = self.root / TENANTS_FILE

    # ------------------------------------------------------------------
    # Tenant registry
    # ------------------------------------------------------------------
    def _read_registry(self) -> dict:
        if not self._tenants_path.exists():
            return {}
        document = json.loads(self._tenants_path.read_text())
        if document.get("format") != TENANTS_FORMAT:
            raise ValueError(f"{self._tenants_path} is not a tenant "
                             "registry file")
        return document.get("tenants", {})

    def _write_registry(self, tenants: dict) -> None:
        _atomic_write_json(self._tenants_path, {
            "format": TENANTS_FORMAT,
            "version": TENANTS_VERSION,
            "tenants": tenants,
        })

    def create_tenant(self, name: str, config: dict) -> TenantRecord:
        validate_tenant_name(name)
        tenants = self._read_registry()
        if name in tenants:
            raise TenantExistsError(f"tenant {name!r} already exists")
        entry = {"config": dict(config), "created_at": utc_now()}
        tenants[name] = entry
        self._write_registry(tenants)
        return TenantRecord(name=name, config=dict(config),
                            created_at=entry["created_at"])

    def get_tenant(self, name: str) -> TenantRecord:
        entry = self._read_registry().get(name)
        if entry is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return TenantRecord(name=name, config=dict(entry.get("config", {})),
                            created_at=entry.get("created_at", ""))

    def list_tenants(self) -> list[TenantRecord]:
        return [TenantRecord(name=name,
                             config=dict(entry.get("config", {})),
                             created_at=entry.get("created_at", ""))
                for name, entry in sorted(self._read_registry().items())]

    def delete_tenant(self, name: str) -> None:
        tenants = self._read_registry()
        if name not in tenants:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        del tenants[name]
        self._write_registry(tenants)
        store = self._store_for(name)
        for version in store.versions():
            store.path_of(version).unlink(missing_ok=True)
            self._meta_path(store, version).unlink(missing_ok=True)
        wal = self._wal_dir(name)
        if wal.is_dir():
            for path in wal.glob(_WAL_GLOB):
                path.unlink(missing_ok=True)
        if name != DEFAULT_TENANT:
            directory = store.directory
            if directory.is_dir() and not any(directory.iterdir()):
                directory.rmdir()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _store_for(self, tenant: str) -> SnapshotStore:
        if tenant == DEFAULT_TENANT:
            return SnapshotStore(self.root)
        return SnapshotStore(self.root / "tenants" / tenant)

    @staticmethod
    def _meta_path(store: SnapshotStore, version: int) -> Path:
        return store.path_of(version).with_suffix(".meta.json")

    def _require_tenant(self, tenant: str) -> None:
        # The default tenant is implicit for adopted legacy stores:
        # snapshot access works even before a registry entry exists.
        if tenant == DEFAULT_TENANT:
            return
        if tenant not in self._read_registry():
            raise UnknownTenantError(f"unknown tenant {tenant!r}")

    def save_snapshot(self, tenant: str, document: dict, *,
                      wal_seq: int = 0) -> SnapshotRecord:
        self._require_tenant(tenant)
        store = self._store_for(tenant)
        info = store.save(document)
        meta = {
            "tenant": tenant,
            "version": info.version,
            "created_at": utc_now(),
            "size_bytes": info.path.stat().st_size,
            "wal_seq": int(wal_seq),
            **snapshot_meta_from_document(document),
        }
        _atomic_write_json(self._meta_path(store, info.version), meta)
        return SnapshotRecord(**meta)

    def _record_of(self, tenant: str, store: SnapshotStore,
                   version: int) -> SnapshotRecord:
        meta_path = self._meta_path(store, version)
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            meta.setdefault("tenant", tenant)
            return SnapshotRecord(**meta)
        # Pre-backend snapshot: stat fallback, unknown log position.
        stat = store.path_of(version).stat()
        created = datetime.fromtimestamp(
            stat.st_mtime, timezone.utc).isoformat(timespec="seconds")
        return SnapshotRecord(tenant=tenant, version=version,
                              created_at=created, size_bytes=stat.st_size)

    def load_snapshot(self, tenant: str,
                      version: int | None = None) -> tuple[dict,
                                                           SnapshotRecord]:
        self._require_tenant(tenant)
        store = self._store_for(tenant)
        if version is None:
            version = store.latest_version()
            if version is None:
                raise FileNotFoundError(
                    f"tenant {tenant!r} has no snapshots in {self.root}")
        document = store.load(version)
        return document, self._record_of(tenant, store, version)

    def list_snapshots(self, tenant: str | None = None) -> list[SnapshotRecord]:
        if tenant is None:
            names = {DEFAULT_TENANT, *self._read_registry()}
            records = []
            for name in sorted(names):
                records.extend(self.list_snapshots(name))
            return records
        self._require_tenant(tenant)
        store = self._store_for(tenant)
        return [self._record_of(tenant, store, version)
                for version in store.versions()]

    def prune_snapshots(self, tenant: str, keep_last: int) -> int:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self._require_tenant(tenant)
        store = self._store_for(tenant)
        stale = store.versions()[:-keep_last]
        for version in stale:
            store.path_of(version).unlink(missing_ok=True)
            self._meta_path(store, version).unlink(missing_ok=True)
        return len(stale)

    # ------------------------------------------------------------------
    # Write-ahead ingest log
    # ------------------------------------------------------------------
    def _wal_dir(self, tenant: str) -> Path:
        return self.root / "wal" / tenant

    def _wal_seqs(self, tenant: str) -> list[int]:
        directory = self._wal_dir(tenant)
        if not directory.is_dir():
            return []
        seqs = []
        for path in directory.glob(_WAL_GLOB):
            stem = path.stem.removeprefix("entry-")
            if stem.isdigit():
                seqs.append(int(stem))
        return sorted(seqs)

    def append_ingest(self, tenant: str, rows: list,
                      domain_size: int | None = None) -> int:
        self._require_tenant(tenant)
        directory = self._wal_dir(tenant)
        directory.mkdir(parents=True, exist_ok=True)
        seq = self.last_ingest_seq(tenant) + 1
        entry = {"seq": seq, "rows": rows, "domain_size": domain_size,
                 "created_at": utc_now()}
        _atomic_write_json(directory / _WAL_TEMPLATE.format(seq=seq), entry)
        self._write_wal_floor(tenant, seq)
        return seq

    # The floor file makes last_ingest_seq monotonic across prunes:
    # without it, pruning every entry would restart sequence numbers
    # and a later snapshot could mistake new entries for captured ones.
    def _floor_path(self, tenant: str) -> Path:
        return self._wal_dir(tenant) / "floor.json"

    def _read_wal_floor(self, tenant: str) -> int:
        path = self._floor_path(tenant)
        if not path.exists():
            return 0
        return int(json.loads(path.read_text()).get("last_seq", 0))

    def _write_wal_floor(self, tenant: str, seq: int) -> None:
        current = self._read_wal_floor(tenant)
        if seq > current:
            _atomic_write_json(self._floor_path(tenant), {"last_seq": seq})

    def pending_ingest(self, tenant: str,
                       after_seq: int = 0) -> list[IngestLogEntry]:
        self._require_tenant(tenant)
        directory = self._wal_dir(tenant)
        entries = []
        seqs = self._wal_seqs(tenant)
        for seq in seqs:
            if seq <= after_seq:
                continue
            path = directory / _WAL_TEMPLATE.format(seq=seq)
            try:
                raw = json.loads(path.read_text())
            except (ValueError, OSError) as error:
                # A corrupt *tail* entry is a torn final write: the
                # append never returned, the batch was never
                # acknowledged, so quarantine the file and move on.  A
                # corrupt entry mid-sequence would silently drop
                # acknowledged reports — that is permanent data loss
                # and must stop recovery.
                if seq == seqs[-1]:
                    torn = path.with_name(path.name + ".torn")
                    path.replace(torn)
                    logger.warning(
                        "quarantined torn ingest-log tail %s for tenant "
                        "%r (%s)", torn.name, tenant, error)
                    continue
                raise CorruptEntryError(
                    f"ingest-log entry seq={seq} for tenant {tenant!r} is "
                    f"corrupt but not the tail ({error}); acknowledged "
                    "reports would be lost — refusing to recover"
                ) from error
            entries.append(IngestLogEntry(
                tenant=tenant, seq=seq, rows=raw["rows"],
                domain_size=raw.get("domain_size"),
                created_at=raw.get("created_at", "")))
        return entries

    def prune_ingest(self, tenant: str, upto_seq: int) -> int:
        self._require_tenant(tenant)
        directory = self._wal_dir(tenant)
        removed = 0
        for seq in self._wal_seqs(tenant):
            if seq <= upto_seq:
                (directory / _WAL_TEMPLATE.format(seq=seq)).unlink(
                    missing_ok=True)
                removed += 1
        return removed

    def discard_ingest(self, tenant: str, seq: int) -> None:
        self._require_tenant(tenant)
        path = self._wal_dir(tenant) / _WAL_TEMPLATE.format(seq=seq)
        path.unlink(missing_ok=True)

    def ingest_log_depth(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return len(self._wal_seqs(tenant))
        wal_root = self.root / "wal"
        if not wal_root.is_dir():
            return 0
        return sum(len(self._wal_seqs(child.name))
                   for child in wal_root.iterdir() if child.is_dir())

    def last_ingest_seq(self, tenant: str) -> int:
        seqs = self._wal_seqs(tenant)
        return max(seqs[-1] if seqs else 0, self._read_wal_floor(tenant))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def location(self) -> str:
        return str(self.root)
