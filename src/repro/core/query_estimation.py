"""Estimation of a λ-D range-query answer from its 2-D sub-answers.

Algorithm 2 of the paper: a λ-D query ``q`` (λ > 2) is split into its
``C(λ,2)`` associated 2-D queries; their (already estimated) answers are
then combined into an estimate of ``q``'s answer.  The combination works
over the ``2^λ`` "orthant" queries ``Q(q)`` obtained by either keeping or
complementing each attribute's interval: every 2-D answer is the sum of
the ``2^(λ-2)`` orthants in which both of its attributes keep their
interval, which gives one Weighted Update constraint per pair.  The final
answer is the orthant in which every attribute keeps its interval.

The alternative combiner from Appendix A.8 (Maximum Entropy, solved by
iterative proportional fitting) is exposed through ``method="max_entropy"``
for the ablation benchmark.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..estimation import (Constraint, max_entropy_estimate, weighted_update,
                          weighted_update_batch)
from ..queries import Predicate, RangeQuery

#: Signature of the callable that answers an associated 2-D sub-query.
PairAnswerFn = Callable[[RangeQuery], float]


def orthant_index(keep_mask: tuple[bool, ...]) -> int:
    """Index of an orthant in the 2^λ vector (bit i set = attribute i kept)."""
    index = 0
    for bit, keep in enumerate(keep_mask):
        if keep:
            index |= 1 << bit
    return index


def pair_constraint_indices(dimension: int, pos_a: int, pos_b: int) -> np.ndarray:
    """Orthant indices contributing to the 2-D answer of attributes at
    positions ``pos_a`` and ``pos_b`` (both intervals kept, others free)."""
    indices = []
    for mask in range(1 << dimension):
        if (mask >> pos_a) & 1 and (mask >> pos_b) & 1:
            indices.append(mask)
    return np.asarray(indices, dtype=np.int64)


def build_constraints(query: RangeQuery,
                      pair_answers: dict[tuple[int, int], float]) -> list[Constraint]:
    """Turn the 2-D sub-answers into Weighted Update constraints.

    ``pair_answers`` maps attribute-index pairs (as they appear in the
    query, sorted) to the estimated 2-D answers.  Targets are clipped at 0
    — negative 2-D answers would break the multiplicative update, and the
    mechanisms run Norm-Sub before reaching this point anyway.
    """
    attributes = query.attributes
    position = {attribute: pos for pos, attribute in enumerate(attributes)}
    constraints = []
    for (attr_a, attr_b), answer in pair_answers.items():
        indices = pair_constraint_indices(query.dimension,
                                          position[attr_a], position[attr_b])
        constraints.append(Constraint(indices=indices,
                                      target=max(0.0, float(answer))))
    return constraints


def estimate_lambda_query(query: RangeQuery, answer_pair: PairAnswerFn,
                          method: str = "weighted_update",
                          threshold: float = 1e-7,
                          max_iterations: int = 100,
                          track_history: bool = False):
    """Estimate a λ-D query's answer from a 2-D answering primitive.

    Parameters
    ----------
    query:
        The λ-D range query (λ >= 2).  For λ == 2 the 2-D primitive is
        called directly.
    answer_pair:
        Callable that returns the mechanism's estimate for any 2-D
        sub-query of ``query``.
    method:
        ``"weighted_update"`` (Algorithm 2, default) or ``"max_entropy"``
        (Appendix A.8).
    threshold, max_iterations:
        Convergence controls for the Weighted Update iteration.
    track_history:
        If True, also return the per-sweep change history (Figure 18).

    Returns
    -------
    float or (float, list[float])
        The estimated answer, plus the change history when requested.
    """
    if query.dimension < 2:
        raise ValueError("estimate_lambda_query requires a query with λ >= 2")
    if query.dimension == 2:
        answer = float(answer_pair(query))
        return (answer, []) if track_history else answer

    pair_answers: dict[tuple[int, int], float] = {}
    for sub_query in query.pairwise_subqueries():
        pair = sub_query.attributes
        pair_answers[pair] = float(answer_pair(sub_query))

    constraints = build_constraints(query, pair_answers)
    size = 1 << query.dimension
    target_index = size - 1  # every attribute keeps its interval
    # The orthants of Q(q) partition the population, so their answers sum to
    # 1; adding this normalisation constraint keeps the multiplicative update
    # on the probability simplex (matching the Maximum-Entropy formulation's
    # implicit normalisation).
    constraints.append(Constraint(indices=np.arange(size), target=1.0))

    if method == "weighted_update":
        result = weighted_update(size, constraints, threshold=threshold,
                                 max_iterations=max_iterations,
                                 track_history=track_history)
        answer = float(result.estimate[target_index])
        history = result.change_history
    elif method == "max_entropy":
        estimate = max_entropy_estimate(size, constraints,
                                        max_iterations=max_iterations * 5)
        answer = float(estimate[target_index])
        history = []
    else:
        raise ValueError(
            f"method must be 'weighted_update' or 'max_entropy', got {method!r}")

    return (answer, history) if track_history else answer


class PairwiseBatchAnswering:
    """Mixin: batched workload answering for pair-decomposable mechanisms.

    Mechanisms that answer 1-D/2-D queries directly and λ > 2 queries by
    combining 2-D sub-answers (TDG, HDG, LHIO) mix this in and provide
    :meth:`_answer_singles_batched` plus either a 2-D batch entry point
    (:meth:`_answer_pairs_batched` / :meth:`_answer_interval_pairs_batched`,
    grid mechanisms delegate to :meth:`_grid_interval_pairs_batched`) or
    just a scalar ``_answer_pair`` for the default per-query fallback.
    The mixin partitions a workload by query dimension, answers each
    class through the vectorised primitives and runs Algorithm 2 as one
    batched NumPy iteration per distinct λ.

    Mixed-kind workloads arrive here already lowered: the base class
    compiles marginal/point/count/top-k queries onto range primitives
    through :class:`~repro.queries.QueryPlanner`, so e.g. a 2-D
    marginal's ``c²`` degenerate cells land in the pairs partition and
    are answered as one grouped corner-lookup batch per grid — the
    mixin needs no per-kind code.
    """

    #: Combiner for λ > 2 queries; set by the mechanism constructor.
    estimation_method: str = "weighted_update"
    #: Iteration cap for Algorithm 2; set by the mechanism constructor.
    estimation_iterations: int = 100
    #: Whether the mechanism implements the fused compiled-plan hooks
    #: (:meth:`_fused_attribute_ranges` / :meth:`_fused_pair_ranges`).
    #: Grid mechanisms (TDG, HDG) turn this on; mechanisms with their
    #: own batch layout (LHIO's hierarchy gathers) leave it off and the
    #: compiled path falls back to their existing batch engine.
    _supports_fused_plans: bool = False

    def _answer_pairs_batched(self, queries: list[RangeQuery]) -> np.ndarray:
        """Batch 2-D answers; defaults to the interval-tuple entry point."""
        return self._answer_interval_pairs_batched(
            [(query.predicates[0].attribute, query.predicates[1].attribute,
              (query.predicates[0].low, query.predicates[0].high),
              (query.predicates[1].low, query.predicates[1].high))
             for query in queries])

    def _answer_singles_batched(self, queries: list[RangeQuery]) -> np.ndarray:
        raise NotImplementedError

    def _answer_interval_pairs_batched(self, entries) -> np.ndarray:
        """Batch 2-D answers from raw ``(attr_a, attr_b, interval_a,
        interval_b)`` tuples.

        The λ > 2 path decomposes every query into C(λ,2) 2-D lookups;
        going through tuples instead of :class:`RangeQuery` sub-objects
        skips thousands of dataclass constructions per workload.  The
        default materialises the sub-queries one by one; grid mechanisms
        override with :meth:`_grid_interval_pairs_batched`.
        """
        return np.array([
            self._answer_pair(RangeQuery((Predicate(attr_a, *interval_a),
                                          Predicate(attr_b, *interval_b))))
            for attr_a, attr_b, interval_a, interval_b in entries])

    def _grid_interval_pairs_batched(self, entries, grids,
                                     response_index_for) -> np.ndarray:
        """Shared grouped implementation over a dict of 2-D grids.

        ``grids`` maps ordered attribute pairs to :class:`Grid2D`;
        entries whose pair is stored in the flipped orientation get their
        intervals swapped.  ``response_index_for(key)`` supplies the
        optional summed-area table of the pair's response matrix (HDG).
        """
        answers = np.empty(len(entries))
        by_grid: dict[tuple[int, int], list[tuple[int, tuple, tuple]]] = {}
        for position, (attr_a, attr_b, interval_a, interval_b) in enumerate(entries):
            key = (attr_a, attr_b)
            if key not in grids:
                key = (attr_b, attr_a)
                interval_a, interval_b = interval_b, interval_a
            by_grid.setdefault(key, []).append(
                (position, interval_a, interval_b))
        for key, group in by_grid.items():
            positions = np.array([entry[0] for entry in group])
            rows = np.array([entry[1] for entry in group])
            cols = np.array([entry[2] for entry in group])
            answers[positions] = grids[key].answer_ranges(
                rows[:, 0], rows[:, 1], cols[:, 0], cols[:, 1],
                response_index=response_index_for(key))
        return answers

    # ------------------------------------------------------------------
    # Fused compiled-plan execution
    # ------------------------------------------------------------------
    def _fused_attribute_ranges(self, attribute: int, lows: np.ndarray,
                                highs: np.ndarray) -> np.ndarray:
        """Vectorised answers for one attribute's 1-D endpoint arrays."""
        raise NotImplementedError

    def _fused_pair_ranges(self, key: tuple[int, int], row_lows: np.ndarray,
                           row_highs: np.ndarray, col_lows: np.ndarray,
                           col_highs: np.ndarray) -> np.ndarray:
        """Vectorised answers for one attribute pair's 2-D endpoint arrays."""
        raise NotImplementedError

    def _answer_compiled(self, compiled) -> np.ndarray:
        """Execute a compiled plan through the fused grouped gathers.

        The per-call interpretation the plain batch path pays —
        re-partitioning primitives by dimension, regrouping by grid,
        rebuilding interval tuples — was done once at compile time;
        answering is one vectorised lookup per (attribute or pair)
        group plus one batched Algorithm-2 iteration per distinct λ.
        Every group calls the same kernels in the same grouping the
        interpreted path uses, so answers are bitwise identical.

        Falls back to the uncompiled path for mechanisms without fused
        hooks, under ``use_legacy_answering``, and for non-default λ > 2
        combiners (max entropy runs per query).
        """
        if (not self._supports_fused_plans or self.use_legacy_answering
                or (compiled.multi_dim_groups
                    and self.estimation_method != "weighted_update")):
            return super()._answer_compiled(compiled)
        answers = np.empty(compiled.n_primitives)
        for group in compiled.single_groups:
            answers[group.positions] = self._fused_attribute_ranges(
                group.attribute, group.lows, group.highs)
        for group in compiled.pair_groups:
            answers[group.positions] = self._fused_pair_ranges(
                group.key, group.row_lows, group.row_highs, group.col_lows,
                group.col_highs)
        if compiled.n_sub_entries:
            sub_answers = np.empty(compiled.n_sub_entries)
            for group in compiled.multi_pair_groups:
                sub_answers[group.positions] = self._fused_pair_ranges(
                    group.key, group.row_lows, group.row_highs, group.col_lows,
                    group.col_highs)
            for group in compiled.multi_dim_groups:
                # Same targets layout as estimate_lambda_queries_batched:
                # clipped pair answers plus the simplex normalisation to 1.
                targets = np.ones((group.positions.size,
                                   len(group.index_sets)))
                targets[:, :-1] = np.maximum(
                    0.0, sub_answers[group.sub_index_matrix])
                estimates = weighted_update_batch(
                    1 << group.dimension, group.index_sets, targets,
                    max_iterations=self.estimation_iterations)
                answers[group.positions] = \
                    estimates[:, (1 << group.dimension) - 1]
        return answers

    def _answer_workload(self, queries: list[RangeQuery]) -> np.ndarray:
        answers = np.empty(len(queries))
        singles: list[int] = []
        pairs: list[int] = []
        multis: list[int] = []
        for position, query in enumerate(queries):
            if query.dimension == 1:
                singles.append(position)
            elif query.dimension == 2:
                pairs.append(position)
            else:
                multis.append(position)

        if singles:
            answers[singles] = self._answer_singles_batched(
                [queries[position] for position in singles])
        if pairs:
            answers[pairs] = self._answer_pairs_batched(
                [queries[position] for position in pairs])
        if multis:
            answers[multis] = self._answer_multis_batched(
                [queries[position] for position in multis])
        return answers

    def _answer_multis_batched(self, queries: list[RangeQuery]) -> np.ndarray:
        """λ > 2 queries: batch the 2-D sub-answers, then Weighted Update."""
        sub_entries: list[tuple] = []
        slices: list[tuple[int, int]] = []
        for query in queries:
            predicates = query.predicates
            start = len(sub_entries)
            # Same (lexicographic-by-position) order as pairwise_subqueries.
            for i in range(len(predicates)):
                for j in range(i + 1, len(predicates)):
                    sub_entries.append(
                        (predicates[i].attribute, predicates[j].attribute,
                         (predicates[i].low, predicates[i].high),
                         (predicates[j].low, predicates[j].high)))
            slices.append((start, len(sub_entries) - start))
        flat_answers = self._answer_interval_pairs_batched(sub_entries)
        sub_answers = [flat_answers[start:start + count]
                       for start, count in slices]
        if self.estimation_method == "weighted_update":
            return estimate_lambda_queries_batched(
                queries, sub_answers,
                max_iterations=self.estimation_iterations)
        # Other combiners (max entropy) run per query on the batched
        # sub-answers.
        answers = np.empty(len(queries))
        for position, query in enumerate(queries):
            lookup = dict(zip((sub.attributes
                               for sub in query.pairwise_subqueries()),
                              sub_answers[position]))
            answers[position] = estimate_lambda_query(
                query, lambda sub: lookup[sub.attributes],
                method=self.estimation_method,
                max_iterations=self.estimation_iterations)
        return answers


def lambda_constraint_index_sets(dimension: int) -> list[np.ndarray]:
    """Algorithm 2's constraint index sets for a λ-D query.

    One set per attribute pair in the order
    :meth:`~repro.queries.RangeQuery.pairwise_subqueries` produces them
    (lexicographic by position), followed by the simplex normalisation
    over all ``2^λ`` orthants — the exact sweep order of
    :func:`estimate_lambda_query`.
    """
    sets = [pair_constraint_indices(dimension, pos_a, pos_b)
            for pos_a in range(dimension)
            for pos_b in range(pos_a + 1, dimension)]
    sets.append(np.arange(1 << dimension, dtype=np.int64))
    return sets


def estimate_lambda_queries_batched(queries: list[RangeQuery],
                                    sub_answers: list[np.ndarray],
                                    threshold: float = 1e-7,
                                    max_iterations: int = 100) -> np.ndarray:
    """Batched Algorithm 2: estimate many λ-D queries in one NumPy iteration.

    Parameters
    ----------
    queries:
        λ-D queries (λ > 2 each; dimensions may differ between queries).
    sub_answers:
        For each query, its ``C(λ,2)`` estimated 2-D sub-answers in
        :meth:`~repro.queries.RangeQuery.pairwise_subqueries` order.
    threshold, max_iterations:
        Convergence controls, matching :func:`estimate_lambda_query`.

    Returns
    -------
    numpy.ndarray
        One estimated answer per query, identical (to floating-point
        noise) to running :func:`estimate_lambda_query` per query.
    """
    answers = np.empty(len(queries))
    by_dimension: dict[int, list[int]] = {}
    for position, query in enumerate(queries):
        if query.dimension <= 2:
            raise ValueError("batched estimation requires λ > 2 queries")
        by_dimension.setdefault(query.dimension, []).append(position)

    for dimension, positions in by_dimension.items():
        index_sets = lambda_constraint_index_sets(dimension)
        # Targets: the (clipped) pair answers plus the normalisation to 1.
        targets = np.ones((len(positions), len(index_sets)))
        for row, position in enumerate(positions):
            targets[row, :-1] = np.maximum(0.0, sub_answers[position])
        estimates = weighted_update_batch(1 << dimension, index_sets, targets,
                                          threshold=threshold,
                                          max_iterations=max_iterations)
        answers[positions] = estimates[:, (1 << dimension) - 1]
    return answers
