"""Tests for the Weighted Update estimation engine."""

import numpy as np
import pytest

from repro.estimation import Constraint, weighted_update


def test_single_constraint_is_satisfied_exactly():
    constraint = Constraint(indices=np.array([0, 1]), target=0.6)
    result = weighted_update(4, [constraint])
    assert result.estimate[[0, 1]].sum() == pytest.approx(0.6)
    assert result.converged


def test_marginal_constraints_reconstruct_product_distribution():
    # A 2x2 joint distribution constrained by its two marginals; weighted
    # update starting from uniform converges to the independent coupling.
    # Variables indexed as 2*a + b.
    row0 = Constraint(indices=np.array([0, 1]), target=0.3)
    row1 = Constraint(indices=np.array([2, 3]), target=0.7)
    col0 = Constraint(indices=np.array([0, 2]), target=0.4)
    col1 = Constraint(indices=np.array([1, 3]), target=0.6)
    result = weighted_update(4, [row0, row1, col0, col1], max_iterations=500)
    expected = np.array([0.3 * 0.4, 0.3 * 0.6, 0.7 * 0.4, 0.7 * 0.6])
    np.testing.assert_allclose(result.estimate, expected, atol=1e-4)


def test_convergence_flag_and_iteration_count():
    constraint = Constraint(indices=np.array([0]), target=0.5)
    result = weighted_update(2, [constraint], threshold=1e-12,
                             max_iterations=50)
    assert result.converged
    assert result.iterations <= 50


def test_non_convergence_when_iterations_exhausted():
    # An unattainable threshold exhausts the iteration budget.
    constraints = [Constraint(indices=np.array([0, 1]), target=0.5),
                   Constraint(indices=np.array([1, 2]), target=0.4)]
    result = weighted_update(3, constraints, threshold=-1.0, max_iterations=3)
    assert not result.converged
    assert result.iterations == 3


def test_history_tracking():
    constraints = [Constraint(indices=np.array([0, 1]), target=0.5),
                   Constraint(indices=np.array([1, 2]), target=0.5)]
    result = weighted_update(3, constraints, track_history=True,
                             max_iterations=20)
    assert len(result.change_history) == result.iterations
    # Change should shrink over sweeps.
    assert result.change_history[-1] <= result.change_history[0] + 1e-12


def test_zero_target_zeroes_entries():
    constraints = [Constraint(indices=np.array([0, 1]), target=0.0),
                   Constraint(indices=np.array([2, 3]), target=1.0)]
    result = weighted_update(4, constraints)
    assert result.estimate[0] == pytest.approx(0.0, abs=1e-12)
    assert result.estimate[2:].sum() == pytest.approx(1.0)


def test_initial_vector_respected():
    constraint = Constraint(indices=np.array([0, 1, 2, 3]), target=1.0)
    skewed = np.array([0.7, 0.1, 0.1, 0.1])
    result = weighted_update(4, [constraint], initial=skewed)
    # The constraint is already satisfied, so the skew is preserved.
    np.testing.assert_allclose(result.estimate, skewed)


def test_estimate_stays_non_negative():
    rng = np.random.default_rng(0)
    constraints = [Constraint(indices=rng.choice(8, size=3, replace=False),
                              target=float(rng.random())) for _ in range(6)]
    result = weighted_update(8, constraints, max_iterations=50)
    assert (result.estimate >= 0).all()


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        weighted_update(0, [Constraint(indices=np.array([0]), target=0.1)])
    with pytest.raises(ValueError):
        weighted_update(4, [])
    with pytest.raises(ValueError):
        Constraint(indices=np.array([]), target=0.5)
    with pytest.raises(ValueError):
        weighted_update(4, [Constraint(indices=np.array([0]), target=0.5)],
                        initial=np.zeros(3))
