"""Reproduction drivers for the paper's appendix experiments (Figures 9-28).

Like :mod:`repro.experiments.figures`, every public function regenerates
one appendix figure's data at a configurable (default laptop-friendly)
scale.
"""

from __future__ import annotations

import numpy as np

from ..core import HDG, TDG
from ..datasets import make_dataset
from ..metrics import absolute_errors, error_histogram
from ..queries import WorkloadGenerator, answer_workload
from .config import DEFAULT_METHODS, METHODS_WITHOUT_HIO, ExperimentConfig
from .figures import (GUIDELINE_COMBINATIONS, PAPER_EPSILONS, PAPER_VOLUMES,
                      figure_1_vary_epsilon, figure_2_vary_volume,
                      figure_4_vary_attributes, figure_7_guideline)
from .runner import SweepResult, run_experiment, sweep_parameter


def figure_9_10_error_distribution(datasets=("ipums", "bfive", "normal", "laplace"),
                                   query_dimensions=(2, 4), n_users=100_000,
                                   n_attributes=6, domain_size=64, epsilon=1.0,
                                   volume=0.5, n_queries=200, n_bins=20,
                                   seed=0) -> dict:
    """Figures 9-10: per-query standard-error histograms of TDG and HDG."""
    results = {}
    for dataset_name in datasets:
        for dimension in query_dimensions:
            rng = np.random.default_rng(seed)
            dataset = make_dataset(dataset_name, n_users, n_attributes,
                                   domain_size, rng=rng)
            generator = WorkloadGenerator(n_attributes, domain_size,
                                          rng=np.random.default_rng(seed + 1))
            queries = generator.random_workload(n_queries, dimension, volume)
            truths = answer_workload(dataset, queries)
            panel = {}
            for label, mechanism in (("TDG", TDG(epsilon, seed=seed)),
                                     ("HDG", HDG(epsilon, seed=seed))):
                mechanism.fit(dataset)
                errors = absolute_errors(mechanism.answer_workload(queries), truths)
                counts, edges = error_histogram(errors, n_bins=n_bins)
                panel[label] = {"errors": errors, "histogram": counts,
                                "bin_edges": edges}
            results[(dataset_name, dimension)] = panel
    return results


def _exhaustive_workload_factory(kind: str, volume: float):
    """Workload factory returning full 2-D marginal or range workloads."""

    def factory(config: ExperimentConfig, dataset, repeat: int):
        generator = WorkloadGenerator(config.n_attributes, config.domain_size,
                                      rng=np.random.default_rng(config.seed + repeat))
        if kind == "marginals":
            return generator.full_marginal_workload()
        return generator.full_2d_range_workload(volume)

    return factory


def figure_11_full_marginals(datasets=("ipums", "bfive", "normal", "laplace"),
                             epsilons=PAPER_EPSILONS,
                             methods=METHODS_WITHOUT_HIO, n_users=100_000,
                             n_attributes=6, domain_size=64, n_repeats=1,
                             seed=0) -> dict[str, SweepResult]:
    """Figure 11: MAE over all full 2-D marginal (point) queries."""
    results = {}
    factory = _exhaustive_workload_factory("marginals", 0.0)
    for dataset in datasets:
        config = ExperimentConfig(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes,
                                  domain_size=domain_size, query_dimension=2,
                                  n_queries=1, n_repeats=n_repeats,
                                  methods=tuple(methods), seed=seed)
        results[dataset] = sweep_parameter(config, "epsilon", list(epsilons),
                                           workload_factory=factory)
    return results


def figure_12_full_range(datasets=("ipums", "bfive", "normal", "laplace"),
                         epsilons=PAPER_EPSILONS, methods=DEFAULT_METHODS,
                         n_users=100_000, n_attributes=6, domain_size=64,
                         volume=0.5, n_repeats=1, seed=0) -> dict[str, SweepResult]:
    """Figure 12: MAE over all 2-D range queries of volume ω."""
    results = {}
    factory = _exhaustive_workload_factory("ranges", volume)
    for dataset in datasets:
        config = ExperimentConfig(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes,
                                  domain_size=domain_size, volume=volume,
                                  query_dimension=2, n_queries=1,
                                  n_repeats=n_repeats, methods=tuple(methods),
                                  seed=seed)
        results[dataset] = sweep_parameter(config, "epsilon", list(epsilons),
                                           workload_factory=factory)
    return results


def figure_13_14_count_conditioned(datasets=("ipums", "bfive", "normal", "laplace"),
                                   query_dimensions=(6, 7, 8, 9, 10),
                                   zero_count=True,
                                   methods=METHODS_WITHOUT_HIO,
                                   n_users=100_000, n_attributes=10,
                                   domain_size=64, epsilon=1.0,
                                   volume=None, n_queries=100, n_repeats=1,
                                   seed=0) -> dict[str, SweepResult]:
    """Figures 13-14: 0-count (ω = 0.3) and non-0-count (ω = 0.7) high-λ queries."""
    if volume is None:
        volume = 0.3 if zero_count else 0.7

    def factory(config: ExperimentConfig, dataset, repeat: int):
        generator = WorkloadGenerator(config.n_attributes, config.domain_size,
                                      rng=np.random.default_rng(config.seed + repeat))
        return generator.count_conditioned_workload(
            dataset, config.n_queries, config.query_dimension, config.volume,
            zero_count=zero_count)

    results = {}
    for dataset in datasets:
        valid_dims = [dim for dim in query_dimensions if dim <= n_attributes]
        config = ExperimentConfig(dataset=dataset, n_users=n_users,
                                  n_attributes=n_attributes,
                                  domain_size=domain_size, epsilon=epsilon,
                                  volume=volume, n_queries=n_queries,
                                  n_repeats=n_repeats, methods=tuple(methods),
                                  seed=seed)
        results[dataset] = sweep_parameter(config, "query_dimension", valid_dims,
                                           workload_factory=factory)
    return results


def figure_15_user_split(datasets=("ipums", "bfive", "normal", "laplace"),
                         sigmas=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
                         epsilons=(0.2, 0.6, 1.0, 1.4, 1.8), n_users=100_000,
                         n_attributes=6, domain_size=64, volume=0.5,
                         n_queries=200, n_repeats=1, seed=0) -> dict:
    """Figure 15: HDG accuracy as the 1-D/2-D user split σ varies."""
    results = {}
    for dataset in datasets:
        per_epsilon = {}
        for epsilon in epsilons:
            config = ExperimentConfig(dataset=dataset, n_users=n_users,
                                      n_attributes=n_attributes,
                                      domain_size=domain_size, epsilon=epsilon,
                                      volume=volume, query_dimension=2,
                                      n_queries=n_queries, n_repeats=n_repeats,
                                      methods=("HDG",), seed=seed)

            def transform(base: ExperimentConfig, sigma: float) -> ExperimentConfig:
                kwargs = dict(base.mechanism_kwargs)
                kwargs["HDG"] = {"sigma": sigma}
                return base.with_overrides(mechanism_kwargs=kwargs)

            per_epsilon[epsilon] = sweep_parameter(config, "sigma", list(sigmas),
                                                   config_transform=transform)
        results[dataset] = per_epsilon
    return results


def figure_16_guideline_d(datasets=("ipums", "bfive", "normal", "laplace"),
                          attribute_counts=(4, 8, 10), epsilons=PAPER_EPSILONS,
                          combinations=GUIDELINE_COMBINATIONS, n_users=100_000,
                          domain_size=64, volume=0.5, n_queries=200,
                          n_repeats=1, seed=0) -> dict:
    """Figure 16: guideline verification at d = 4, 8, 10."""
    results = {}
    for d in attribute_counts:
        results[d] = figure_7_guideline(datasets=datasets, epsilons=epsilons,
                                        combinations=combinations,
                                        n_users=n_users, n_attributes=d,
                                        domain_size=domain_size, volume=volume,
                                        n_queries=n_queries, n_repeats=n_repeats,
                                        seed=seed)
    return results


def figure_17_convergence_matrix(datasets=("ipums", "bfive", "normal", "laplace"),
                                 epsilons=(0.2, 0.6, 1.0, 1.4, 1.8),
                                 n_users=100_000, n_attributes=6, domain_size=64,
                                 max_iterations=50, seed=0) -> dict:
    """Figure 17: per-sweep change of Algorithm 1 (response-matrix building)."""
    results = {}
    for dataset_name in datasets:
        rng = np.random.default_rng(seed)
        dataset = make_dataset(dataset_name, n_users, n_attributes, domain_size,
                               rng=rng)
        per_epsilon = {}
        for epsilon in epsilons:
            mechanism = HDG(epsilon, seed=seed, matrix_iterations=max_iterations,
                            convergence_threshold=0.0)
            mechanism.fit(dataset)
            histories = list(mechanism.matrix_iteration_history.values())
            max_len = max(len(h) for h in histories)
            padded = np.zeros((len(histories), max_len))
            for row, history in enumerate(histories):
                padded[row, :len(history)] = history
            per_epsilon[epsilon] = padded.mean(axis=0)
        results[dataset_name] = per_epsilon
    return results


def figure_18_convergence_query(datasets=("ipums", "bfive", "normal", "laplace"),
                                epsilons=(0.2, 0.6, 1.0, 1.4, 1.8),
                                query_dimension=4, n_users=100_000,
                                n_attributes=6, domain_size=64, volume=0.5,
                                n_queries=20, max_iterations=100,
                                seed=0) -> dict:
    """Figure 18: per-sweep change of Algorithm 2 (λ-D query estimation)."""
    results = {}
    for dataset_name in datasets:
        rng = np.random.default_rng(seed)
        dataset = make_dataset(dataset_name, n_users, n_attributes, domain_size,
                               rng=rng)
        generator = WorkloadGenerator(n_attributes, domain_size,
                                      rng=np.random.default_rng(seed + 1))
        queries = generator.random_workload(n_queries, query_dimension, volume)
        per_epsilon = {}
        for epsilon in epsilons:
            mechanism = HDG(epsilon, seed=seed,
                            estimation_iterations=max_iterations)
            mechanism.fit(dataset)
            histories = []
            for query in queries:
                _, history = mechanism.estimate_with_history(query)
                histories.append(history)
            max_len = max(len(h) for h in histories) if histories else 1
            padded = np.zeros((len(histories), max_len))
            for row, history in enumerate(histories):
                padded[row, :len(history)] = history
            per_epsilon[epsilon] = padded.mean(axis=0)
        results[dataset_name] = per_epsilon
    return results


def figure_19_21_new_datasets(epsilons=PAPER_EPSILONS, volumes=PAPER_VOLUMES,
                              attribute_counts=(4, 5, 6, 7, 8, 9, 10),
                              query_dimensions=(2, 4), n_users=100_000,
                              n_attributes=6, domain_size=64,
                              n_queries=200, n_repeats=1, seed=0) -> dict:
    """Figures 19-21: ε, ω and d sweeps on the Loan and Acs datasets."""
    datasets = ("loan", "acs")
    return {
        "fig19_epsilon": figure_1_vary_epsilon(
            datasets=datasets, epsilons=epsilons,
            query_dimensions=query_dimensions, n_users=n_users,
            n_attributes=n_attributes, domain_size=domain_size,
            n_queries=n_queries, n_repeats=n_repeats, seed=seed),
        "fig20_volume": figure_2_vary_volume(
            datasets=datasets, volumes=volumes,
            query_dimensions=query_dimensions, n_users=n_users,
            n_attributes=n_attributes, domain_size=domain_size,
            n_queries=n_queries, n_repeats=n_repeats, seed=seed),
        "fig21_attributes": figure_4_vary_attributes(
            datasets=datasets, attribute_counts=attribute_counts,
            query_dimensions=query_dimensions, n_users=n_users,
            domain_size=domain_size, n_queries=n_queries,
            n_repeats=n_repeats, seed=seed),
    }


def figure_23_27_lambda6(datasets=("normal", "laplace"),
                         epsilons=PAPER_EPSILONS, n_users=100_000,
                         n_attributes=6, domain_size=64, volume=0.5,
                         n_queries=200, n_repeats=1, seed=0) -> dict:
    """Figures 23-27: λ = 6 variants of the ε sweep (the other λ = 6 panels
    reuse the same drivers with ``query_dimensions=(6,)``)."""
    return figure_1_vary_epsilon(datasets=datasets, epsilons=epsilons,
                                 query_dimensions=(6,), n_users=n_users,
                                 n_attributes=n_attributes,
                                 domain_size=domain_size, volume=volume,
                                 n_queries=n_queries, n_repeats=n_repeats,
                                 seed=seed)


def figure_28_covariance(datasets=("normal", "laplace"),
                         covariances=(0.0, 0.2, 0.6, 1.0),
                         epsilons=PAPER_EPSILONS, query_dimensions=(2, 4, 6),
                         methods=DEFAULT_METHODS, n_users=100_000,
                         n_attributes=6, domain_size=64, volume=0.5,
                         n_queries=200, n_repeats=1, seed=0) -> dict:
    """Figure 28: ε sweep at several attribute-covariance levels."""
    results = {}
    for dataset in datasets:
        for covariance in covariances:
            for dimension in query_dimensions:
                config = ExperimentConfig(
                    dataset=dataset, n_users=n_users, n_attributes=n_attributes,
                    domain_size=domain_size, volume=volume,
                    query_dimension=dimension, n_queries=n_queries,
                    n_repeats=n_repeats, methods=tuple(methods), seed=seed,
                    dataset_kwargs={"covariance": covariance})
                results[(dataset, covariance, dimension)] = sweep_parameter(
                    config, "epsilon", list(epsilons))
    return results
