"""Tests for the online serving subsystem (repro.serving).

The load-bearing property is the snapshot round trip: for *every*
mechanism, ``save_state`` → JSON → ``restore_mechanism`` →
``answer_workload`` must be **bitwise identical** to the live
estimator's answers from the snapshot point on — including HIO/LHIO,
whose answering path still draws noise (their RNG stream travels in
the snapshot).  On top of that, the suite covers the versioned
snapshot store, the ingest → re-finalize → answer service loop, the
JSON-over-HTTP API and the ``serve``/``snapshot`` CLI verbs.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import (CALM, HDG, HIO, IHDG, ITDG, LHIO, MSW, TDG, Uniform,
                   WorkloadGenerator, make_dataset)
from repro.cli import main
from repro.datasets import Dataset
from repro.serving import (SNAPSHOT_MECHANISMS, QueryService, ServiceError,
                           SnapshotStore, build_server, queries_from_wire,
                           query_from_wire, query_to_wire, restore_mechanism)


@pytest.fixture(scope="module")
def serving_dataset() -> Dataset:
    return make_dataset("normal", 2_000, 3, 16,
                        rng=np.random.default_rng(42))


@pytest.fixture(scope="module")
def mixed_workload() -> list:
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(5))
    return (generator.random_workload(6, 1, 0.5)
            + generator.random_workload(8, 2, 0.5)
            + generator.random_workload(4, 3, 0.5))


# ----------------------------------------------------------------------
# Snapshot round trip: the bitwise property, for every mechanism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SNAPSHOT_MECHANISMS))
def test_snapshot_round_trip_is_bitwise_identical(name, serving_dataset,
                                                  mixed_workload):
    mechanism = SNAPSHOT_MECHANISMS[name](1.0, seed=7).fit(serving_dataset)
    # Serialize through an actual JSON string: proves the document is
    # plain JSON and that float round-tripping is exact.
    state = json.loads(json.dumps(mechanism.save_state()))
    restored = restore_mechanism(state)
    live_answers = mechanism.answer_workload(mixed_workload)
    restored_answers = restored.answer_workload(mixed_workload)
    assert np.array_equal(live_answers, restored_answers)


@pytest.mark.parametrize("name", ["HIO", "LHIO"])
def test_snapshot_round_trip_stays_bitwise_on_repeat_answering(
        name, serving_dataset, mixed_workload):
    """Noise-drawing mechanisms keep matching across *multiple* workloads."""
    mechanism = SNAPSHOT_MECHANISMS[name](1.0, seed=3).fit(serving_dataset)
    restored = restore_mechanism(
        json.loads(json.dumps(mechanism.save_state())))
    for _ in range(2):
        assert np.array_equal(mechanism.answer_workload(mixed_workload),
                              restored.answer_workload(mixed_workload))


def test_every_mechanism_reports_snapshot_support():
    for name, factory in SNAPSHOT_MECHANISMS.items():
        assert factory(1.0).supports_snapshot, name


def test_save_state_requires_fitted():
    with pytest.raises(RuntimeError, match="fitted"):
        TDG(1.0).save_state()


def test_load_state_rejects_fitted_instance(serving_dataset):
    state = TDG(1.0, seed=0).fit(serving_dataset).save_state()
    fitted = TDG(1.0, seed=1).fit(serving_dataset)
    with pytest.raises(RuntimeError, match="fresh"):
        fitted.load_state(state)


def test_load_state_rejects_wrong_mechanism_and_epsilon(serving_dataset):
    state = TDG(1.0, seed=0).fit(serving_dataset).save_state()
    with pytest.raises(ValueError, match="belongs to"):
        HDG(1.0).load_state(state)
    with pytest.raises(ValueError, match="different epsilon"):
        TDG(2.0).load_state(state)


def test_load_state_rejects_foreign_and_future_documents():
    with pytest.raises(ValueError, match="format"):
        TDG(1.0).load_state({"format": "something-else"})
    with pytest.raises(ValueError, match="newer"):
        TDG(1.0).load_state({"format": "repro.mechanism-state",
                             "version": 99, "mechanism": "TDG",
                             "epsilon": 1.0})
    with pytest.raises(ValueError, match="unknown mechanism"):
        restore_mechanism({"format": "repro.mechanism-state",
                           "version": 1, "mechanism": "nope",
                           "epsilon": 1.0})


def test_restored_frequency_views_stay_read_only(serving_dataset):
    """The grids' read-only frequency contract survives a round trip."""
    mechanism = HDG(1.0, seed=0).fit(serving_dataset)
    restored = restore_mechanism(mechanism.save_state())
    grid_1d = next(iter(restored.grids_1d.values()))
    grid_2d = next(iter(restored.grids_2d.values()))
    for view in (grid_1d.frequencies, grid_2d.frequencies):
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[..., 0] = 1.0


def test_restored_mechanism_config_shapes_answering(serving_dataset,
                                                    mixed_workload):
    """Answering-path settings (estimation method) travel in the state."""
    mechanism = TDG(1.0, seed=0, estimation_method="max_entropy",
                    estimation_iterations=17).fit(serving_dataset)
    restored = restore_mechanism(mechanism.save_state())
    assert restored.estimation_method == "max_entropy"
    assert restored.estimation_iterations == 17
    assert np.array_equal(mechanism.answer_workload(mixed_workload),
                          restored.answer_workload(mixed_workload))


# ----------------------------------------------------------------------
# SnapshotStore: versions, retention, errors
# ----------------------------------------------------------------------
def test_snapshot_store_versions_increment(tmp_path):
    store = SnapshotStore(tmp_path / "snaps")
    assert store.versions() == [] and store.latest_version() is None
    first = store.save({"payload": 1})
    second = store.save({"payload": 2})
    assert (first.version, second.version) == (1, 2)
    assert store.versions() == [1, 2]
    assert store.load() == {"payload": 2}
    assert store.load(1) == {"payload": 1}


def test_snapshot_store_retention(tmp_path):
    store = SnapshotStore(tmp_path, keep_last=2)
    for index in range(4):
        store.save({"payload": index})
    assert store.versions() == [3, 4]
    assert store.load() == {"payload": 3}


def test_snapshot_store_concurrent_saves_get_distinct_versions(tmp_path):
    """Racing writers never collide on a version or corrupt a document."""
    store = SnapshotStore(tmp_path)
    results: list = []
    barrier = threading.Barrier(8)

    def save(index: int) -> None:
        barrier.wait()
        results.append((index, store.save({"writer": index}).version))

    threads = [threading.Thread(target=save, args=(index,))
               for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sorted(version for _, version in results) == list(range(1, 9))
    for index, version in results:
        assert store.load(version) == {"writer": index}


def test_snapshot_store_error_cases(tmp_path):
    store = SnapshotStore(tmp_path)
    with pytest.raises(FileNotFoundError, match="empty"):
        store.load()
    store.save({})
    with pytest.raises(FileNotFoundError, match="version 9"):
        store.load(9)
    with pytest.raises(ValueError, match="keep_last"):
        SnapshotStore(tmp_path, keep_last=0)


# ----------------------------------------------------------------------
# QueryService: ingest, re-finalize policy, snapshots
# ----------------------------------------------------------------------
def test_service_matches_direct_incremental_fit(serving_dataset,
                                                mixed_workload):
    """Service answers == partial_fit/finalize on a same-seeded mechanism."""
    half = serving_dataset.n_users // 2
    batches = [serving_dataset.values[:half], serving_dataset.values[half:]]

    service = QueryService("TDG", 1.0, seed=11, domain_size=16,
                           total_users=serving_dataset.n_users)
    for batch in batches:
        service.ingest(batch)
    service.refinalize()

    direct = TDG(1.0, seed=11)
    for batch in batches:
        direct.partial_fit(Dataset(batch, 16),
                           total_users=serving_dataset.n_users)
    direct.finalize()

    assert np.array_equal(service.query(mixed_workload),
                          direct.answer_workload(mixed_workload))


def test_refinalize_every_policy(serving_dataset):
    service = QueryService("TDG", 1.0, seed=0, domain_size=16,
                           refinalize_every=1_000)
    receipt = service.ingest(serving_dataset.values[:600])
    assert not receipt["refinalized"] and not receipt["ready"]
    receipt = service.ingest(serving_dataset.values[600:1_200])
    assert receipt["refinalized"] and receipt["ready"]
    assert service.finalize_count == 1
    assert service.reports_since_finalize == 0
    # Collection continues after the swap; manual refinalize still works.
    service.ingest(serving_dataset.values[1_200:1_400])
    status = service.refinalize()
    assert status["finalize_count"] == 2
    assert status["reports_ingested"] == 1_400


def test_service_error_cases(serving_dataset, mixed_workload):
    streaming = QueryService("HDG", 1.0, domain_size=16)
    with pytest.raises(ServiceError, match="not ready"):
        streaming.query(mixed_workload)
    with pytest.raises(ServiceError, match="no reports"):
        streaming.refinalize()

    static = QueryService(Uniform(1.0).fit(serving_dataset))
    with pytest.raises(ServiceError, match="static"):
        static.ingest(serving_dataset.values[:10])
    with pytest.raises(ServiceError, match="static"):
        static.refinalize()

    with pytest.raises(ValueError, match="non-shardable"):
        QueryService("MSW", 1.0)
    with pytest.raises(ValueError, match="incremental ingest"):
        QueryService(MSW(1.0))
    with pytest.raises(ValueError, match="refinalize_every"):
        QueryService("TDG", 1.0, refinalize_every=0)

    no_domain = QueryService("TDG", 1.0)
    with pytest.raises(ServiceError, match="domain_size"):
        no_domain.ingest([[1, 2, 3]])


def test_static_service_serves_any_fitted_mechanism(serving_dataset,
                                                    mixed_workload):
    mechanism = MSW(1.0, seed=0).fit(serving_dataset)
    service = QueryService(mechanism)
    assert service.status()["mode"] == "static"
    assert np.array_equal(service.query(mixed_workload),
                          mechanism.answer_workload(mixed_workload))


def test_service_snapshot_restores_answers_and_pending_reports(
        tmp_path, serving_dataset, mixed_workload):
    service = QueryService("HDG", 1.0, seed=2, domain_size=16,
                           total_users=serving_dataset.n_users)
    service.ingest(serving_dataset.values[:1_200])
    service.refinalize()
    service.ingest(serving_dataset.values[1_200:1_800])  # pending reports

    info = service.save_snapshot(tmp_path / "svc")
    restored = QueryService.from_snapshot(tmp_path / "svc")
    assert info.version == 1
    assert restored.reports_ingested == 1_800
    assert restored.reports_since_finalize == 600
    assert np.array_equal(service.query(mixed_workload),
                          restored.query(mixed_workload))

    # The pending accumulators and the collector RNG stream travel in
    # the snapshot, so identical post-restore ingests stay bitwise
    # identical to the original service's.
    tail = serving_dataset.values[1_800:]
    service.ingest(tail)
    restored.ingest(tail)
    service.refinalize()
    restored.refinalize()
    assert np.array_equal(service.query(mixed_workload),
                          restored.query(mixed_workload))


def test_service_snapshot_of_static_service(tmp_path, serving_dataset,
                                            mixed_workload):
    service = QueryService(LHIO(1.0, seed=4).fit(serving_dataset))
    service.save_snapshot(tmp_path)
    restored = QueryService.from_snapshot(SnapshotStore(tmp_path))
    assert restored.status()["mode"] == "static"
    assert np.array_equal(service.query(mixed_workload),
                          restored.query(mixed_workload))


def test_service_rejects_foreign_snapshot_documents():
    with pytest.raises(ValueError, match="format"):
        QueryService.from_state_dict({"format": "other"})
    with pytest.raises(ValueError, match="neither"):
        QueryService.from_state_dict({"format": "repro.service-snapshot",
                                      "version": 1, "mechanism": "TDG",
                                      "epsilon": 1.0, "estimator": None,
                                      "collector_config": None})


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def test_query_wire_forms_are_equivalent():
    as_dict = query_from_wire({"predicates": [
        {"attribute": 1, "low": 2, "high": 5}, [0, 0, 3]]})
    as_list = query_from_wire([[1, 2, 5], [0, 0, 3]])
    assert as_dict == as_list
    assert query_from_wire(query_to_wire(as_dict)) == as_dict
    assert len(queries_from_wire([[[0, 1, 2]], [[1, 0, 0]]])) == 2


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
@pytest.fixture()
def http_service(serving_dataset, tmp_path):
    service = QueryService("TDG", 1.0, seed=9, domain_size=16)
    service.ingest(serving_dataset.values[:1_000])
    service.refinalize()
    store = SnapshotStore(tmp_path / "http-snaps")
    server = build_server(service, port=0, snapshot_store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield service, server.server_address[1]
    server.shutdown()
    server.server_close()


def _http(port: int, path: str, payload: dict | None = None) -> dict:
    url = f"http://127.0.0.1:{port}{path}"
    data = None if payload is None else json.dumps(payload).encode()
    with urllib.request.urlopen(urllib.request.Request(url, data=data),
                                timeout=10) as response:
        return json.loads(response.read())


def _http_error(port: int, path: str, payload: dict | None = None) -> tuple:
    try:
        _http(port, path, payload)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError("expected an HTTP error")


def test_http_healthz_ingest_query_snapshot(http_service, mixed_workload):
    service, port = http_service
    health = _http(port, "/healthz")
    assert health["status"] == "ok" and health["ready"]

    receipt = _http(port, "/ingest",
                    {"rows": [[1, 2, 3], [4, 5, 6]], "domain_size": 16})
    assert receipt["ingested"] == 2

    wire = [query_to_wire(query) for query in mixed_workload]
    answers = _http(port, "/query", {"queries": wire})["answers"]
    assert np.array_equal(np.asarray(answers), service.query(mixed_workload))

    written = _http(port, "/snapshot", {})
    assert written["version"] == 1
    listing = _http(port, "/snapshot")
    assert listing["versions"] == [1] and listing["latest"] == 1

    refinalized = _http(port, "/refinalize", {})
    assert refinalized["reports_since_finalize"] == 0


def test_http_error_statuses(http_service):
    _, port = http_service
    assert _http_error(port, "/nope", {})[0] == 404
    code, body = _http_error(port, "/query", {"wrong": []})
    assert code == 400 and "bad request" in body["error"]
    code, body = _http_error(port, "/query",
                             {"queries": [[[9, 0, 1]]]})  # bad attribute
    assert code == 400


def test_http_batched_workloads_match_single_requests(http_service,
                                                      mixed_workload):
    service, port = http_service
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(77))
    first = [query_to_wire(query) for query in mixed_workload]
    second = [query_to_wire(query)
              for query in generator.mixed_workload(7, 2, 0.5)]

    batched = _http(port, "/query", {"workloads": [first, second]})
    singles = [_http(port, "/query", {"queries": wire})
               for wire in (first, second)]
    assert batched["count"] == len(first) + len(second)
    assert batched["workloads"] == singles


def test_http_batched_workloads_reject_bad_shapes(http_service):
    _, port = http_service
    code, body = _http_error(port, "/query",
                             {"workloads": [[[0, 0, 1]]],
                              "queries": [[[0, 0, 1]]]})
    assert code == 400 and "not both" in body["error"]
    assert body["code"] == "bad-request"
    code, body = _http_error(port, "/query", {"workloads": "nope"})
    assert code == 400 and "list of query lists" in body["error"]
    code, body = _http_error(port, "/query", {})
    assert code == 400 and "'queries'" in body["error"]


def test_http_malformed_json_is_400_not_500(http_service):
    """Regression: a non-JSON body used to escape as a 500/traceback."""
    _, port = http_service
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/query", data=b"{not json",
        headers={"Content-Type": "application/json"})
    try:
        urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        assert error.code == 400
        assert "invalid JSON body" in body["error"]
        assert body["code"] == "bad-request"
    else:
        raise AssertionError("expected HTTP 400")
    # A JSON body that is not an object gets the same treatment.
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/query", data=b"[1, 2]",
        headers={"Content-Type": "application/json"})
    try:
        urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        assert error.code == 400 and body["code"] == "bad-request"
        assert "must be a JSON object" in body["error"]
    else:
        raise AssertionError("expected HTTP 400")


def test_http_unknown_query_type_is_400_with_structured_body(http_service):
    """Regression: an unknown query "type" must be a structured 400."""
    _, port = http_service
    code, body = _http_error(
        port, "/query", {"queries": [{"type": "frobnicate"}]})
    assert code == 400
    assert "unknown query type" in body["error"]
    assert body["code"] == "bad-request"


def test_http_error_bodies_carry_machine_codes(http_service):
    _, port = http_service
    code, body = _http_error(port, "/nope", {})
    assert code == 404 and body["code"] == "not-found"
    code, body = _http_error(port, "/query",
                             {"queries": [{"type": "frobnicate"}]})
    assert code == 400 and body["code"] == "bad-request"


def test_http_healthz_reports_plan_cache(http_service, mixed_workload):
    service, port = http_service
    _http(port, "/query",
          {"queries": [query_to_wire(query) for query in mixed_workload]})
    cache = _http(port, "/healthz")["plan_cache"]
    assert cache["capacity"] >= 1
    assert cache["hits"] + cache["misses"] >= 1


def test_http_keep_alive_serves_many_requests_per_connection(http_service,
                                                             mixed_workload):
    import http.client

    service, port = http_service
    wire = [query_to_wire(query) for query in mixed_workload]
    expected = service.query_wire(wire)
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        for _ in range(3):
            connection.request("POST", "/query",
                               body=json.dumps({"queries": wire}),
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read()) == json.loads(
                json.dumps(expected))
    finally:
        connection.close()


def test_http_concurrent_queries_no_cross_request_bleed(http_service):
    service, port = http_service
    generator = WorkloadGenerator(3, 16, rng=np.random.default_rng(123))
    workloads = [[query_to_wire(query)
                  for query in generator.mixed_workload(5, 2, 0.5)]
                 for _ in range(4)]
    expected = [service.query_wire(wire) for wire in workloads]
    failures: list[str] = []
    barrier = threading.Barrier(8)

    def worker(index: int) -> None:
        wire = workloads[index % len(workloads)]
        reference = expected[index % len(workloads)]
        barrier.wait()
        for _ in range(4):
            answered = _http(port, "/query", {"queries": wire})
            if answered != json.loads(json.dumps(reference)):
                failures.append(f"thread {index} got a foreign answer")
                return

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]


def test_build_server_workers_argument(serving_dataset):
    service = QueryService("TDG", 1.0, seed=9, domain_size=16)
    with pytest.raises(ValueError, match="workers"):
        build_server(service, port=0, workers=0)
    server = build_server(service, port=0, workers=2)
    try:
        assert server.workers == 2
    finally:
        server.server_close()


def test_handler_crash_releases_worker_and_logs_peer(serving_dataset, caplog):
    import logging
    import socket

    service = QueryService("TDG", 1.0, seed=9, domain_size=16)
    service.ingest(serving_dataset.values[:200])
    service.refinalize()
    server = build_server(service, port=0, workers=1)
    handler_cls = server.RequestHandlerClass
    original_do_get = handler_cls.do_GET

    def crashing_do_get(self):
        if self.path == "/boom":
            raise RuntimeError("injected handler crash")
        original_do_get(self)

    handler_cls.do_GET = crashing_do_get
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        port = server.server_address[1]
        with caplog.at_level(logging.WARNING, logger="repro.serving"):
            crasher = socket.create_connection(("127.0.0.1", port),
                                               timeout=10)
            crasher.sendall(b"GET /boom HTTP/1.1\r\nHost: x\r\n\r\n")
            # The socket is shut down cleanly (EOF), not left hanging.
            assert crasher.recv(4096) == b""
            crasher.close()
        assert any("aborted" in record.message
                   and "injected handler crash" in record.getMessage()
                   for record in caplog.records)
        # The single pool worker survived the crash and keeps serving.
        for _ in range(3):
            assert _http(port, "/healthz")["status"] == "ok"
        # The crashed connection released its admission slot (the last
        # healthz keep-alive may still be draining, hence <= 1).
        assert server.load_status()["in_flight"] <= 1
    finally:
        server.shutdown()
        server.server_close()


def test_idle_keep_alive_connection_releases_worker(serving_dataset):
    import socket

    service = QueryService("TDG", 1.0, seed=9, domain_size=16)
    service.ingest(serving_dataset.values[:200])
    service.refinalize()
    server = build_server(service, port=0, workers=1, handler_timeout=0.3)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        port = server.server_address[1]
        # A stalled keep-alive client holds the only worker...
        staller = socket.create_connection(("127.0.0.1", port), timeout=10)
        staller.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        response = staller.recv(65536)
        assert b"200" in response.split(b"\r\n", 1)[0]
        # ...then idles.  The idle timeout must release the worker so
        # this concurrent request is answered, not starved forever.
        assert _http(port, "/healthz")["status"] == "ok"
        staller.close()
    finally:
        server.shutdown()
        server.server_close()


def test_http_not_ready_is_conflict(tmp_path):
    service = QueryService("TDG", 1.0, domain_size=16)
    server = build_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        port = server.server_address[1]
        code, body = _http_error(port, "/query", {"queries": [[[0, 0, 1]]]})
        assert code == 409 and "not ready" in body["error"]
        assert body["code"] == "conflict"
        assert _http_error(port, "/snapshot", {})[0] == 409  # no store
    finally:
        server.shutdown()
        server.server_close()


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def test_cli_snapshot_create_list_inspect(tmp_path, capsys):
    directory = str(tmp_path / "store")
    assert main(["snapshot", "create", "--dir", directory,
                 "--mechanism", "TDG", "--n-users", "2000",
                 "--n-attributes", "3", "--domain-size", "16"]) == 0
    assert "wrote snapshot version 1" in capsys.readouterr().out
    assert main(["snapshot", "list", "--dir", directory]) == 0
    assert "<- latest" in capsys.readouterr().out
    assert main(["snapshot", "inspect", "--dir", directory]) == 0
    output = capsys.readouterr().out
    assert "mechanism=TDG" in output and "estimator=present" in output


def test_cli_snapshot_list_empty_store(tmp_path, capsys):
    assert main(["snapshot", "list", "--dir", str(tmp_path)]) == 0
    assert "no snapshots" in capsys.readouterr().out


def test_cli_serve_restore_smoke(tmp_path, capsys):
    """serve binds, restores the stored service and exits (0 requests)."""
    directory = str(tmp_path / "store")
    main(["snapshot", "create", "--dir", directory, "--mechanism", "TDG",
          "--n-users", "2000", "--n-attributes", "3",
          "--domain-size", "16"])
    capsys.readouterr()
    assert main(["serve", "--restore", "--snapshot-dir", directory,
                 "--port", "0", "--max-requests", "0"]) == 0
    output = capsys.readouterr().out
    assert "serving TDG" in output and "ready=True" in output


def test_cli_serve_requires_store_for_restore(capsys):
    assert main(["serve", "--restore", "--port", "0",
                 "--max-requests", "0"]) == 2
    assert "--restore requires" in capsys.readouterr().err


def test_cli_clean_errors_on_missing_snapshots(tmp_path, capsys):
    """Empty stores and missing versions exit 2 with a message, no traceback."""
    directory = str(tmp_path / "empty")
    assert main(["serve", "--restore", "--snapshot-dir", directory,
                 "--port", "0", "--max-requests", "0"]) == 2
    assert "cannot restore" in capsys.readouterr().err
    assert main(["snapshot", "inspect", "--dir", directory]) == 2
    assert "empty" in capsys.readouterr().err
