"""Wall-clock of a parameter sweep vs executor worker count, plus caching.

Runs the paper's canonical 4-point epsilon sweep through the experiment
executor at ``n_jobs`` in {1, 2, 4}, checks that every parallel result
is bit-for-bit identical to the sequential one, then re-runs the sweep
against a warm on-disk cache to show the all-hits path.  The full run
asserts a >= 3x speedup at ``n_jobs=4`` when the machine actually has
four cores (the cell grid is embarrassingly parallel); ``--smoke``
shrinks the configuration and skips the assertion for CI runners.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py
    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --smoke

Every run appends a record to the ``BENCH_fit.json`` trajectory
artifact at the repository root.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _scale import append_trajectory, report  # noqa: E402

from repro.experiments import (ExperimentConfig, ResultCache, clear_memos,  # noqa: E402
                               sweep_parameter)

EPSILONS = [0.2, 0.5, 1.0, 2.0]
JOB_COUNTS = (1, 2, 4)


def time_sweep(config: ExperimentConfig, n_jobs: int,
               cache: ResultCache | None = None):
    """Wall-clock seconds and results of one sweep run from a cold memo."""
    clear_memos()
    start = time.perf_counter()
    sweep = sweep_parameter(config.with_overrides(n_jobs=n_jobs), "epsilon",
                            EPSILONS, cache=cache)
    return time.perf_counter() - start, sweep


def assert_identical(baseline, candidate, label: str, failures: list[str]):
    for left, right in zip(baseline.results, candidate.results):
        for method in left.config.methods:
            if left.methods[method].mae != right.methods[method].mae:
                failures.append(f"{label}: {method} MAE differs from sequential")
            elif not np.array_equal(left.methods[method].per_query_errors,
                                    right.methods[method].per_query_errors):
                failures.append(
                    f"{label}: {method} per-query errors differ from sequential")


def run(n_users: int, n_queries: int, methods: tuple[str, ...],
        n_attributes: int, domain_size: int, seed: int,
        smoke: bool) -> tuple[str, dict]:
    config = ExperimentConfig(dataset="normal", n_users=n_users,
                              n_attributes=n_attributes,
                              domain_size=domain_size, n_queries=n_queries,
                              methods=methods, seed=seed)
    lines = [f"sweep scaling: 4-point epsilon sweep, n={n_users} "
             f"d={n_attributes} c={domain_size} |Q|={n_queries} "
             f"methods={','.join(methods)} (cpu_count={os.cpu_count()})",
             f"{'n_jobs':>8}  {'seconds':>9}  {'speedup':>8}"]
    failures: list[str] = []
    seconds_by_jobs: dict[int, float] = {}
    baseline = None
    for n_jobs in JOB_COUNTS:
        seconds, sweep = time_sweep(config, n_jobs)
        seconds_by_jobs[n_jobs] = seconds
        if baseline is None:
            baseline = sweep
        else:
            assert_identical(baseline, sweep, f"n_jobs={n_jobs}", failures)
        speedup = seconds_by_jobs[1] / seconds
        lines.append(f"{n_jobs:>8}  {seconds:>9.2f}  {speedup:>7.2f}x")

    with tempfile.TemporaryDirectory() as cache_dir:
        warm_seconds, _ = time_sweep(config, 1, cache=ResultCache(cache_dir))
        cache = ResultCache(cache_dir)
        cached_seconds, cached = time_sweep(config, 1, cache=cache)
        assert_identical(baseline, cached, "cached", failures)
        if cache.misses:
            failures.append(
                f"cached re-run had {cache.misses} misses (expected all hits)")
    lines.append(f"{'cached':>8}  {cached_seconds:>9.2f}  "
                 f"{seconds_by_jobs[1] / cached_seconds:>7.2f}x "
                 f"({cache.hits} cache hits)")

    speedup_at_4 = seconds_by_jobs[1] / seconds_by_jobs[4]
    if not smoke and (os.cpu_count() or 1) >= 4 and speedup_at_4 < 3.0:
        failures.append(
            f"n_jobs=4 only {speedup_at_4:.2f}x over sequential on a "
            f"{os.cpu_count()}-core machine (expected >= 3x)")
    if not smoke and (os.cpu_count() or 1) < 4:
        lines.append(f"(speedup assertion skipped: only {os.cpu_count()} "
                     "core(s) available)")

    text = "\n".join(lines)
    entry = {
        "n_users": n_users,
        "n_queries": n_queries,
        "methods": list(methods),
        "epsilons": EPSILONS,
        "cpu_count": os.cpu_count(),
        "smoke": smoke,
        "seconds_by_n_jobs": {str(jobs): round(seconds, 4)
                              for jobs, seconds in seconds_by_jobs.items()},
        "cached_rerun_seconds": round(cached_seconds, 4),
        "speedup_at_4_jobs": round(speedup_at_4, 3),
    }
    if failures:
        raise SystemExit(text + "\n\nFAILURES:\n" + "\n".join(failures))
    return text, entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI: checks parallel == "
                             "sequential and the all-hits cached path, skips "
                             "the speedup assertion")
    parser.add_argument("--n-users", type=int, default=None)
    parser.add_argument("--n-queries", type=int, default=None)
    parser.add_argument("--methods", nargs="+", default=None)
    parser.add_argument("--n-attributes", type=int, default=None)
    parser.add_argument("--domain-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n_users = args.n_users or (3_000 if args.smoke else 100_000)
    n_queries = args.n_queries or (10 if args.smoke else 100)
    methods = tuple(args.methods) if args.methods else (
        ("Uni", "TDG") if args.smoke else ("Uni", "MSW", "CALM", "TDG", "HDG"))
    n_attributes = args.n_attributes or (3 if args.smoke else 6)
    domain_size = args.domain_size or (16 if args.smoke else 64)
    text, entry = run(n_users, n_queries, methods, n_attributes, domain_size,
                      args.seed, smoke=args.smoke)
    report("sweep_scaling", text)
    append_trajectory("sweep_scaling", entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
