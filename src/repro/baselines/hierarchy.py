"""Interval hierarchies used by the HIO and LHIO baselines (Section 3.3-3.4).

A 1-D hierarchy over the domain ``[c]`` with branching factor ``b`` is a
complete ``b``-ary tree of intervals: the root (level 0) covers the whole
domain and every node is split into ``b`` equal sub-intervals until the
leaves (level ``h = log_b c``) cover single values.  Answering a range
query requires decomposing an arbitrary interval into the least number of
hierarchy nodes, which is the classic canonical-cover recursion.
"""

from __future__ import annotations

from dataclasses import dataclass


def effective_branching(domain_size: int, branching: int) -> int:
    """Largest branching factor ``b' <= branching`` with ``domain_size = b'^h``.

    The paper uses ``b = 4``; for power-of-two domains that are not powers
    of four (e.g. 32, 128) the hierarchy silently falls back to ``b = 2``
    so the tree stays complete.
    """
    if domain_size < 2:
        raise ValueError("domain_size must be >= 2")
    for candidate in range(min(branching, domain_size), 1, -1):
        size = domain_size
        while size % candidate == 0 and size > 1:
            size //= candidate
        if size == 1:
            return candidate
    raise ValueError(f"domain size {domain_size} has no valid branching factor")


@dataclass(frozen=True)
class HierarchyNode:
    """One node of a 1-D hierarchy: ``(level, index)`` covering a value range."""

    level: int
    index: int
    low: int
    high: int


class IntervalHierarchy:
    """Complete ``b``-ary hierarchy of intervals over ``[0, domain_size)``.

    Parameters
    ----------
    domain_size:
        Domain size ``c``; must be a power of the (effective) branching.
    branching:
        Requested branching factor ``b`` (adjusted downward if needed so
        that the tree is complete).
    """

    def __init__(self, domain_size: int, branching: int = 4):
        self.domain_size = int(domain_size)
        self.branching = effective_branching(self.domain_size, int(branching))
        height = 0
        size = self.domain_size
        while size > 1:
            size //= self.branching
            height += 1
        self.height = height
        # Workloads re-decompose the same handful of intervals over and
        # over (every unrestricted attribute decomposes to the root), so
        # the canonical covers are memoised per interval.
        self._decompose_cache: dict[tuple[int, int], list[HierarchyNode]] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of levels including the root (``h + 1``)."""
        return self.height + 1

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at a level (``b^level``)."""
        self._check_level(level)
        return self.branching ** level

    def node_width(self, level: int) -> int:
        """Number of domain values covered by one node of a level."""
        self._check_level(level)
        return self.domain_size // (self.branching ** level)

    def node(self, level: int, index: int) -> HierarchyNode:
        """The node object at ``(level, index)``."""
        width = self.node_width(level)
        if not 0 <= index < self.nodes_at_level(level):
            raise ValueError(f"index {index} out of range at level {level}")
        low = index * width
        return HierarchyNode(level=level, index=index, low=low, high=low + width - 1)

    def node_containing(self, level: int, value: int) -> int:
        """Index of the level-``level`` node containing a domain value."""
        if not 0 <= value < self.domain_size:
            raise ValueError(f"value {value} outside the domain")
        return value // self.node_width(level)

    # ------------------------------------------------------------------
    # Interval decomposition
    # ------------------------------------------------------------------
    def decompose(self, low: int, high: int) -> list[HierarchyNode]:
        """Least set of hierarchy nodes whose disjoint union is ``[low, high]``.

        Canonical-cover recursion: a node entirely inside the interval is
        taken whole; a node straddling the boundary recurses into its
        children; disjoint nodes are skipped.
        """
        if not 0 <= low <= high < self.domain_size:
            raise ValueError(f"invalid interval [{low}, {high}]")
        key = (int(low), int(high))
        cached = self._decompose_cache.get(key)
        if cached is None:
            cached = []
            self._cover(self.node(0, 0), low, high, cached)
            self._decompose_cache[key] = cached
        return list(cached)

    def _cover(self, node: HierarchyNode, low: int, high: int,
               out: list[HierarchyNode]) -> None:
        if node.high < low or node.low > high:
            return
        if low <= node.low and node.high <= high:
            out.append(node)
            return
        if node.level == self.height:
            # A leaf that straddles the boundary cannot exist (leaves cover
            # single values), but guard against it anyway.
            if low <= node.low <= high:
                out.append(node)
            return
        child_width = self.node_width(node.level + 1)
        first_child = node.low // child_width
        for offset in range(self.branching):
            self._cover(self.node(node.level + 1, first_child + offset),
                        low, high, out)

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.height:
            raise ValueError(f"level {level} out of range [0, {self.height}]")
