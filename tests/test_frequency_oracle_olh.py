"""Tests for Optimized Local Hash (both execution modes)."""

import math

import numpy as np
import pytest

from repro.frequency_oracles import OptimizedLocalHash, olh_variance


@pytest.fixture
def skewed_values(rng):
    probabilities = np.array([0.3, 0.25, 0.15, 0.1, 0.07, 0.05, 0.04, 0.04])
    return rng.choice(8, size=40_000, p=probabilities)


def test_hash_range_defaults_to_e_eps_plus_one():
    oracle = OptimizedLocalHash(1.0, 100)
    assert oracle.hash_range == int(round(math.e)) + 1
    oracle_small = OptimizedLocalHash(0.1, 100)
    assert oracle_small.hash_range >= 2


def test_fast_mode_estimates_unbiased(skewed_values, rng):
    oracle = OptimizedLocalHash(1.0, 8, rng=rng, mode="fast")
    estimates = oracle.estimate_frequencies(skewed_values)
    true = np.bincount(skewed_values, minlength=8) / skewed_values.size
    assert np.abs(estimates - true).max() < 0.03


def test_user_mode_estimates_unbiased(rng):
    values = rng.choice(6, size=4_000, p=[0.4, 0.25, 0.15, 0.1, 0.06, 0.04])
    oracle = OptimizedLocalHash(1.5, 6, rng=rng, mode="user")
    estimates = oracle.estimate_frequencies(values)
    true = np.bincount(values, minlength=6) / values.size
    assert np.abs(estimates - true).max() < 0.08


def test_variance_formula_matches_equation_3():
    assert olh_variance(1.0, 1000) == pytest.approx(
        4 * math.e / ((math.e - 1) ** 2 * 1000))
    oracle = OptimizedLocalHash(1.0, 64)
    assert oracle.variance(1000) == pytest.approx(olh_variance(1.0, 1000))


def test_variance_independent_of_domain_size():
    small = OptimizedLocalHash(1.0, 8)
    large = OptimizedLocalHash(1.0, 4096)
    assert small.variance(1000) == pytest.approx(large.variance(1000))


def test_fast_mode_empirical_variance_close_to_theory():
    epsilon, c, n = 1.0, 16, 20_000
    rng = np.random.default_rng(1)
    values = rng.integers(0, c, size=n)
    estimates = []
    for seed in range(40):
        oracle = OptimizedLocalHash(epsilon, c, rng=np.random.default_rng(seed),
                                    mode="fast")
        estimates.append(oracle.estimate_frequencies(values)[0])
    empirical = np.var(estimates)
    theoretical = olh_variance(epsilon, n)
    assert empirical == pytest.approx(theoretical, rel=0.6)


def test_higher_epsilon_reduces_error(skewed_values):
    true = np.bincount(skewed_values, minlength=8) / skewed_values.size
    errors = []
    for epsilon in (0.2, 2.0):
        maes = []
        for seed in range(5):
            oracle = OptimizedLocalHash(epsilon, 8,
                                        rng=np.random.default_rng(seed))
            maes.append(np.abs(oracle.estimate_frequencies(skewed_values) - true).mean())
        errors.append(np.mean(maes))
    assert errors[1] < errors[0]


def test_perturb_reports_in_hash_range(rng):
    oracle = OptimizedLocalHash(1.0, 32, rng=rng, mode="user")
    _, _, reports = oracle.perturb(rng.integers(0, 32, size=2_000))
    assert reports.min() >= 0
    assert reports.max() < oracle.hash_range


def test_large_domain_handled_by_fast_mode(rng):
    oracle = OptimizedLocalHash(1.0, 4096, rng=rng, mode="fast")
    values = rng.integers(0, 4096, size=30_000)
    estimates = oracle.estimate_frequencies(values)
    assert estimates.shape == (4096,)
    assert np.isfinite(estimates).all()


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        OptimizedLocalHash(1.0, 8, mode="bogus")


def test_estimates_roughly_sum_to_one(skewed_values, rng):
    oracle = OptimizedLocalHash(1.0, 8, rng=rng, mode="fast")
    estimates = oracle.estimate_frequencies(skewed_values)
    assert estimates.sum() == pytest.approx(1.0, abs=0.1)


# ----------------------------------------------------------------------
# Chunked user-mode aggregation (memory at paper scale)
# ----------------------------------------------------------------------
def test_count_supports_chunking_is_exact(rng):
    # Chunked support counting must produce the *identical* counts as the
    # one-shot n x c matrix: the counts are deterministic in (a, b, reports).
    oracle_big = OptimizedLocalHash(1.0, 64, rng=rng, mode="user",
                                    support_chunk_elements=1 << 30)
    values = rng.integers(0, 64, size=3_000)
    a, b, reports = oracle_big.perturb(values)
    one_shot = oracle_big.count_supports(a, b, reports)
    for chunk_elements in (1, 64, 1000, 4096):
        oracle = OptimizedLocalHash(1.0, 64, rng=rng, mode="user",
                                    support_chunk_elements=chunk_elements)
        chunked = oracle.count_supports(a, b, reports)
        np.testing.assert_array_equal(chunked.supports, one_shot.supports)
        assert chunked.n_reports == one_shot.n_reports


def test_count_supports_empty_reports(rng):
    oracle = OptimizedLocalHash(1.0, 16, rng=rng, mode="user")
    empty = np.array([], dtype=np.int64)
    accumulator = oracle.count_supports(empty.astype(np.uint64),
                                        empty.astype(np.uint64), empty)
    assert accumulator.n_reports == 0
    np.testing.assert_array_equal(accumulator.supports, np.zeros(16))


def test_support_chunk_elements_validated(rng):
    with pytest.raises(ValueError):
        OptimizedLocalHash(1.0, 16, rng=rng, support_chunk_elements=0)


def test_user_mode_memory_stays_bounded(rng):
    # With a small chunk budget the oracle never materialises the full
    # n x c hash matrix; the estimates still behave like user mode.
    oracle = OptimizedLocalHash(2.0, 32, rng=rng, mode="user",
                                support_chunk_elements=256)
    values = rng.integers(0, 32, size=20_000)
    estimates = oracle.estimate_frequencies(values)
    truth = np.bincount(values, minlength=32) / values.size
    assert np.abs(estimates - truth).max() < 0.05
