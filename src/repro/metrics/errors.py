"""Accuracy metrics used in the evaluation.

The paper reports the Mean Absolute Error (MAE) over a workload of range
queries, and the appendix additionally inspects the distribution of
per-query absolute errors (Figures 9-10).  Both are provided here along
with small helpers for aggregating repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def absolute_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Per-query absolute error ``|f_q - f̄_q|``."""
    estimates = np.asarray(estimates, dtype=float)
    truths = np.asarray(truths, dtype=float)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"estimates shape {estimates.shape} != truths shape {truths.shape}")
    return np.abs(estimates - truths)


def mean_absolute_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """MAE over a query workload (the paper's headline metric)."""
    return float(absolute_errors(estimates, truths).mean())


def mean_squared_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """MSE over a query workload (used in the error analysis discussion)."""
    errors = absolute_errors(estimates, truths)
    return float((errors ** 2).mean())


@dataclass
class RepeatedRunSummary:
    """Mean and standard deviation of a metric across repeated runs."""

    mean: float
    std: float
    n_runs: int

    @classmethod
    def from_values(cls, values: list[float]) -> "RepeatedRunSummary":
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            raise ValueError("need at least one run")
        return cls(mean=float(array.mean()),
                   std=float(array.std(ddof=0)),
                   n_runs=int(array.size))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.5f} ± {self.std:.5f} (n={self.n_runs})"


def error_histogram(errors: np.ndarray, n_bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-query errors (Figures 9-10 style)."""
    errors = np.asarray(errors, dtype=float)
    counts, edges = np.histogram(errors, bins=n_bins)
    return counts, edges
