"""Tests for the HIO and LHIO baselines."""

import numpy as np
import pytest

from repro.baselines import HIO, LHIO, Uniform
from repro.metrics import mean_absolute_error
from repro.queries import RangeQuery, WorkloadGenerator, answer_workload


@pytest.fixture
def hio(tiny_dataset):
    return HIO(epsilon=2.0, branching=4, seed=0).fit(tiny_dataset)


@pytest.fixture
def lhio(small_dataset):
    return LHIO(epsilon=2.0, branching=4, seed=0).fit(small_dataset)


# ----------------------------------------------------------------------
# HIO
# ----------------------------------------------------------------------
def test_hio_group_partition_covers_all_users(hio, tiny_dataset):
    levels = hio.hierarchy.n_levels ** tiny_dataset.n_attributes
    assert hio._group_offsets.shape == (levels + 1,)
    assert hio._group_offsets[-1] == tiny_dataset.n_users


def test_hio_answers_are_finite(hio, tiny_dataset):
    generator = WorkloadGenerator(tiny_dataset.n_attributes,
                                  tiny_dataset.domain_size,
                                  rng=np.random.default_rng(0))
    queries = generator.random_workload(10, 2, 0.5)
    answers = hio.answer_workload(queries)
    assert np.isfinite(answers).all()


def test_hio_full_domain_query_positive(hio, tiny_dataset):
    c = tiny_dataset.domain_size
    query = RangeQuery.from_dict({0: (0, c - 1)})
    # The full-domain query decomposes to the all-root level, whose group
    # still carries noise, so only a loose check is possible.
    assert -2.0 < hio.answer(query) < 4.0


def test_hio_noisier_than_lhio(small_dataset, workload_2d):
    # The curse of dimensionality: HIO's (h+1)^d groups are far smaller than
    # LHIO's C(d,2)*(h+1)^2 groups, so its error is much larger.
    truths = answer_workload(small_dataset, workload_2d)
    hio = HIO(epsilon=1.0, branching=4, seed=0).fit(small_dataset)
    lhio = LHIO(epsilon=1.0, branching=4, seed=0).fit(small_dataset)
    mae_hio = mean_absolute_error(hio.answer_workload(workload_2d), truths)
    mae_lhio = mean_absolute_error(lhio.answer_workload(workload_2d), truths)
    assert mae_lhio < mae_hio


def test_hio_lazy_levels_cached(hio, tiny_dataset):
    c = tiny_dataset.domain_size
    query = RangeQuery.from_dict({0: (1, c - 2), 1: (1, c - 2), 2: (1, c - 2)})
    first = hio.answer(query)
    second = hio.answer(query)
    # Lazy noisy lookups are cached, so answering twice is deterministic.
    assert first == pytest.approx(second)


# ----------------------------------------------------------------------
# LHIO
# ----------------------------------------------------------------------
def test_lhio_builds_one_hierarchy_per_pair(lhio, small_dataset):
    d = small_dataset.n_attributes
    assert len(lhio._pairs) == d * (d - 1) // 2


def test_lhio_levels_have_expected_shapes(lhio):
    hierarchy = lhio.hierarchy
    pair = next(iter(lhio._pairs.values()))
    for (l1, l2), values in pair.levels.items():
        assert values.shape == (hierarchy.nodes_at_level(l1),
                                hierarchy.nodes_at_level(l2))


def test_lhio_consistency_levels_agree(lhio):
    # After constrained inference each coarser level equals the aggregation
    # of the leaf level along both axes.
    hierarchy = lhio.hierarchy
    pair = next(iter(lhio._pairs.values()))
    h = hierarchy.height
    leaf = pair.levels[(h, h)]
    root = pair.levels[(0, 0)]
    assert root[0, 0] == pytest.approx(leaf.sum(), abs=1e-6)


def test_lhio_beats_uniform_on_correlated_data(small_dataset, workload_2d):
    truths = answer_workload(small_dataset, workload_2d)
    lhio = LHIO(epsilon=2.0, seed=1).fit(small_dataset)
    uni = Uniform().fit(small_dataset)
    mae_lhio = mean_absolute_error(lhio.answer_workload(workload_2d), truths)
    mae_uni = mean_absolute_error(uni.answer_workload(workload_2d), truths)
    assert mae_lhio < mae_uni


def test_lhio_consistency_improves_over_no_consistency(small_dataset, workload_2d):
    truths = answer_workload(small_dataset, workload_2d)
    maes_with, maes_without = [], []
    for seed in range(3):
        with_ci = LHIO(epsilon=0.5, seed=seed, consistency=True).fit(small_dataset)
        without_ci = LHIO(epsilon=0.5, seed=seed, consistency=False).fit(small_dataset)
        maes_with.append(mean_absolute_error(with_ci.answer_workload(workload_2d),
                                             truths))
        maes_without.append(mean_absolute_error(
            without_ci.answer_workload(workload_2d), truths))
    assert np.mean(maes_with) <= np.mean(maes_without) * 1.1


def test_lhio_higher_dimensional_queries(lhio, small_dataset, workload_3d):
    estimates = lhio.answer_workload(workload_3d)
    assert np.isfinite(estimates).all()


def test_lhio_single_attribute_query(lhio, small_dataset):
    query = RangeQuery.from_dict({0: (0, small_dataset.domain_size // 2 - 1)})
    from repro.queries import answer_query
    truth = answer_query(small_dataset, query)
    assert lhio.answer(query) == pytest.approx(truth, abs=0.25)


def test_lhio_requires_two_attributes(rng):
    from repro.datasets import Dataset
    dataset = Dataset(rng.integers(0, 8, size=(100, 1)), 8)
    with pytest.raises(ValueError):
        LHIO(epsilon=1.0).fit(dataset)
