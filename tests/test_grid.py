"""Tests for the 1-D and 2-D grid primitives."""

import numpy as np
import pytest

from repro.core import Grid1D, Grid2D
from repro.frequency_oracles import OptimizedLocalHash


class _ExactOracle:
    """Noise-free stand-in for a frequency oracle (tests isolation)."""

    def __init__(self, domain_size):
        self.domain_size = domain_size

    def estimate_frequencies(self, values):
        counts = np.bincount(values, minlength=self.domain_size)
        return counts / values.size


# ----------------------------------------------------------------------
# Grid1D
# ----------------------------------------------------------------------
def test_grid1d_cell_geometry():
    grid = Grid1D(attribute=0, domain_size=16, granularity=4)
    assert grid.cell_width == 4
    assert grid.cell_index(0) == 0
    assert grid.cell_index(15) == 3
    assert grid.cell_bounds(1) == (4, 7)


def test_grid1d_requires_divisible_granularity():
    with pytest.raises(ValueError):
        Grid1D(0, 16, 3)
    with pytest.raises(ValueError):
        Grid1D(0, 16, 32)
    with pytest.raises(ValueError):
        Grid1D(0, 16, 0)


def test_grid1d_collect_with_exact_oracle():
    grid = Grid1D(0, 8, 4)
    values = np.array([0, 1, 2, 3, 4, 5, 6, 7])
    grid.collect(values, _ExactOracle(4))
    np.testing.assert_allclose(grid.frequencies, 0.25)


def test_grid1d_collect_checks_oracle_domain():
    grid = Grid1D(0, 8, 4)
    with pytest.raises(ValueError):
        grid.collect(np.array([0, 1]), _ExactOracle(8))


def test_grid1d_answer_full_cells():
    grid = Grid1D(0, 16, 4)
    grid.set_frequencies(np.array([0.1, 0.2, 0.3, 0.4]))
    assert grid.answer_range(0, 7) == pytest.approx(0.3)
    assert grid.answer_range(0, 15) == pytest.approx(1.0)


def test_grid1d_answer_partial_cells_uses_uniformity():
    grid = Grid1D(0, 16, 4)
    grid.set_frequencies(np.array([0.1, 0.2, 0.3, 0.4]))
    # [0, 1] covers half of the first cell.
    assert grid.answer_range(0, 1) == pytest.approx(0.05)
    # [2, 5] covers half of cell 0 and half of cell 1.
    assert grid.answer_range(2, 5) == pytest.approx(0.05 + 0.1)


def test_grid1d_answer_invalid_interval():
    grid = Grid1D(0, 16, 4)
    with pytest.raises(ValueError):
        grid.answer_range(3, 2)
    with pytest.raises(ValueError):
        grid.answer_range(0, 16)


def test_grid1d_set_frequencies_validates_shape():
    grid = Grid1D(0, 16, 4)
    with pytest.raises(ValueError):
        grid.set_frequencies(np.zeros(5))


def test_grid1d_collect_with_olh_is_accurate(rng):
    grid = Grid1D(0, 64, 8)
    cell_probabilities = np.array([0.3, 0.2, 0.15, 0.1, 0.1, 0.05, 0.05, 0.05])
    value_probabilities = np.repeat(cell_probabilities / 8, 8)
    values = rng.choice(64, size=40_000, p=value_probabilities)
    grid.collect(values, OptimizedLocalHash(2.0, 8, rng=rng))
    exact = Grid1D(0, 64, 8)
    exact.collect(values, _ExactOracle(8))
    assert np.abs(grid.frequencies - exact.frequencies).max() < 0.05


# ----------------------------------------------------------------------
# Grid2D
# ----------------------------------------------------------------------
def test_grid2d_cell_geometry():
    grid = Grid2D((0, 1), domain_size=16, granularity=4)
    assert grid.cell_width == 4
    bounds = grid.cell_bounds(1, 2)
    assert bounds == (4, 7, 8, 11)


def test_grid2d_cell_index_flattening():
    grid = Grid2D((0, 1), 8, 2)
    pairs = np.array([[0, 0], [0, 7], [7, 0], [7, 7]])
    np.testing.assert_array_equal(grid.cell_index(pairs), [0, 1, 2, 3])


def test_grid2d_rejects_bad_attributes():
    with pytest.raises(ValueError):
        Grid2D((1, 1), 8, 2)
    with pytest.raises(ValueError):
        Grid2D((0,), 8, 2)


def test_grid2d_collect_with_exact_oracle():
    grid = Grid2D((0, 1), 4, 2)
    pairs = np.array([[0, 0], [0, 3], [3, 0], [3, 3]])
    grid.collect(pairs, _ExactOracle(4))
    np.testing.assert_allclose(grid.frequencies, 0.25)


def test_grid2d_answer_fully_covered():
    grid = Grid2D((0, 1), 8, 2)
    grid.set_frequencies(np.array([[0.1, 0.2], [0.3, 0.4]]))
    assert grid.answer_range((0, 3), (0, 3)) == pytest.approx(0.1)
    assert grid.answer_range((0, 7), (0, 7)) == pytest.approx(1.0)


def test_grid2d_answer_partial_uniform_guess():
    grid = Grid2D((0, 1), 8, 2)
    grid.set_frequencies(np.array([[0.1, 0.2], [0.3, 0.4]]))
    # [0,1]x[0,1] covers a quarter of the first cell (2x2 of 4x4 values).
    assert grid.answer_range((0, 1), (0, 1)) == pytest.approx(0.1 * 4 / 16)


def test_grid2d_answer_partial_with_response_matrix():
    grid = Grid2D((0, 1), 4, 2)
    grid.set_frequencies(np.array([[0.5, 0.0], [0.0, 0.5]]))
    # Response matrix concentrating the first cell's mass on value (0, 0).
    matrix = np.zeros((4, 4))
    matrix[0, 0] = 0.5
    matrix[2:, 2:] = 0.5 / 4
    # Query covering just value (0, 0): partial cell, matrix says all 0.5 there.
    assert grid.answer_range((0, 0), (0, 0), response_matrix=matrix) == pytest.approx(0.5)
    # Query covering value (1, 1): matrix says nothing there.
    assert grid.answer_range((1, 1), (1, 1), response_matrix=matrix) == pytest.approx(0.0)


def test_grid2d_fully_covered_cells_ignore_matrix():
    grid = Grid2D((0, 1), 4, 2)
    grid.set_frequencies(np.array([[0.5, 0.0], [0.0, 0.5]]))
    matrix = np.full((4, 4), 1 / 16)
    # The query covers the first cell entirely: the cell frequency is used,
    # not the matrix content.
    assert grid.answer_range((0, 1), (0, 1), response_matrix=matrix) == pytest.approx(0.5)


def test_grid2d_answer_validates_inputs():
    grid = Grid2D((0, 1), 8, 2)
    with pytest.raises(ValueError):
        grid.answer_range((0, 8), (0, 3))
    with pytest.raises(ValueError):
        grid.answer_range((0, 3), (0, 3), response_matrix=np.zeros((4, 4)))


def test_grid2d_marginal():
    grid = Grid2D((0, 1), 8, 2)
    grid.set_frequencies(np.array([[0.1, 0.2], [0.3, 0.4]]))
    np.testing.assert_allclose(grid.marginal(0), [0.3, 0.7])
    np.testing.assert_allclose(grid.marginal(1), [0.4, 0.6])
    with pytest.raises(ValueError):
        grid.marginal(2)
