"""Tests for the cross-grid consistency step."""

import numpy as np
import pytest

from repro.postprocess import GridView, enforce_attribute_consistency


def test_bucket_totals_1d_view():
    frequencies = np.array([0.1, 0.2, 0.3, 0.4])
    view = GridView(frequencies=frequencies, axis=0, cells_per_bucket=2)
    totals = view.bucket_totals(2)
    np.testing.assert_allclose(totals, [0.3, 0.7])


def test_bucket_totals_2d_view_axis0():
    frequencies = np.arange(4, dtype=float).reshape(2, 2)
    view = GridView(frequencies=frequencies, axis=0, cells_per_bucket=1)
    np.testing.assert_allclose(view.bucket_totals(2), [1.0, 5.0])


def test_bucket_totals_2d_view_axis1():
    frequencies = np.arange(4, dtype=float).reshape(2, 2)
    view = GridView(frequencies=frequencies, axis=1, cells_per_bucket=1)
    np.testing.assert_allclose(view.bucket_totals(2), [2.0, 4.0])


def test_bucket_totals_shape_mismatch():
    view = GridView(frequencies=np.zeros(3), axis=0, cells_per_bucket=2)
    with pytest.raises(ValueError):
        view.bucket_totals(2)


def test_consistency_makes_views_agree():
    # Two 2-D grids sharing an attribute along axis 0 with conflicting
    # marginals for that attribute.
    grid_a = np.array([[0.3, 0.1], [0.2, 0.4]])
    grid_b = np.array([[0.1, 0.1], [0.5, 0.3]])
    views = [GridView(grid_a, axis=0, cells_per_bucket=1),
             GridView(grid_b, axis=0, cells_per_bucket=1)]
    consensus = enforce_attribute_consistency(views, n_buckets=2)
    np.testing.assert_allclose(grid_a.sum(axis=1), consensus)
    np.testing.assert_allclose(grid_b.sum(axis=1), consensus)


def test_consistency_preserves_total_mass():
    grid_a = np.array([[0.3, 0.1], [0.2, 0.4]])
    grid_b = np.array([[0.1, 0.1], [0.5, 0.3]])
    total_before = grid_a.sum() + grid_b.sum()
    views = [GridView(grid_a, axis=0, cells_per_bucket=1),
             GridView(grid_b, axis=0, cells_per_bucket=1)]
    enforce_attribute_consistency(views, n_buckets=2)
    assert grid_a.sum() + grid_b.sum() == pytest.approx(total_before)


def test_weighted_average_prefers_lower_variance_view():
    # A 1-D grid (2 cells per bucket total) versus a wide 2-D grid
    # (4 cells per bucket): the 1-D view has fewer contributing cells and
    # should dominate the consensus.
    grid_1d = np.array([0.1, 0.1, 0.4, 0.4])      # bucket totals 0.2, 0.8
    grid_2d = np.full((2, 4), 0.125)              # bucket totals 0.5, 0.5
    views = [GridView(grid_1d, axis=0, cells_per_bucket=2),
             GridView(grid_2d, axis=0, cells_per_bucket=1)]
    consensus = enforce_attribute_consistency(views, n_buckets=2)
    # Weights: 1-D grid |S| = 2 -> weight 2/3, 2-D grid |S| = 4 -> weight 1/3.
    expected_first = (2 / 3) * 0.2 + (1 / 3) * 0.5
    assert consensus[0] == pytest.approx(expected_first)


def test_consistency_with_single_view_is_identity():
    grid = np.array([[0.25, 0.25], [0.25, 0.25]])
    views = [GridView(grid, axis=0, cells_per_bucket=1)]
    consensus = enforce_attribute_consistency(views, n_buckets=2)
    np.testing.assert_allclose(consensus, [0.5, 0.5])
    np.testing.assert_allclose(grid, 0.25)


def test_empty_views_rejected():
    with pytest.raises(ValueError):
        enforce_attribute_consistency([], n_buckets=2)
