"""ε-LDP categorical frequency oracles (the noise substrate of every method).

Exports
-------
GeneralizedRandomizedResponse
    GRR over a categorical domain (best for small domains).
OptimizedLocalHash
    OLH with faithful per-user and fast aggregate-simulation modes (the
    oracle used by TDG, HDG, CALM, HIO and LHIO).
SquareWave
    SW mechanism for ordinal domains with EM reconstruction (used by MSW).
AdaptiveFrequencyOracle
    Picks GRR or OLH automatically based on the variance crossover.
"""

from .adaptive import AdaptiveFrequencyOracle, choose_oracle_kind
from .base import (FrequencyOracle, SupportAccumulator, grr_variance,
                   olh_variance)
from .grr import GeneralizedRandomizedResponse
from .hashing import UniversalHashFamily
from .olh import OptimizedLocalHash
from .square_wave import SquareWave, squarewave_parameters

__all__ = [
    "AdaptiveFrequencyOracle",
    "FrequencyOracle",
    "GeneralizedRandomizedResponse",
    "OptimizedLocalHash",
    "SquareWave",
    "SupportAccumulator",
    "UniversalHashFamily",
    "choose_oracle_kind",
    "grr_variance",
    "olh_variance",
    "squarewave_parameters",
]
