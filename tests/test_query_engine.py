"""Property tests for the prefix-sum batch query engine.

The engine must reproduce the legacy per-query, per-cell answering path
bit-for-bit (tolerance 1e-9) on randomised grids, intervals, response
matrices and mixed-λ workloads, for the grid mechanisms and every
baseline that answers ranges.
"""

import numpy as np
import pytest

from repro.baselines import CALM, HIO, LHIO, MSW, Uniform
from repro.core import (HDG, TDG, Grid1D, Grid2D, PrefixIndex1D,
                        PrefixIndex2D, SummedAreaTable,
                        estimate_lambda_queries_batched,
                        estimate_lambda_query, prefix_sum_1d,
                        summed_area_table)
from repro.datasets import Dataset
from repro.estimation import (Constraint, weighted_update,
                              weighted_update_batch)
from repro.queries import RangeQuery, WorkloadGenerator


def mixed_workload(n_attributes, domain_size, per_dimension=10, seed=7,
                   dimensions=(1, 2, 3, 4)):
    generator = WorkloadGenerator(n_attributes, domain_size,
                                  rng=np.random.default_rng(seed))
    queries = []
    for dimension in dimensions:
        if dimension <= n_attributes:
            for volume in (0.3, 0.6, 0.9):
                queries.extend(generator.random_workload(per_dimension,
                                                         dimension, volume))
    order = np.random.default_rng(seed + 1).permutation(len(queries))
    return [queries[index] for index in order]


def assert_engine_matches_legacy(mechanism, queries, tolerance=1e-9):
    """Answer the same fitted state through both paths and compare."""
    mechanism.use_legacy_answering = True
    legacy = mechanism.answer_workload(queries)
    mechanism.use_legacy_answering = False
    batch = mechanism.answer_workload(queries)
    np.testing.assert_allclose(batch, legacy, rtol=0.0, atol=tolerance)
    # Single-query answering must agree with the batch path too.
    singles = np.array([mechanism.answer(query) for query in queries])
    np.testing.assert_allclose(singles, legacy, rtol=0.0, atol=tolerance)


# ----------------------------------------------------------------------
# Prefix-sum primitives
# ----------------------------------------------------------------------
def test_prefix_sum_1d_matches_slicing(rng):
    values = rng.normal(size=17)
    prefix = prefix_sum_1d(values)
    for i in range(18):
        assert prefix[i] == pytest.approx(values[:i].sum(), abs=1e-12)


def test_summed_area_table_matches_slicing(rng):
    matrix = rng.normal(size=(9, 13))
    table = summed_area_table(matrix)
    for i in (0, 3, 9):
        for j in (0, 5, 13):
            assert table[i, j] == pytest.approx(matrix[:i, :j].sum(), abs=1e-12)


def test_sat_rect_sum_random_rectangles(rng):
    matrix = rng.normal(size=(20, 20))
    sat = SummedAreaTable(matrix)
    for _ in range(50):
        rl, cl = rng.integers(0, 20, size=2)
        rh = rng.integers(rl, 20)
        ch = rng.integers(cl, 20)
        expected = matrix[rl:rh + 1, cl:ch + 1].sum()
        assert float(sat.rect_sum(rl, rh, cl, ch)) == pytest.approx(
            expected, abs=1e-9)


def test_sat_rect_sum_empty_rectangle_is_zero(rng):
    sat = SummedAreaTable(rng.normal(size=(8, 8)))
    assert float(sat.rect_sum(5, 4, 0, 7)) == 0.0
    assert float(sat.rect_sum(0, 7, 6, 2)) == 0.0


# ----------------------------------------------------------------------
# Grid answering: engine vs legacy cell loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("domain_size,granularity", [
    (16, 4), (64, 8), (64, 64), (100, 10), (60, 15), (32, 1),
])
def test_grid1d_engine_matches_loop(rng, domain_size, granularity):
    grid = Grid1D(0, domain_size, granularity)
    grid.set_frequencies(rng.normal(size=granularity))  # noisy: can be < 0
    for _ in range(100):
        low = int(rng.integers(0, domain_size))
        high = int(rng.integers(low, domain_size))
        assert grid.answer_range(low, high) == pytest.approx(
            grid.answer_range_loop(low, high), abs=1e-9)


@pytest.mark.parametrize("domain_size,granularity", [
    (16, 4), (64, 8), (16, 16), (100, 10), (60, 12), (32, 1),
])
def test_grid2d_engine_matches_loop(rng, domain_size, granularity):
    grid = Grid2D((0, 1), domain_size, granularity)
    grid.set_frequencies(rng.normal(size=(granularity, granularity)))
    matrix = rng.normal(size=(domain_size, domain_size))
    index = SummedAreaTable(matrix)
    for _ in range(60):
        row_low = int(rng.integers(0, domain_size))
        row_high = int(rng.integers(row_low, domain_size))
        col_low = int(rng.integers(0, domain_size))
        col_high = int(rng.integers(col_low, domain_size))
        intervals = ((row_low, row_high), (col_low, col_high))
        # Uniformity rule (TDG)
        assert grid.answer_range(*intervals) == pytest.approx(
            grid.answer_range_loop(*intervals), abs=1e-9)
        # Response-matrix rule (HDG), with and without precomputed SAT
        expected = grid.answer_range_loop(*intervals, response_matrix=matrix)
        assert grid.answer_range(*intervals, response_matrix=matrix) == \
            pytest.approx(expected, abs=1e-9)
        assert grid.answer_range(*intervals, response_index=index) == \
            pytest.approx(expected, abs=1e-9)


def test_grid_answer_ranges_batch_matches_scalar(rng):
    grid = Grid2D((0, 1), 32, 8)
    grid.set_frequencies(rng.normal(size=(8, 8)))
    matrix = rng.normal(size=(32, 32))
    index = SummedAreaTable(matrix)
    row_lows = rng.integers(0, 32, size=40)
    row_highs = np.array([rng.integers(low, 32) for low in row_lows])
    col_lows = rng.integers(0, 32, size=40)
    col_highs = np.array([rng.integers(low, 32) for low in col_lows])
    batch = grid.answer_ranges(row_lows, row_highs, col_lows, col_highs,
                               response_index=index)
    for position in range(40):
        expected = grid.answer_range_loop(
            (row_lows[position], row_highs[position]),
            (col_lows[position], col_highs[position]), response_matrix=matrix)
        assert batch[position] == pytest.approx(expected, abs=1e-9)


def test_grid_index_invalidated_on_set_frequencies(rng):
    grid = Grid1D(0, 16, 4)
    grid.set_frequencies(np.array([0.1, 0.2, 0.3, 0.4]))
    assert grid.answer_range(0, 7) == pytest.approx(0.3)
    grid.set_frequencies(np.array([0.4, 0.3, 0.2, 0.1]))
    assert grid.answer_range(0, 7) == pytest.approx(0.7)


def test_prefix_index_classes_are_consistent(rng):
    frequencies = rng.normal(size=6)
    index = PrefixIndex1D(frequencies, cell_width=5)
    assert float(index.value_prefix(30)) == pytest.approx(frequencies.sum())
    frequencies_2d = rng.normal(size=(4, 4))
    index_2d = PrefixIndex2D(frequencies_2d, cell_width=3)
    assert float(index_2d.value_prefix(12, 12)) == pytest.approx(
        frequencies_2d.sum())


# ----------------------------------------------------------------------
# Batched Weighted Update
# ----------------------------------------------------------------------
def test_weighted_update_batch_matches_sequential(rng):
    size = 16
    index_sets = [rng.choice(size, size=rng.integers(2, 9), replace=False)
                  for _ in range(5)]
    index_sets.append(np.arange(size))
    targets = np.abs(rng.normal(size=(12, len(index_sets))))
    targets[:, -1] = 1.0
    batch = weighted_update_batch(size, index_sets, targets)
    for row in range(targets.shape[0]):
        constraints = [Constraint(indices=idx, target=targets[row, k])
                       for k, idx in enumerate(index_sets)]
        sequential = weighted_update(size, constraints)
        np.testing.assert_allclose(batch[row], sequential.estimate,
                                   rtol=0.0, atol=1e-9)


def test_estimate_lambda_queries_batched_matches_per_query(rng):
    for dimension in (3, 4, 5):
        queries = []
        sub_answers = []
        generator = WorkloadGenerator(dimension, 16,
                                      rng=np.random.default_rng(dimension))
        for _ in range(8):
            query = generator.random_query(dimension, 0.5)
            queries.append(query)
            sub_answers.append(rng.normal(0.3, 0.2,
                                          size=dimension * (dimension - 1) // 2))
        lookup_tables = [
            dict(zip((sub.attributes for sub in query.pairwise_subqueries()),
                     answers))
            for query, answers in zip(queries, sub_answers)]
        expected = [estimate_lambda_query(
            query, lambda sub, table=table: table[sub.attributes])
            for query, table in zip(queries, lookup_tables)]
        batched = estimate_lambda_queries_batched(queries, sub_answers)
        np.testing.assert_allclose(batched, expected, rtol=0.0, atol=1e-9)


def test_estimate_lambda_queries_batched_rejects_pairs():
    query = RangeQuery.from_dict({0: (0, 3), 1: (0, 3)})
    with pytest.raises(ValueError):
        estimate_lambda_queries_batched([query], [np.array([0.5])])


# ----------------------------------------------------------------------
# Mechanisms: batch workload vs legacy loop on the same fitted state
# ----------------------------------------------------------------------
def _uniform_dataset(rng, n_users=6_000, n_attributes=5, domain_size=32):
    return Dataset(rng.integers(0, domain_size, size=(n_users, n_attributes)),
                   domain_size)


@pytest.mark.parametrize("factory", [
    lambda seed: TDG(1.0, seed=seed),
    lambda seed: HDG(1.0, seed=seed),
    lambda seed: CALM(1.0, seed=seed),
    lambda seed: Uniform(seed=seed),
    lambda seed: MSW(1.0, seed=seed),
], ids=["TDG", "HDG", "CALM", "Uni", "MSW"])
def test_batch_engine_matches_legacy(rng, factory):
    dataset = _uniform_dataset(rng)
    queries = mixed_workload(dataset.n_attributes, dataset.domain_size)
    mechanism = factory(0).fit(dataset)
    assert_engine_matches_legacy(mechanism, queries)


@pytest.mark.parametrize("factory", [
    lambda seed: HIO(1.0, seed=seed),
    lambda seed: LHIO(1.0, seed=seed),
], ids=["HIO", "LHIO"])
def test_batch_engine_matches_legacy_hierarchies(rng, factory):
    # Hierarchy baselines draw lazy noise on first evaluation; answering
    # the legacy path first freezes those caches, after which the batch
    # path must reproduce the identical answers.
    dataset = _uniform_dataset(rng, n_users=4_000, n_attributes=3,
                               domain_size=16)
    queries = mixed_workload(dataset.n_attributes, dataset.domain_size,
                             per_dimension=5, dimensions=(1, 2, 3))
    mechanism = factory(0).fit(dataset)
    assert_engine_matches_legacy(mechanism, queries)


def test_batch_engine_matches_legacy_non_power_of_two_domain(rng):
    dataset = Dataset(rng.integers(0, 100, size=(6_000, 3)), 100)
    queries = mixed_workload(3, 100, per_dimension=8, dimensions=(1, 2, 3))
    for factory in (lambda: TDG(1.0, seed=0), lambda: HDG(1.0, seed=0)):
        mechanism = factory().fit(dataset)
        assert_engine_matches_legacy(mechanism, queries)


def test_batch_engine_matches_legacy_max_entropy(rng):
    dataset = _uniform_dataset(rng, n_users=4_000, n_attributes=4,
                               domain_size=16)
    queries = mixed_workload(4, 16, per_dimension=4, dimensions=(3,))
    mechanism = HDG(1.0, estimation_method="max_entropy", seed=0).fit(dataset)
    assert_engine_matches_legacy(mechanism, queries)


def test_batch_engine_handles_empty_workload(rng):
    mechanism = TDG(1.0, seed=0).fit(_uniform_dataset(rng, n_users=2_000))
    assert mechanism.answer_workload([]).shape == (0,)


def test_batch_workload_validates_queries(rng):
    mechanism = TDG(1.0, seed=0).fit(_uniform_dataset(rng, n_users=2_000))
    bad = RangeQuery.from_dict({0: (0, 999)})
    with pytest.raises(ValueError):
        mechanism.answer_workload([bad])


def test_runner_query_engine_parity(rng):
    """The runner produces identical MAEs through both engine settings."""
    from repro.experiments import ExperimentConfig, run_experiment

    base = ExperimentConfig(dataset="normal", n_users=5_000, n_attributes=3,
                            domain_size=16, n_queries=20, query_dimension=3,
                            methods=("Uni", "TDG", "HDG"), seed=3)
    batch = run_experiment(base)
    legacy = run_experiment(base.with_overrides(query_engine="legacy"))
    for method in base.methods:
        assert batch.mae_of(method) == pytest.approx(legacy.mae_of(method),
                                                     abs=1e-9)


# ----------------------------------------------------------------------
# Staleness and RNG-order regressions (from review)
# ----------------------------------------------------------------------
def test_hio_fresh_instances_agree_across_engines(rng):
    # Regression: the bucketed path used to materialise levels in a
    # different RNG order than the legacy loop, so two *fresh* fitted
    # instances with the same seed disagreed between engines.
    dataset = Dataset(rng.integers(0, 64, size=(2_000, 3)), 64)
    queries = mixed_workload(3, 64, per_dimension=4, dimensions=(2, 3))
    legacy = HIO(1.0, materialize_limit=256, seed=7).fit(dataset)
    legacy.use_legacy_answering = True
    batch = HIO(1.0, materialize_limit=256, seed=7).fit(dataset)
    np.testing.assert_allclose(batch.answer_workload(queries),
                               legacy.answer_workload(queries),
                               rtol=0.0, atol=1e-9)


def test_lhio_fresh_instances_agree_across_engines(rng):
    # Same regression for LHIO's lazy levels: with lazy groups present the
    # batch path must keep strict workload order so the RNG stream matches.
    dataset = Dataset(rng.integers(0, 64, size=(2_000, 3)), 64)
    queries = mixed_workload(3, 64, per_dimension=4, dimensions=(1, 2, 3))
    legacy = LHIO(1.0, materialize_limit=256, seed=7).fit(dataset)
    legacy.use_legacy_answering = True
    batch = LHIO(1.0, materialize_limit=256, seed=7).fit(dataset)
    np.testing.assert_allclose(batch.answer_workload(queries),
                               legacy.answer_workload(queries),
                               rtol=0.0, atol=1e-9)


def test_grid_frequencies_are_read_only(rng):
    # In-place edits of the public array would silently bypass the
    # prefix-sum index, so they must fail loudly.
    grid = Grid1D(0, 16, 4)
    grid.set_frequencies(np.array([0.1, 0.2, 0.3, 0.4]))
    with pytest.raises(ValueError):
        grid.frequencies[0] = 1.0
    grid_2d = Grid2D((0, 1), 16, 4)
    with pytest.raises(ValueError):
        grid_2d.frequencies[0, 0] = 1.0
    # The sanctioned in-place handle works and invalidates the index.
    assert grid.answer_range(0, 3) == pytest.approx(0.1)
    grid.mutable_frequencies()[0] = 0.9
    assert grid.answer_range(0, 3) == pytest.approx(0.9)


def test_hdg_response_matrix_replacement_not_stale(rng):
    dataset = Dataset(rng.integers(0, 16, size=(4_000, 2)), 16)
    mechanism = HDG(1.0, granularities=(4, 2), seed=0).fit(dataset)
    key = (0, 1)
    query = RangeQuery.from_dict({0: (1, 9), 1: (2, 13)})
    mechanism.response_matrices[key] = np.full((16, 16), 1.0 / 256)
    replaced = mechanism.answer(query)
    batch = mechanism.answer_workload([query])[0]
    expected = mechanism.grids_2d[key].answer_range_loop(
        (1, 9), (2, 13), response_matrix=mechanism.response_matrices[key])
    assert replaced == pytest.approx(expected, abs=1e-9)
    assert batch == pytest.approx(expected, abs=1e-9)
