"""Named dataset registry used by the experiment harness.

The benchmarks refer to datasets by the names the paper uses (``ipums``,
``bfive``, ``normal``, ``laplace``, ``loan``, ``acs``); this registry maps
each name to its generator so every experiment config stays declarative.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .dataset import Dataset
from .real_like import (generate_acs_like, generate_bfive_like,
                        generate_ipums_like, generate_loan_like)
from .synthetic import generate_laplace, generate_normal, generate_uniform

DatasetFactory = Callable[..., Dataset]


def _normal_factory(n_users: int, n_attributes: int, domain_size: int,
                    rng: np.random.Generator, covariance: float = 0.8) -> Dataset:
    return generate_normal(n_users, n_attributes, domain_size,
                           covariance=covariance, rng=rng)


def _laplace_factory(n_users: int, n_attributes: int, domain_size: int,
                     rng: np.random.Generator, covariance: float = 0.8) -> Dataset:
    return generate_laplace(n_users, n_attributes, domain_size,
                            covariance=covariance, rng=rng)


def _uniform_factory(n_users: int, n_attributes: int, domain_size: int,
                     rng: np.random.Generator) -> Dataset:
    return generate_uniform(n_users, n_attributes, domain_size, rng=rng)


_REGISTRY: dict[str, DatasetFactory] = {
    "ipums": generate_ipums_like,
    "bfive": generate_bfive_like,
    "loan": generate_loan_like,
    "acs": generate_acs_like,
    "normal": _normal_factory,
    "laplace": _laplace_factory,
    "uniform": _uniform_factory,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`make_dataset`."""
    return sorted(_REGISTRY)


def make_dataset(name: str, n_users: int, n_attributes: int, domain_size: int,
                 rng: np.random.Generator | None = None, **kwargs) -> Dataset:
    """Instantiate a dataset by registry name.

    Extra keyword arguments (e.g. ``covariance`` for the synthetic
    families) are forwarded to the underlying generator.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    rng = rng if rng is not None else np.random.default_rng()
    return factory(n_users, n_attributes, domain_size, rng=rng, **kwargs)
