"""Command-line interface for running reproduction experiments.

Seven subcommands mirror how the library is typically used:

``run``
    Evaluate a set of mechanisms once on one configuration and print the
    per-mechanism MAE.
``sweep``
    Vary one configuration field over several values (the shape of every
    figure in the paper) and print the MAE series as a table.
``table2``
    Print the recommended (g1, g2) granularities for a grid of
    (d, lg n, ε) settings — the paper's Table 2.
``shard-demo``
    Demonstrate the shard-mergeable pipeline: collect the same dataset
    single-shot and as K parallel shards, compare MAE and wall time, and
    optionally save the per-shard aggregator states as JSON.
``merge``
    Merge serialized shard states (written by ``shard-demo --save-state``
    or :meth:`repro.pipeline.ShardAggregator.save`) into one aggregator
    and print or save the combined state.
``ingest-demo``
    Drive the multi-process ingest tier (:mod:`repro.ingest`) once:
    route a synthetic dataset to N collector workers over shared-memory
    accumulators, print per-worker back-pressure metrics, merge and
    answer a sample query.
``serve``
    Run the long-lived JSON-over-HTTP query service
    (:mod:`repro.serving`): ingest privatized reports incrementally,
    re-finalize on a policy, answer workloads, write snapshots.  With
    ``--backend`` the service runs multi-tenant over a durable storage
    backend (JSON directory or SQLite database) with write-ahead-log
    crash recovery.
``snapshot``
    Manage the versioned on-disk snapshot store: ``create`` one from a
    freshly collected dataset, ``list`` stored versions (size,
    creation time and tenant, from listing metadata), ``inspect`` one
    document.
``tenants``
    Administer the tenants of a storage backend offline: ``list``,
    ``create``, ``inspect``, ``delete``.

Examples
--------
python -m repro.cli run --dataset normal --n-users 100000 --epsilon 1.0
python -m repro.cli sweep --parameter epsilon --values 0.2 0.5 1.0 2.0
python -m repro.cli sweep --parameter epsilon --values 0.2 0.5 1.0 2.0 \\
    --jobs 4 --cache-dir /tmp/repro-cache
python -m repro.cli table2 --d 6 --lg-n 6.0
python -m repro.cli shard-demo --shards 4 --save-state /tmp/shards
python -m repro.cli merge /tmp/shards/shard*.json --output /tmp/merged.json
python -m repro.cli serve --mechanism HDG --refinalize-every 5000 \\
    --snapshot-dir /tmp/snapshots --port 8125
python -m repro.cli serve --backend sqlite --store /tmp/repro.db
python -m repro.cli snapshot list --dir /tmp/snapshots
python -m repro.cli tenants create --backend sqlite --store /tmp/repro.db \\
    --name acme --mechanism LHIO --ingest-mode refit
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from ._version import package_version
from .datasets import make_dataset
from .experiments import (ExperimentConfig, ResultCache, run_experiment,
                          sweep_parameter)
from .experiments.figures import table_2_granularities
from .metrics import mean_absolute_error
from .pipeline import (ParallelFitReport, ShardAggregator, merge_aggregators,
                       parallel_fit, shard_seed, write_state)
from .ingest import IngestTier
from .queries import RangeQuery, WorkloadGenerator, answer_workload
from .resilience import RetryPolicy
from .serving import (QueryService, SnapshotStore, TenantManager,
                      build_server, serve)
from .serving.tenants import service_from_config
from .storage import BACKENDS, StorageError, open_backend


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="normal",
                        help="dataset name (ipums, bfive, loan, acs, normal, laplace)")
    parser.add_argument("--n-users", type=int, default=100_000)
    parser.add_argument("--n-attributes", type=int, default=6)
    parser.add_argument("--domain-size", type=int, default=64)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--query-dimension", type=int, default=2)
    parser.add_argument("--volume", type=float, default=0.5)
    parser.add_argument("--n-queries", type=int, default=100)
    parser.add_argument("--query-kinds", nargs="+", default=["range"],
                        metavar="KIND",
                        help="query kinds the workload cycles through "
                             "(range, marginal, point, count, topk); more "
                             "than one produces a mixed typed workload "
                             "scored per kind")
    parser.add_argument("--top-k", type=int, default=5,
                        help="k of generated top-k group-by queries")
    parser.add_argument("--n-repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--methods", nargs="+",
                        default=["Uni", "MSW", "CALM", "LHIO", "TDG", "HDG"],
                        help="mechanisms to evaluate (paper names; HDG(g1,g2) supported)")
    parser.add_argument("--shards", type=int, default=1,
                        help="collect shardable mechanisms over this many "
                             "parallel user shards (1 = single-shot)")
    parser.add_argument("--shard-workers", type=int, default=None,
                        help="concurrency cap for the shard executor")
    parser.add_argument("--query-engine", choices=["batch", "legacy"],
                        default="batch",
                        help="Phase-3 answering path: the vectorised "
                             "prefix-sum engine (default) or the original "
                             "per-query loop")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment executor; "
                             "the (sweep value, repetition, mechanism) cells "
                             "run in parallel and reproduce the sequential "
                             "results bit-for-bit")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk cell cache; "
                             "completed cells are skipped on re-runs")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: neither read nor write "
                             "cached cells")


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=args.dataset, n_users=args.n_users,
        n_attributes=args.n_attributes, domain_size=args.domain_size,
        epsilon=args.epsilon, query_dimension=args.query_dimension,
        volume=args.volume, n_queries=args.n_queries,
        n_repeats=args.n_repeats, methods=tuple(args.methods), seed=args.seed,
        n_shards=args.shards, shard_workers=args.shard_workers,
        query_engine=args.query_engine, n_jobs=args.jobs,
        query_kinds=tuple(args.query_kinds), top_k=args.top_k)


def _cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    if args.cache_dir is None or args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    cache = _cache_from_args(args)
    result = run_experiment(config, cache=cache)
    print(f"dataset={config.dataset} n={config.n_users} d={config.n_attributes} "
          f"c={config.domain_size} eps={config.epsilon} "
          f"lambda={config.query_dimension} omega={config.volume} "
          f"kinds={','.join(config.query_kinds)}")
    for method in config.methods:
        method_result = result.methods[method]
        print(f"  {method:>10}: MAE = {method_result.mae}")
        if method_result.per_kind_mae:
            breakdown = "  ".join(
                f"{kind}={summary.mean:.5f}"
                for kind, summary in sorted(method_result.per_kind_mae.items()))
            print(f"  {'':>10}  per-kind: {breakdown}")
    if cache is not None:
        print(f"cache: {cache.stats()}")
    return 0


def _parse_sweep_values(parameter: str, raw_values: list[str]) -> list:
    integer_fields = {"n_users", "n_attributes", "domain_size",
                      "query_dimension", "n_queries", "n_repeats"}
    if parameter in integer_fields:
        return [int(value) for value in raw_values]
    if parameter == "dataset":
        return list(raw_values)
    return [float(value) for value in raw_values]


def _command_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    values = _parse_sweep_values(args.parameter, args.values)
    cache = _cache_from_args(args)
    sweep = sweep_parameter(config, args.parameter, values, cache=cache)
    print(sweep.format_table())
    if cache is not None:
        print(f"cache: {cache.stats()}")
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    epsilons = args.epsilons or [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    settings = [(args.d, args.lg_n)]
    table = table_2_granularities(epsilons=epsilons, settings=settings,
                                  domain_size=args.domain_size)
    print(f"d={args.d}, lg(n)={args.lg_n}, c={args.domain_size}")
    for epsilon in epsilons:
        g1, g2 = table[(args.d, args.lg_n, epsilon)]
        print(f"  eps={epsilon:<4}: g1={g1:>3}  g2={g2:>3}")
    return 0


def _command_shard_demo(args: argparse.Namespace) -> int:
    from .pipeline.aggregator import SHARDABLE_MECHANISMS

    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(args.dataset, args.n_users, args.n_attributes,
                           args.domain_size, rng=rng)
    generator = WorkloadGenerator(args.n_attributes, args.domain_size,
                                  rng=np.random.default_rng(args.seed + 1))
    queries = generator.random_workload(args.n_queries, args.query_dimension,
                                        args.volume)
    truths = answer_workload(dataset, queries)
    factory_cls = SHARDABLE_MECHANISMS[args.mechanism]

    start = time.perf_counter()
    single = factory_cls(args.epsilon, seed=args.seed).fit(dataset)
    single_seconds = time.perf_counter() - start
    single.use_legacy_answering = args.query_engine == "legacy"
    single_mae = mean_absolute_error(single.answer_workload(queries), truths)

    report = ParallelFitReport(n_shards=0, max_workers=0)
    start = time.perf_counter()
    sharded = parallel_fit(
        lambda i: factory_cls(args.epsilon, seed=shard_seed(args.seed, i)),
        dataset, n_shards=args.shards, max_workers=args.shard_workers,
        report=report)
    sharded_seconds = time.perf_counter() - start
    sharded.use_legacy_answering = args.query_engine == "legacy"
    sharded_mae = mean_absolute_error(sharded.answer_workload(queries), truths)

    print(f"shard demo: {args.mechanism} on {args.dataset} "
          f"(n={args.n_users}, d={args.n_attributes}, c={args.domain_size}, "
          f"eps={args.epsilon})")
    print(f"  single-shot fit : MAE = {single_mae:.5f}  ({single_seconds:.2f}s)")
    print(f"  {args.shards} shards merged: MAE = {sharded_mae:.5f}  "
          f"({sharded_seconds:.2f}s, {report.n_workers_used} workers, "
          f"shard sizes {report.shard_sizes})")

    if args.save_state:
        # The report carries the exact pre-merge states parallel_fit
        # collected — no second collection pass.
        directory = Path(args.save_state)
        directory.mkdir(parents=True, exist_ok=True)
        for index, state in enumerate(report.shard_states):
            path = write_state(state, directory / f"shard{index}.json")
            print(f"  wrote {path}")
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    aggregators = []
    for path in args.states:
        aggregator = ShardAggregator.load(path)
        mechanism = aggregator.mechanism
        print(f"{path}: {mechanism.name} eps={mechanism.epsilon} "
              f"d={mechanism._n_attributes} c={mechanism._domain_size} "
              f"reports={aggregator.n_reports}")
        aggregators.append(aggregator)
    merged = merge_aggregators(aggregators)
    print(f"merged: {merged.n_reports} reports over {len(args.states)} shards")
    if args.output:
        path = merged.save(args.output)
        print(f"wrote {path}")
    if args.finalize:
        mechanism = merged.finalize()
        print(f"finalized {mechanism.name}: ready to answer range queries "
              f"(g1={getattr(mechanism, 'chosen_g1', None)}, "
              f"g2={mechanism.chosen_g2})")
    return 0


def _command_ingest_demo(args: argparse.Namespace) -> int:
    """``repro ingest-demo``: drive the multi-process ingest tier once."""
    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(args.dataset, args.n_users, args.n_attributes,
                           args.domain_size, rng=rng)
    rows = dataset.values
    mode = None if args.ingest_mode == "auto" else args.ingest_mode
    print(f"ingest-demo: {args.mechanism} eps={args.epsilon} "
          f"d={args.n_attributes} c={args.domain_size} "
          f"n={args.n_users} workers={args.workers}")
    tier = IngestTier(args.mechanism, args.epsilon, n_workers=args.workers,
                      n_attributes=args.n_attributes,
                      domain_size=args.domain_size, seed=args.seed,
                      ingest_mode=mode, planning_users=args.n_users,
                      total_users=args.n_users)
    try:
        started = time.perf_counter()
        for start in range(0, len(rows), args.batch_size):
            tier.submit(rows[start:start + args.batch_size])
        tier.flush()
        ingest_seconds = time.perf_counter() - started
        metrics = tier.metrics()
        rate = len(rows) / ingest_seconds if ingest_seconds > 0 else 0.0
        print(f"  mode={metrics['ingest_mode']}  "
              f"ingested {metrics['reports_total']} reports in "
              f"{ingest_seconds:.2f}s ({rate:,.0f} reports/s)")
        for worker in metrics["workers"]:
            print(f"  worker {worker['index']}: "
                  f"{worker['reports_done']} reports over "
                  f"{worker['batches_done']} batches "
                  f"(queue depth {worker['queue_depth']}, "
                  f"dropped {worker['dropped_rows']})")
        estimator = tier.coordinator.merge()
        merge = tier.metrics()["merge"]
        print(f"  merged + finalized in {merge['last_merge_seconds']:.2f}s "
              f"(merge lag now {merge['merge_lag_reports']} reports)")
        half = args.domain_size // 2
        query = RangeQuery.from_dict({0: (0, half - 1),
                                      1: (half, args.domain_size - 1)})
        truth = answer_workload(dataset, [query])[0]
        estimate = estimator.answer(query)
        print(f"  sample 2-D query: estimate={estimate:.5f} "
              f"truth={truth:.5f} |error|={abs(estimate - truth):.5f}")
    finally:
        tier.close()
    return 0


def _build_streaming_service(args: argparse.Namespace) -> QueryService:
    service = QueryService(args.mechanism, args.epsilon, seed=args.seed,
                           refinalize_every=args.refinalize_every,
                           total_users=args.total_users,
                           domain_size=args.domain_size,
                           ingest_mode=getattr(args, "ingest_mode", "stream"),
                           ingest_workers=getattr(args, "ingest_workers",
                                                  None),
                           plan_cache_entries=getattr(
                               args, "plan_cache_entries", None),
                           answer_cache_entries=getattr(
                               args, "answer_cache_entries", None))
    if args.bootstrap_dataset:
        rng = np.random.default_rng(args.seed)
        dataset = make_dataset(args.bootstrap_dataset, args.n_users,
                               args.n_attributes, args.domain_size, rng=rng)
        service.ingest(dataset)
        service.refinalize()
    return service


def _default_tenant_config(args: argparse.Namespace) -> dict:
    """The default tenant's config from the serving CLI arguments."""
    return {
        "mechanism": args.mechanism,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "refinalize_every": args.refinalize_every,
        "total_users": args.total_users,
        "domain_size": args.domain_size,
        "ingest_mode": getattr(args, "ingest_mode", "stream"),
        "ingest_workers": getattr(args, "ingest_workers", None),
        "plan_cache_entries": getattr(args, "plan_cache_entries", None),
        "answer_cache_entries": getattr(args, "answer_cache_entries", None),
        "keep_last": args.keep_last,
    }


def _command_serve_multi_tenant(args: argparse.Namespace) -> int:
    """``repro serve --backend ...``: multi-tenant over a storage backend."""
    if not args.store:
        print("--backend requires --store (the store directory for json, "
              "the database file for sqlite)", file=sys.stderr)
        return 2
    if args.restore:
        print("--restore is implicit with --backend: tenants recover "
              "automatically from snapshots plus the ingest log",
              file=sys.stderr)
        return 2
    try:
        backend = open_backend(args.backend, args.store,
                               busy_timeout_ms=args.busy_timeout)
    except ValueError as error:
        print(f"cannot open backend: {error}", file=sys.stderr)
        return 2
    retry_policy = RetryPolicy(attempts=args.retry_attempts,
                               base_delay=args.retry_base_delay,
                               max_delay=args.retry_max_delay)
    try:
        manager = TenantManager(backend,
                                default_config=_default_tenant_config(args),
                                retry_policy=retry_policy,
                                breaker_threshold=args.breaker_threshold,
                                breaker_reset=args.breaker_reset,
                                op_deadline=args.op_deadline)
    except (ValueError, StorageError) as error:
        backend.close()
        print(f"cannot start tenants: {error}", file=sys.stderr)
        return 2
    quarantined = manager.quarantined_tenants()
    for name, info in quarantined.items():
        print(f"warning: tenant {name!r} quarantined: {info['error']}",
              file=sys.stderr)
    server = build_server(host=args.host, port=args.port,
                          verbose=args.verbose, workers=args.workers,
                          tenant_manager=manager,
                          queue_depth=args.queue_depth)
    host, port = server.server_address[:2]
    storage = manager.storage_status()
    print(f"serving {storage['tenants']} tenant(s) from "
          f"{storage['backend']}:{storage['location']} "
          f"(pending ingest log: {storage['pending_ingest_log']}) "
          f"on http://{host}:{port} with {args.workers} workers", flush=True)
    print("endpoints: GET /healthz  GET /readyz  POST /ingest  POST /query  "
          "POST /refinalize  POST|GET /snapshot  GET|POST /tenants  "
          "GET|DELETE /tenants/<name>", flush=True)
    try:
        serve(server, max_requests=args.max_requests)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        backend.close()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.backend:
        return _command_serve_multi_tenant(args)
    if args.busy_timeout is not None:
        print("--busy-timeout requires --backend sqlite", file=sys.stderr)
        return 2
    store = None
    if args.snapshot_dir:
        store = SnapshotStore(args.snapshot_dir, keep_last=args.keep_last)
    if args.restore:
        if store is None:
            print("--restore requires --snapshot-dir", file=sys.stderr)
            return 2
        try:
            service = QueryService.from_snapshot(
                store, version=args.snapshot_version, seed=args.seed)
        except FileNotFoundError as error:
            print(f"cannot restore: {error}", file=sys.stderr)
            return 2
    else:
        try:
            service = _build_streaming_service(args)
        except ValueError as error:
            print(f"cannot build service: {error}", file=sys.stderr)
            return 2

    server = build_server(service, host=args.host, port=args.port,
                          snapshot_store=store, verbose=args.verbose,
                          workers=args.workers,
                          queue_depth=args.queue_depth)
    host, port = server.server_address[:2]
    status = service.status()
    print(f"serving {status['mechanism']} (eps={status['epsilon']}, "
          f"mode={status['mode']}, ready={status['ready']}) "
          f"on http://{host}:{port} with {args.workers} workers", flush=True)
    print("endpoints: GET /healthz  GET /readyz  POST /ingest  POST /query  "
          "POST /refinalize  POST|GET /snapshot", flush=True)
    try:
        serve(server, max_requests=args.max_requests)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    if args.action == "list":
        return _command_snapshot_list(args)
    if args.action == "create":
        # Write through the directory backend so the snapshot gets its
        # sidecar listing metadata (size, creation time, mechanism).
        backend = open_backend("json", args.dir)
        service = _build_streaming_service(args)
        record = backend.save_snapshot("default", service.state_dict())
        if args.keep_last is not None:
            backend.prune_snapshots("default", args.keep_last)
        status = service.status()
        print(f"wrote snapshot version {record.version} "
              f"({status['mechanism']}, eps={status['epsilon']}, "
              f"{status['reports_ingested']} reports) -> "
              f"{Path(args.dir) / SnapshotStore.FILE_TEMPLATE.format(version=record.version)}")
        return 0
    store = SnapshotStore(args.dir, keep_last=getattr(args, "keep_last", None))
    # inspect
    try:
        state = store.load(args.version)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    estimator = state.get("estimator")
    collector = state.get("collector")
    print(f"format={state.get('format')} version={state.get('version')}")
    print(f"mechanism={state.get('mechanism')} "
          f"epsilon={state.get('epsilon')}")
    print(f"reports_ingested={state.get('reports_ingested')} "
          f"reports_since_finalize={state.get('reports_since_finalize')} "
          f"finalize_count={state.get('finalize_count')}")
    print(f"refinalize_every={state.get('refinalize_every')} "
          f"total_users={state.get('total_users')}")
    print(f"estimator={'present' if estimator else 'none'} "
          f"collector={'present' if collector else 'none'}")
    if estimator:
        print(f"  estimator: d={estimator['n_attributes']} "
              f"c={estimator['domain_size']} "
              f"config={estimator.get('config')}")
    return 0


def _open_backend_from_args(args: argparse.Namespace):
    """The storage backend the ``--backend``/``--store``/``--dir``
    arguments select (JSON directory backend when only a directory is
    given)."""
    if getattr(args, "store", None):
        return open_backend(args.backend or "json", args.store)
    if getattr(args, "dir", None):
        return open_backend("json", args.dir)
    raise ValueError("pass --dir (JSON store directory) or "
                     "--backend/--store (storage backend)")


def _command_snapshot_list(args: argparse.Namespace) -> int:
    """``repro snapshot list``: versions from listing metadata.

    Size, creation time and tenant come from the backend's metadata
    (sidecar records or the SQLite listing table), never by reading or
    stat-ing the snapshot blobs themselves.
    """
    try:
        backend = _open_backend_from_args(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    with backend:
        records = backend.list_snapshots()
        if not records:
            print(f"{backend.location()}: no snapshots")
            return 0
        latest = {}
        for record in records:
            latest[record.tenant] = record.version
        for record in records:
            marker = ("  <- latest"
                      if record.version == latest[record.tenant] else "")
            print(f"  {record.tenant:>10}  v{record.version:>4}  "
                  f"{record.size_bytes:>10} bytes  {record.created_at}  "
                  f"{record.mechanism or '?'}"
                  f"{marker}")
    return 0


def _command_tenants(args: argparse.Namespace) -> int:
    """``repro tenants``: offline tenant administration on a backend."""
    try:
        backend = _open_backend_from_args(args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    with backend:
        try:
            if args.action == "list":
                records = backend.list_tenants()
                if not records:
                    print(f"{backend.location()}: no tenants")
                    return 0
                for record in records:
                    config = record.config
                    snapshots = backend.list_snapshots(record.name)
                    print(f"  {record.name:>10}  "
                          f"{config.get('mechanism', '?'):>5}  "
                          f"eps={config.get('epsilon', '?')}  "
                          f"snapshots={len(snapshots)}  "
                          f"pending_log={backend.ingest_log_depth(record.name)}  "
                          f"created={record.created_at}")
                return 0
            if args.action == "create":
                config = _default_tenant_config(args)
                if args.quota is not None:
                    config["quota"] = args.quota
                service_from_config(config)  # validate before persisting
                record = backend.create_tenant(args.name, config)
                print(f"created tenant {record.name!r} "
                      f"({config['mechanism']}, eps={config['epsilon']}) "
                      f"in {backend.location()}")
                return 0
            if args.action == "inspect":
                record = backend.get_tenant(args.name)
                print(f"tenant {record.name!r} created {record.created_at}")
                print(f"  config: {record.config}")
                print(f"  pending ingest log: "
                      f"{backend.ingest_log_depth(record.name)}")
                snapshots = backend.list_snapshots(record.name)
                for snapshot in snapshots:
                    print(f"  snapshot v{snapshot.version}: "
                          f"{snapshot.size_bytes} bytes, "
                          f"{snapshot.created_at}, "
                          f"wal_seq={snapshot.wal_seq}")
                if snapshots:
                    document, _ = backend.load_snapshot(record.name)
                    status = QueryService.from_state_dict(document).status()
                    plan = status.get("plan_cache") or {}
                    answer = status.get("answer_cache") or {}
                    print(f"  epoch: {status.get('epoch', 0)} "
                          f"(from snapshot v{snapshots[-1].version})")
                    print(f"  plan cache: size={plan.get('size')} "
                          f"capacity={plan.get('capacity')}")
                    print(f"  answer cache: capacity={answer.get('capacity')}")
                else:
                    config = record.config
                    print(f"  plan cache: capacity="
                          f"{config.get('plan_cache_entries') or 'default'}")
                    print(f"  answer cache: capacity="
                          f"{config.get('answer_cache_entries') or 'default'}")
                return 0
            # delete
            backend.delete_tenant(args.name)
            print(f"deleted tenant {args.name!r} and its stored state")
            return 0
        except (StorageError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2


def _add_serving_mechanism_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mechanism", default="HDG",
                        choices=["TDG", "HDG", "ITDG", "IHDG", "CALM", "HIO",
                                 "LHIO", "MSW", "Uni"],
                        help="mechanism to collect and serve (the default "
                             "stream ingest mode needs a shardable one: "
                             "TDG, HDG, ITDG, IHDG; any mechanism works "
                             "with --ingest-mode refit)")
    parser.add_argument("--ingest-mode", default="stream",
                        choices=["stream", "refit"],
                        help="stream feeds batches through the shard "
                             "partial_fit path; refit buffers raw rows and "
                             "re-finalizes by fitting a fresh same-seeded "
                             "instance from scratch (works for every "
                             "mechanism, deterministic for crash recovery)")
    parser.add_argument("--ingest-workers", type=int, default=None,
                        metavar="N",
                        help="run ingest through N collector worker "
                             "processes over shared-memory accumulators "
                             "(default: in-process ingest; see "
                             "docs/ingest.md)")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--plan-cache-entries", type=int, default=None,
                        metavar="N",
                        help="compiled-plan LRU capacity per service "
                             "(default: the estimator's built-in 8; raise "
                             "for workloads cycling through many distinct "
                             "query shapes)")
    parser.add_argument("--answer-cache-entries", type=int, default=None,
                        metavar="N",
                        help="answered-workload LRU capacity per service "
                             "(default 256; 0 disables answer caching)")
    parser.add_argument("--refinalize-every", type=int, default=None,
                        metavar="N",
                        help="re-run Phase 2 automatically after N newly "
                             "ingested reports (default: on demand only)")
    parser.add_argument("--total-users", type=int, default=None,
                        help="expected total population; pins the guideline "
                             "granularities up front")
    parser.add_argument("--domain-size", type=int, default=64,
                        help="attribute domain size c of ingested rows")
    parser.add_argument("--bootstrap-dataset", default=None, metavar="NAME",
                        help="warm-start: collect this generated dataset and "
                             "finalize before serving")
    parser.add_argument("--n-users", type=int, default=100_000,
                        help="bootstrap dataset population")
    parser.add_argument("--n-attributes", type=int, default=6,
                        help="bootstrap dataset attribute count")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Answering Multi-Dimensional Range "
                    "Queries under Local Differential Privacy' (VLDB 2020)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate mechanisms once")
    _add_config_arguments(run_parser)
    run_parser.set_defaults(handler=_command_run)

    sweep_parser = subparsers.add_parser("sweep", help="sweep one parameter")
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument("--parameter", default="epsilon",
                              help="configuration field to vary")
    sweep_parser.add_argument("--values", nargs="+", required=True,
                              help="values to evaluate")
    sweep_parser.set_defaults(handler=_command_sweep)

    table_parser = subparsers.add_parser("table2",
                                         help="print recommended granularities")
    table_parser.add_argument("--d", type=int, default=6)
    table_parser.add_argument("--lg-n", type=float, default=6.0)
    table_parser.add_argument("--domain-size", type=int, default=64)
    table_parser.add_argument("--epsilons", type=float, nargs="+")
    table_parser.set_defaults(handler=_command_table2)

    demo_parser = subparsers.add_parser(
        "shard-demo",
        help="compare single-shot vs sharded-merged collection")
    _add_config_arguments(demo_parser)
    demo_parser.add_argument("--mechanism", default="HDG",
                             choices=["TDG", "HDG", "ITDG", "IHDG"],
                             help="shardable mechanism to demonstrate")
    demo_parser.add_argument("--save-state", metavar="DIR",
                             help="also write each shard's aggregator state "
                                  "as JSON into this directory")
    demo_parser.set_defaults(handler=_command_shard_demo)
    demo_parser.set_defaults(shards=4)

    merge_parser = subparsers.add_parser(
        "merge", help="merge serialized shard aggregator states")
    merge_parser.add_argument("states", nargs="+",
                              help="shard state JSON files to merge")
    merge_parser.add_argument("--output", help="write the merged state here")
    merge_parser.add_argument("--finalize", action="store_true",
                              help="run Phase 2 on the merged state")
    merge_parser.set_defaults(handler=_command_merge)

    ingest_parser = subparsers.add_parser(
        "ingest-demo",
        help="drive the multi-process shared-memory ingest tier once")
    ingest_parser.add_argument("--mechanism", default="HDG",
                               choices=["TDG", "HDG", "ITDG", "IHDG", "CALM",
                                        "HIO", "LHIO", "MSW", "Uni"],
                               help="mechanism to collect (stream mode needs "
                                    "a shardable one; others run refit)")
    ingest_parser.add_argument("--ingest-mode", default="auto",
                               choices=["auto", "stream", "refit"],
                               help="auto picks stream for shardable "
                                    "mechanisms, refit otherwise")
    ingest_parser.add_argument("--workers", type=int, default=4,
                               help="collector worker processes")
    ingest_parser.add_argument("--dataset", default="normal",
                               help="synthetic dataset name to ingest")
    ingest_parser.add_argument("--n-users", type=int, default=100_000)
    ingest_parser.add_argument("--n-attributes", type=int, default=4)
    ingest_parser.add_argument("--domain-size", type=int, default=16)
    ingest_parser.add_argument("--epsilon", type=float, default=1.0)
    ingest_parser.add_argument("--seed", type=int, default=0)
    ingest_parser.add_argument("--batch-size", type=int, default=10_000,
                               help="reports per submitted batch")
    ingest_parser.set_defaults(handler=_command_ingest_demo)

    serve_parser = subparsers.add_parser(
        "serve", help="run the JSON-over-HTTP query service")
    _add_serving_mechanism_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8125,
                              help="TCP port (0 binds any free port)")
    serve_parser.add_argument("--snapshot-dir", default=None, metavar="DIR",
                              help="enable the /snapshot endpoints against "
                                   "this store")
    serve_parser.add_argument("--keep-last", type=int, default=None,
                              metavar="K",
                              help="retain only the newest K snapshot "
                                   "versions")
    serve_parser.add_argument("--restore", action="store_true",
                              help="restore service state from the snapshot "
                                   "store instead of starting fresh")
    serve_parser.add_argument("--snapshot-version", type=int, default=None,
                              help="with --restore: load this version "
                                   "instead of the latest")
    serve_parser.add_argument("--max-requests", type=int, default=None,
                              metavar="N",
                              help="exit after serving N connections (smoke "
                                   "tests; default: run until interrupted)")
    serve_parser.add_argument("--workers", type=int, default=8,
                              metavar="N",
                              help="request worker pool size (each worker "
                                   "owns one keep-alive connection at a "
                                   "time)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log one line per handled request")
    serve_parser.add_argument("--backend", default=None,
                              choices=sorted(BACKENDS),
                              help="run multi-tenant over this storage "
                                   "backend (tenants, write-ahead ingest "
                                   "log, automatic crash recovery); "
                                   "requires --store")
    serve_parser.add_argument("--store", default=None, metavar="LOCATION",
                              help="storage backend location: the store "
                                   "directory for json, the database file "
                                   "for sqlite")
    serve_parser.add_argument("--queue-depth", type=int, default=16,
                              metavar="N",
                              help="admission queue: connections beyond the "
                                   "worker count that may wait for a worker "
                                   "before the listener sheds with 503")
    serve_parser.add_argument("--retry-attempts", type=int, default=3,
                              metavar="N",
                              help="attempts per storage operation on the "
                                   "ingest/snapshot path (1 = fail fast)")
    serve_parser.add_argument("--retry-base-delay", type=float, default=0.05,
                              metavar="SECONDS",
                              help="first retry backoff delay (doubles per "
                                   "retry, with seeded jitter)")
    serve_parser.add_argument("--retry-max-delay", type=float, default=2.0,
                              metavar="SECONDS",
                              help="backoff delay ceiling")
    serve_parser.add_argument("--op-deadline", type=float, default=None,
                              metavar="SECONDS",
                              help="wall-clock budget for one storage "
                                   "operation including its retries "
                                   "(default: unbounded)")
    serve_parser.add_argument("--breaker-threshold", type=int, default=3,
                              metavar="N",
                              help="consecutive write-ahead-log failures "
                                   "that trip a tenant's circuit breaker")
    serve_parser.add_argument("--breaker-reset", type=float, default=30.0,
                              metavar="SECONDS",
                              help="open-breaker duration before one "
                                   "recovery probe is allowed")
    serve_parser.add_argument("--busy-timeout", type=int, default=None,
                              metavar="MS",
                              help="sqlite backend only: milliseconds a "
                                   "locked database is waited on before "
                                   "failing (see docs/storage.md)")
    serve_parser.set_defaults(handler=_command_serve)

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="manage the versioned snapshot store")
    snapshot_actions = snapshot_parser.add_subparsers(dest="action",
                                                      required=True)
    create_parser = snapshot_actions.add_parser(
        "create", help="collect a dataset and write a snapshot version")
    create_parser.add_argument("--dir", required=True,
                               help="snapshot store directory")
    create_parser.add_argument("--keep-last", type=int, default=None,
                               metavar="K")
    _add_serving_mechanism_arguments(create_parser)
    create_parser.set_defaults(handler=_command_snapshot,
                               bootstrap_dataset="normal")
    list_parser = snapshot_actions.add_parser(
        "list", help="list stored snapshot versions (size, creation time "
                     "and tenant, from listing metadata)")
    list_parser.add_argument("--dir", default=None,
                             help="JSON snapshot store directory")
    list_parser.add_argument("--backend", default=None,
                             choices=sorted(BACKENDS),
                             help="list a storage backend instead of a "
                                  "plain directory (with --store)")
    list_parser.add_argument("--store", default=None, metavar="LOCATION",
                             help="storage backend location")
    list_parser.set_defaults(handler=_command_snapshot)
    inspect_parser = snapshot_actions.add_parser(
        "inspect", help="print one snapshot document's summary")
    inspect_parser.add_argument("--dir", required=True)
    inspect_parser.add_argument("--version", type=int, default=None,
                                help="version to inspect (default: latest)")
    inspect_parser.set_defaults(handler=_command_snapshot)

    tenants_parser = subparsers.add_parser(
        "tenants", help="administer the tenants of a storage backend")
    tenant_actions = tenants_parser.add_subparsers(dest="action",
                                                   required=True)

    def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--backend", default="json",
                            choices=sorted(BACKENDS),
                            help="storage backend kind (default: json)")
        parser.add_argument("--store", required=True, metavar="LOCATION",
                            help="storage backend location: the store "
                                 "directory for json, the database file "
                                 "for sqlite")

    tenants_list = tenant_actions.add_parser(
        "list", help="list the backend's tenants")
    _add_backend_arguments(tenants_list)
    tenants_list.set_defaults(handler=_command_tenants)
    tenants_create = tenant_actions.add_parser(
        "create", help="create a tenant with a service configuration")
    _add_backend_arguments(tenants_create)
    tenants_create.add_argument("--name", required=True,
                                help="tenant name (path- and URL-safe)")
    tenants_create.add_argument("--quota", type=int, default=None,
                                help="max total reports the tenant may "
                                     "ingest (default: unlimited)")
    tenants_create.add_argument("--keep-last", type=int, default=None,
                                metavar="K",
                                help="snapshot retention for the tenant")
    _add_serving_mechanism_arguments(tenants_create)
    tenants_create.set_defaults(handler=_command_tenants)
    tenants_inspect = tenant_actions.add_parser(
        "inspect", help="print one tenant's config, snapshots and log depth")
    _add_backend_arguments(tenants_inspect)
    tenants_inspect.add_argument("--name", required=True)
    tenants_inspect.set_defaults(handler=_command_tenants)
    tenants_delete = tenant_actions.add_parser(
        "delete", help="drop a tenant and all its stored state")
    _add_backend_arguments(tenants_delete)
    tenants_delete.add_argument("--name", required=True)
    tenants_delete.set_defaults(handler=_command_tenants)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
