"""Tests for the synthetic stand-ins for the paper's real datasets."""

import numpy as np
import pytest

from repro.datasets import (generate_acs_like, generate_bfive_like,
                            generate_ipums_like, generate_loan_like)

GENERATORS = [generate_ipums_like, generate_bfive_like, generate_loan_like,
              generate_acs_like]


@pytest.mark.parametrize("generator", GENERATORS)
def test_shape_and_domain(generator):
    dataset = generator(5_000, n_attributes=5, domain_size=32,
                        rng=np.random.default_rng(0))
    assert dataset.n_users == 5_000
    assert dataset.n_attributes == 5
    assert dataset.domain_size == 32
    assert dataset.values.min() >= 0
    assert dataset.values.max() < 32


@pytest.mark.parametrize("generator", GENERATORS)
def test_marginals_are_skewed(generator):
    dataset = generator(30_000, n_attributes=4, domain_size=64,
                        rng=np.random.default_rng(1))
    marginal = dataset.marginal(0)
    # None of the stand-ins should be uniform: the most likely bucket must
    # carry clearly more than the uniform share.
    assert marginal.max() > 2.0 / 64


def _mean_pairwise_correlation(dataset) -> float:
    corr = np.corrcoef(dataset.values.T)
    d = dataset.n_attributes
    off_diagonal = corr[np.triu_indices(d, k=1)]
    return float(np.mean(off_diagonal))


def test_ipums_more_correlated_than_bfive():
    ipums = generate_ipums_like(30_000, n_attributes=5, domain_size=64,
                                rng=np.random.default_rng(2))
    bfive = generate_bfive_like(30_000, n_attributes=5, domain_size=64,
                                rng=np.random.default_rng(2))
    assert _mean_pairwise_correlation(ipums) > _mean_pairwise_correlation(bfive) + 0.15


def test_bfive_correlation_is_weak():
    bfive = generate_bfive_like(30_000, n_attributes=6, domain_size=64,
                                rng=np.random.default_rng(3))
    assert _mean_pairwise_correlation(bfive) < 0.3


def test_acs_strongly_correlated():
    acs = generate_acs_like(30_000, n_attributes=5, domain_size=64,
                            rng=np.random.default_rng(4))
    assert _mean_pairwise_correlation(acs) > 0.35


def test_supports_many_attributes():
    loan = generate_loan_like(2_000, n_attributes=10, domain_size=16,
                              rng=np.random.default_rng(5))
    assert loan.n_attributes == 10


def test_reproducible_with_seed():
    first = generate_ipums_like(1_000, n_attributes=3, domain_size=16,
                                rng=np.random.default_rng(42))
    second = generate_ipums_like(1_000, n_attributes=3, domain_size=16,
                                 rng=np.random.default_rng(42))
    np.testing.assert_array_equal(first.values, second.values)
