"""Ablation: Weighted Update (Algorithm 2) vs Maximum Entropy (Appendix A.8)
as the combiner for λ > 2 queries.

Paper claim to verify: the two combiners achieve almost the same accuracy,
with Weighted Update being the cheaper one (which is why the paper adopts
it).
"""

import time

import numpy as np

from _scale import current_scale, report

from repro.core import HDG
from repro.datasets import make_dataset
from repro.metrics import mean_absolute_error
from repro.queries import WorkloadGenerator, answer_workload


def bench_ablation_maxent(benchmark):
    scale = current_scale()
    rng = np.random.default_rng(0)
    dataset = make_dataset("normal", scale.n_users, scale.n_attributes,
                           scale.domain_size, rng=rng)
    generator = WorkloadGenerator(scale.n_attributes, scale.domain_size,
                                  rng=np.random.default_rng(1))
    queries = generator.random_workload(max(20, scale.n_queries // 2), 4, 0.5)
    truths = answer_workload(dataset, queries)

    def run():
        outcomes = {}
        for method in ("weighted_update", "max_entropy"):
            mechanism = HDG(1.0, estimation_method=method, seed=0).fit(dataset)
            start = time.perf_counter()
            estimates = mechanism.answer_workload(queries)
            elapsed = time.perf_counter() - start
            outcomes[method] = (mean_absolute_error(estimates, truths), elapsed)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Ablation: Algorithm 2 combiner =="]
    for method, (mae, elapsed) in outcomes.items():
        lines.append(f"{method:16s} MAE={mae:.5f}  answer-time={elapsed:.2f}s")
    report("ablation_maxent", "\n".join(lines))

    wu_mae, _ = outcomes["weighted_update"]
    me_mae, _ = outcomes["max_entropy"]
    # "Almost the same accuracy": within a factor of two of each other.
    assert wu_mae <= me_mae * 2.0 + 0.01
