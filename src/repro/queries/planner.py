"""Workload planner: compiles typed IR queries onto range primitives.

The :class:`QueryPlanner` is the compiler layer between the logical
query surface (:mod:`repro.queries.ir`) and the mechanisms' physical
primitives (batched range answering over 1-D/2-D grid estimates).  A
mixed workload is *planned* once — every query is validated against the
fitted schema, checked against the answering mechanism's declared
capabilities, and lowered into a flat list of
:class:`~repro.queries.RangeQuery` primitives — the mechanism answers
the flat list through its existing batch engine, and the resulting
:class:`QueryPlan` reassembles the primitive answers into typed results:

========  =====================================  ========================
Kind      Lowering                               Combiner
========  =====================================  ========================
range     itself (one primitive)                 identity
point     one degenerate width-1 range           identity
count     one range                              ``× population``
marginal  one width-1 range per cell             reshape to the λ-D table
topk      the full marginal's cell ranges        Norm-Sub, then arg-top-k
========  =====================================  ========================

Because every lowering lands on range primitives, all nine mechanisms
answer every query type through one answering stack, and the batch
engine's grouping (by dimension, by grid) applies unchanged — a 2-D
marginal's ``c²`` cells become one grouped, vectorised corner-lookup
batch.

The serving hot path does not interpret a :class:`QueryPlan` per
request: :mod:`repro.queries.compiler` lowers a plan once into fused
NumPy index arrays (:class:`~repro.queries.compiler.CompiledPlan`) and
caches the result across requests in a bounded LRU
(:class:`~repro.queries.compiler.PlanCache`).  The planner remains the
validation and lowering authority; the compiler is a faster executor of
the exact same lowering, and ``tests/test_plan_compiler.py`` pins the
two paths to bitwise-identical answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..postprocess.norm_sub import norm_sub
from .ir import (QUERY_KINDS, DistributionResult, MarginalQuery, PointQuery,
                 PredicateCountQuery, Query, QueryResult, ScalarResult,
                 TopKQuery, TopKResult, query_kind)
from .range_query import RangeQuery

#: Capability set granting every query kind (the library-wide default:
#: all nine mechanisms answer ranges, so the planner can lower anything).
ALL_QUERY_KINDS = frozenset(QUERY_KINDS)


def top_k_cells(values: np.ndarray, k: int) -> tuple[tuple[tuple[int, ...], ...],
                                                     np.ndarray]:
    """Deterministic top-k selection over a marginal table.

    Returns the ``k`` largest cells (as value tuples) and their
    frequencies, sorted by descending frequency with ties broken by
    row-major cell order — stable, so snapshot-restored estimators
    reproduce the selection bit-for-bit.
    """
    flat = values.ravel()
    k = min(int(k), flat.size)
    order = np.argsort(-flat, kind="stable")[:k]
    cells = tuple(tuple(int(part) for part in np.unravel_index(index,
                                                               values.shape))
                  for index in order)
    return cells, flat[order].astype(float)


@dataclass
class LoweredQuery:
    """One planned query: its primitive ranges plus the reassembly step."""

    query: Query
    ranges: list[RangeQuery]
    combine: Callable[[np.ndarray], QueryResult]


@dataclass
class QueryPlan:
    """A compiled workload: flat primitives plus per-query reassembly.

    ``ranges`` is the concatenation of every lowered query's primitives
    in workload order; :meth:`assemble` slices a flat answer vector back
    into one typed result per original query.
    """

    lowered: list[LoweredQuery]

    @property
    def queries(self) -> list[Query]:
        """The original workload, in order."""
        return [entry.query for entry in self.lowered]

    @property
    def ranges(self) -> list[RangeQuery]:
        """Every primitive range of the plan, in lowering order."""
        return [primitive for entry in self.lowered
                for primitive in entry.ranges]

    @property
    def n_primitives(self) -> int:
        """Total number of range primitives the plan executes."""
        return sum(len(entry.ranges) for entry in self.lowered)

    def assemble(self, answers: np.ndarray) -> list[QueryResult]:
        """Slice flat primitive answers into typed per-query results."""
        answers = np.asarray(answers, dtype=float)
        if answers.shape != (self.n_primitives,):
            raise ValueError(
                f"plan expects {self.n_primitives} primitive answers, got "
                f"shape {answers.shape}")
        results = []
        start = 0
        for entry in self.lowered:
            stop = start + len(entry.ranges)
            results.append(entry.combine(answers[start:stop]))
            start = stop
        return results


class QueryPlanner:
    """Validates and lowers typed workloads for one fitted schema.

    Parameters
    ----------
    domain_size:
        Per-attribute domain size ``c`` of the fitted data.
    n_attributes:
        Attribute count ``d`` of the fitted data.
    population:
        Collected population, used to scale
        :class:`~repro.queries.PredicateCountQuery` answers whose
        ``population`` field is unset.  None is allowed as long as every
        count query carries its own population.
    """

    def __init__(self, domain_size: int, n_attributes: int,
                 population: int | None = None):
        if domain_size < 2:
            raise ValueError("domain_size must be >= 2")
        if n_attributes < 1:
            raise ValueError("n_attributes must be >= 1")
        self.domain_size = int(domain_size)
        self.n_attributes = int(n_attributes)
        self.population = population if population is None else int(population)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, query: Query, position: int | None = None) -> None:
        """Check one query against the fitted schema; raise ValueError.

        ``position`` (the query's index in its workload) is woven into
        the message so mixed-workload errors name the offending query.
        """
        where = f"query {position} ({query_kind(query)})" if position is not None \
            else f"{query_kind(query)} query"
        if isinstance(query, (RangeQuery, PredicateCountQuery)):
            intervals = [(p.attribute, p.low, p.high) for p in query.predicates]
        elif isinstance(query, PointQuery):
            intervals = [(a, v, v) for a, v in query.assignment]
        elif isinstance(query, (MarginalQuery, TopKQuery)):
            intervals = [(a, 0, 0) for a in query.attributes]
        else:
            raise TypeError(f"cannot plan {type(query).__name__}; known "
                            f"kinds: {', '.join(QUERY_KINDS)}")
        for attribute, low, high in intervals:
            if attribute >= self.n_attributes:
                raise ValueError(
                    f"{where} references attribute {attribute} but the fitted "
                    f"dataset only has {self.n_attributes} attributes")
            if high >= self.domain_size:
                raise ValueError(
                    f"{where} interval [{low}, {high}] exceeds the fitted "
                    f"domain size {self.domain_size}")

    def resolve_population(self, query: PredicateCountQuery,
                           position: int | None = None) -> int:
        """The scale a count query's fractional answer is multiplied by."""
        if query.population is not None:
            return query.population
        if self.population is not None:
            return self.population
        where = f"count query {position}" if position is not None \
            else "count query"
        raise ValueError(
            f"{where} has no population: the answering mechanism reports no "
            "collected population (restored from a pre-population snapshot?) "
            "and the query does not carry its own — set "
            "PredicateCountQuery.population explicitly")

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def lower(self, query: Query,
              position: int | None = None) -> LoweredQuery:
        """Lower one validated query to primitives plus its combiner."""
        if isinstance(query, RangeQuery):
            return LoweredQuery(query, [query],
                                lambda a, q=query: ScalarResult(q, float(a[0])))
        if isinstance(query, PointQuery):
            return LoweredQuery(query, [query.as_range()],
                                lambda a, q=query: ScalarResult(q, float(a[0])))
        if isinstance(query, PredicateCountQuery):
            population = self.resolve_population(query, position)
            return LoweredQuery(
                query, [query.as_range()],
                lambda a, q=query, n=population: ScalarResult(
                    q, float(a[0]) * n, population=n))
        if isinstance(query, MarginalQuery):
            shape = (self.domain_size,) * query.dimension

            def combine_marginal(a, q=query, s=shape):
                """Reshape the flat cell answers into the λ-D table."""
                return DistributionResult(q, np.asarray(a, dtype=float).reshape(s))

            return LoweredQuery(query, query.to_ranges(self.domain_size),
                                combine_marginal)
        if isinstance(query, TopKQuery):
            marginal = query.marginal()
            shape = (self.domain_size,) * marginal.dimension

            def combine_topk(a, q=query, s=shape):
                """Norm-Sub the estimated table, then take the arg-top-k."""
                table = norm_sub(np.asarray(a, dtype=float).reshape(s))
                cells, values = top_k_cells(table, q.k)
                return TopKResult(q, cells, values)

            return LoweredQuery(query, marginal.to_ranges(self.domain_size),
                                combine_topk)
        raise TypeError(f"cannot plan {type(query).__name__}; known kinds: "
                        f"{', '.join(QUERY_KINDS)}")

    def plan(self, queries,
             capabilities: frozenset[str] = ALL_QUERY_KINDS) -> QueryPlan:
        """Validate and lower a whole workload into one :class:`QueryPlan`.

        ``capabilities`` is the answering mechanism's declared set of
        supported query kinds; queries outside it are rejected with an
        error naming the query's position and kind.
        """
        lowered = []
        for position, query in enumerate(queries):
            kind = query_kind(query)
            if kind not in capabilities:
                raise ValueError(
                    f"query {position} is a {kind} query, which this "
                    f"mechanism does not support (capabilities: "
                    f"{', '.join(sorted(capabilities))})")
            self.validate(query, position)
            lowered.append(self.lower(query, position))
        return QueryPlan(lowered)
