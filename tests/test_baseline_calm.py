"""Tests for the CALM baseline."""

import numpy as np
import pytest

from repro.baselines import CALM, Uniform
from repro.core import TDG
from repro.metrics import mean_absolute_error
from repro.queries import RangeQuery, answer_workload


@pytest.fixture
def fitted_calm(small_dataset):
    return CALM(epsilon=2.0, seed=0).fit(small_dataset)


def test_calm_uses_full_resolution_marginals(fitted_calm, small_dataset):
    assert fitted_calm.chosen_g2 == small_dataset.domain_size
    for grid in fitted_calm.grids.values():
        assert grid.granularity == small_dataset.domain_size
        assert grid.cell_width == 1


def test_calm_is_a_tdg_variant(fitted_calm):
    assert isinstance(fitted_calm, TDG)
    assert fitted_calm.name == "CALM"


def test_calm_marginals_are_distributions(fitted_calm):
    for grid in fitted_calm.grids.values():
        assert grid.frequencies.sum() == pytest.approx(1.0, abs=1e-6)
        assert (grid.frequencies >= -1e-12).all()


def test_calm_answers_small_queries_well(small_dataset):
    # Small query rectangles sum few noisy cells, where CALM is strong.
    mechanism = CALM(epsilon=2.0, seed=1).fit(small_dataset)
    queries = [RangeQuery.from_dict({0: (8, 11), 1: (8, 11)}),
               RangeQuery.from_dict({2: (0, 3), 3: (0, 3)})]
    truths = answer_workload(small_dataset, queries)
    estimates = mechanism.answer_workload(queries)
    assert mean_absolute_error(estimates, truths) < 0.1


def test_calm_beats_uniform_on_correlated_data(small_dataset, workload_2d):
    truths = answer_workload(small_dataset, workload_2d)
    calm = CALM(epsilon=3.0, seed=2).fit(small_dataset)
    uni = Uniform().fit(small_dataset)
    mae_calm = mean_absolute_error(calm.answer_workload(workload_2d), truths)
    mae_uni = mean_absolute_error(uni.answer_workload(workload_2d), truths)
    assert mae_calm < mae_uni


def test_calm_higher_dimensional_queries(fitted_calm, small_dataset, workload_3d):
    estimates = fitted_calm.answer_workload(workload_3d)
    assert np.isfinite(estimates).all()
    assert estimates.shape == (len(workload_3d),)


def test_calm_error_grows_with_domain_size(rng):
    # The paper's third challenge: CALM's range-query noise grows with c.
    from repro.datasets import generate_normal
    from repro.queries import WorkloadGenerator
    maes = []
    for c in (16, 64):
        dataset = generate_normal(20_000, 3, c, covariance=0.8,
                                  rng=np.random.default_rng(0))
        generator = WorkloadGenerator(3, c, rng=np.random.default_rng(1))
        queries = generator.random_workload(30, 2, 0.5)
        truths = answer_workload(dataset, queries)
        run = []
        for seed in range(3):
            mechanism = CALM(epsilon=1.0, seed=seed).fit(dataset)
            run.append(mean_absolute_error(mechanism.answer_workload(queries),
                                           truths))
        maes.append(np.mean(run))
    assert maes[1] > maes[0]
