"""Figure 4: MAE vs number of attributes d.

Paper shape: errors of the LDP mechanisms grow with d (more groups, fewer
users per group); relative ordering unchanged with HDG best.
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_4(benchmark):
    scale = current_scale()
    attribute_counts = (3, 6, 8) if scale.n_users <= 100_000 else (
        3, 4, 5, 6, 7, 8, 9, 10)

    def run():
        return figures.figure_4_vary_attributes(
            datasets=scale.datasets, attribute_counts=attribute_counts,
            query_dimensions=(2,), n_users=scale.n_users,
            domain_size=scale.domain_size, epsilon=1.0, volume=0.5,
            n_queries=scale.n_queries, n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig04_vary_attributes",
           figures.format_figure_results(results, "Figure 4: MAE vs attributes"))
    for _, sweep in results.items():
        series = sweep.series()
        assert series["HDG"][0] <= series["Uni"][0]
