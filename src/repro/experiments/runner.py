"""Experiment runner: build mechanisms, run configurations, sweep parameters.

The runner turns an :class:`~repro.experiments.config.ExperimentConfig`
into the numbers the paper plots: for every mechanism, the Mean Absolute
Error over a random query workload, averaged over repetitions.  Parameter
sweeps (the x-axes of the figures) reuse the same machinery by overriding
one field per point.

Both entry points route through :mod:`repro.experiments.executor`: the
(sweep value, repetition, mechanism) cells are independent given the
configuration seed, so they run on ``config.n_jobs`` worker processes —
bit-for-bit identical to the sequential order — and an optional
:class:`~repro.experiments.cache.ResultCache` skips cells a previous or
interrupted run already completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..baselines import CALM, HIO, LHIO, MSW, Uniform
from ..core import HDG, IHDG, ITDG, TDG, RangeQueryMechanism
from ..datasets import Dataset
from ..metrics import RepeatedRunSummary
from ..pipeline import parallel_fit, shard_seed
from ..queries import RangeQuery
from .cache import ResultCache, memoized_dataset, memoized_workload
from .config import ExperimentConfig
from .executor import (assemble_method_series, execute_grid,
                       validate_equal_workload_lengths)

#: Registry of mechanism constructors keyed by the names used in the paper.
MECHANISM_FACTORIES: dict[str, Callable[..., RangeQueryMechanism]] = {
    "Uni": Uniform,
    "MSW": MSW,
    "CALM": CALM,
    "HIO": HIO,
    "LHIO": LHIO,
    "TDG": TDG,
    "HDG": HDG,
    "ITDG": ITDG,
    "IHDG": IHDG,
}


def build_mechanism(name: str, epsilon: float, seed: int | None = None,
                    **kwargs) -> RangeQueryMechanism:
    """Instantiate a mechanism by its paper name.

    Names of the form ``"HDG(g1,g2)"`` build HDG with explicit
    granularities (the guideline-verification experiments, Figures 7/16).
    """
    if name.startswith("HDG(") and name.endswith(")"):
        inner = name[len("HDG("):-1]
        g1_str, g2_str = inner.split(",")
        kwargs = dict(kwargs)
        kwargs["granularities"] = (int(g1_str), int(g2_str))
        return HDG(epsilon, seed=seed, **kwargs)
    try:
        factory = MECHANISM_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; known: {sorted(MECHANISM_FACTORIES)}"
        ) from None
    return factory(epsilon, seed=seed, **kwargs)


@dataclass
class MethodResult:
    """Per-mechanism outcome of one experiment configuration."""

    method: str
    mae: RepeatedRunSummary
    per_query_errors: np.ndarray
    #: Per-query-kind MAE summaries; None for pure range workloads.
    per_kind_mae: dict[str, RepeatedRunSummary] | None = None


@dataclass
class ExperimentResult:
    """All mechanisms' outcomes for one configuration."""

    config: ExperimentConfig
    methods: dict[str, MethodResult] = field(default_factory=dict)

    def mae_of(self, method: str) -> float:
        """Mean MAE of one mechanism across the repetitions."""
        return self.methods[method].mae.mean


def _prepare_dataset(config: ExperimentConfig, repeat: int) -> Dataset:
    """The repetition's dataset (memoized while its parameters repeat)."""
    return memoized_dataset(config, repeat)


def fit_sharded(method: str, method_seed: int, kwargs: dict[str, Any],
                dataset: Dataset, config: ExperimentConfig) -> RangeQueryMechanism:
    """Collect a shardable mechanism over n_shards parallel user shards."""
    def factory(shard_index: int) -> RangeQueryMechanism:
        return build_mechanism(method, config.epsilon,
                               seed=shard_seed(method_seed, shard_index),
                               **kwargs)

    return parallel_fit(factory, dataset, n_shards=config.n_shards,
                        max_workers=config.shard_workers)


def _prepare_workload(config: ExperimentConfig, repeat: int) -> list[RangeQuery]:
    """The repetition's default workload (memoized like the dataset)."""
    return memoized_workload(config, repeat)


def _assemble_result(config: ExperimentConfig, cells) -> ExperimentResult:
    """Fold a config point's cell results into one ExperimentResult."""
    validate_equal_workload_lengths(config, cells)
    result = ExperimentResult(config=config)
    for method in config.methods:
        maes, mean_errors = assemble_method_series(config, cells, method)
        kind_series: dict[str, list[float]] = {}
        for repeat in range(config.n_repeats):
            per_kind = cells[(repeat, method)].per_kind_mae
            if per_kind:
                for kind, value in per_kind.items():
                    kind_series.setdefault(kind, []).append(value)
        result.methods[method] = MethodResult(
            method=method,
            mae=RepeatedRunSummary.from_values(maes),
            per_query_errors=mean_errors,
            per_kind_mae=({kind: RepeatedRunSummary.from_values(values)
                           for kind, values in kind_series.items()}
                          if kind_series else None),
        )
    return result


def run_experiment(config: ExperimentConfig,
                   workload_factory: Callable[[ExperimentConfig, Dataset, int],
                                              list[RangeQuery]] | None = None,
                   cache: ResultCache | None = None) -> ExperimentResult:
    """Run one configuration: every mechanism on the same data and workload.

    Parameters
    ----------
    config:
        The experiment point to evaluate.  ``config.n_jobs`` worker
        processes evaluate the (repetition, mechanism) cells; any value
        reproduces the sequential results bit-for-bit.
    workload_factory:
        Optional override producing the query workload from
        ``(config, dataset, repeat)``; used by the appendix experiments
        that need exhaustive or count-conditioned workloads instead of the
        default random one.  Every repetition's workload must have the
        same length (per-query errors are averaged across repetitions).
    cache:
        Optional on-disk cell cache; completed cells are skipped on
        re-runs.  Ignored when a ``workload_factory`` is given, since
        the factory's output is not part of the cache key.
    """
    config.validate()
    [cells] = execute_grid([config], workload_factory=workload_factory,
                           cache=cache)
    return _assemble_result(config, cells)


@dataclass
class SweepResult:
    """Results of varying one configuration field over several values."""

    parameter: str
    values: list[Any]
    results: list[ExperimentResult]

    def series(self) -> dict[str, list[float]]:
        """Per-method MAE series indexed like ``values`` (the plot lines)."""
        methods = self.results[0].config.methods if self.results else ()
        return {method: [result.mae_of(method) for result in self.results]
                for method in methods}

    def format_table(self, float_format: str = "{:.5f}") -> str:
        """Human-readable table: one row per method, one column per value."""
        series = self.series()
        header = [self.parameter] + [str(v) for v in self.values]
        rows = [header]
        for method, maes in series.items():
            rows.append([method] + [float_format.format(m) for m in maes])
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        return "\n".join(lines)


def sweep_parameter(base_config: ExperimentConfig, parameter: str,
                    values: list[Any],
                    config_transform: Callable[[ExperimentConfig, Any],
                                               ExperimentConfig] | None = None,
                    workload_factory=None,
                    cache: ResultCache | None = None) -> SweepResult:
    """Evaluate ``base_config`` at each value of one field.

    ``config_transform`` may be supplied for sweeps that touch more than a
    single field (e.g. varying the covariance means changing
    ``dataset_kwargs``); by default the named field is simply replaced.

    The whole (value, repetition, mechanism) grid is scheduled at once,
    so with ``base_config.n_jobs > 1`` the sweep's points run
    concurrently, and with ``cache`` set an interrupted or repeated
    sweep only executes the cells it has not completed yet.
    """
    configs = []
    for value in values:
        if config_transform is not None:
            configs.append(config_transform(base_config, value))
        else:
            configs.append(base_config.with_overrides(**{parameter: value}))
    grids = execute_grid(configs, workload_factory=workload_factory,
                         cache=cache, n_jobs=base_config.n_jobs)
    results = [_assemble_result(config, cells)
               for config, cells in zip(configs, grids)]
    return SweepResult(parameter=parameter, values=list(values), results=results)
