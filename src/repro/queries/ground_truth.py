"""Exact (non-private) range-query answering used as the evaluation baseline.

The utility metric in the paper compares each mechanism's estimate against
the true query answer computed directly on the raw dataset; this module
provides that ground truth, vectorised over numpy so full workloads of
hundreds of queries stay cheap even for millions of records.
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from .range_query import RangeQuery


def answer_query(dataset: Dataset, query: RangeQuery) -> float:
    """Exact answer of one range query: fraction of matching records."""
    mask = np.ones(dataset.n_users, dtype=bool)
    for predicate in query.predicates:
        column = dataset.column(predicate.attribute)
        mask &= (column >= predicate.low) & (column <= predicate.high)
    return float(mask.mean())


def answer_workload(dataset: Dataset, queries: list[RangeQuery]) -> np.ndarray:
    """Exact answers for a list of queries."""
    return np.array([answer_query(dataset, q) for q in queries])


def answer_query_from_joint(joint: np.ndarray, query: RangeQuery,
                            attribute_order: tuple[int, ...]) -> float:
    """Answer a query from an exact joint distribution table.

    ``joint`` is an array whose axes correspond, in order, to the
    attributes listed in ``attribute_order``; unrestricted attributes are
    summed out.  Used by tests to cross-check the record-level path.
    """
    index = []
    for attribute in attribute_order:
        if attribute in query.attributes:
            low, high = query.interval(attribute)
            index.append(slice(low, high + 1))
        else:
            index.append(slice(None))
    return float(joint[tuple(index)].sum())
