"""On-disk experiment-cell cache and in-process input memoization.

Figure reproduction evaluates a grid of (sweep value x repetition x
mechanism) cells, and interrupting or re-running a sweep used to redo
every cell from scratch.  Two layers make the grid incremental:

* :class:`ResultCache` — a directory of JSON files, one per completed
  cell, keyed by a stable SHA-256 hash of the fully-resolved
  configuration point plus the repetition index and mechanism name.
  Execution-only knobs (``n_jobs``, ``shard_workers``) and the number of
  repetitions are excluded from the key: they do not change what a cell
  computes, so a sweep resumed with more workers or more repetitions
  still hits every cell it already finished.  Any field that does change
  the numbers — population, budget, seed, sharding, the query engine,
  the mechanism line-up (whose order fixes the per-cell seed) —
  invalidates the key.
* Input memoization — within one process, datasets, workloads and
  ground-truth answers are rebuilt from their generation parameters
  only when those parameters change.  An epsilon sweep re-uses one
  dataset per repetition across all sweep points instead of
  regenerating identical data per point; executor workers inherit the
  same memo, so each worker builds a dataset at most once per
  (parameters, repetition) pair.

Everything here is deterministic: a memoized object is bit-for-bit the
object the un-memoized builder would have produced, because the builders
derive their randomness from the key fields alone.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..datasets import Dataset, make_dataset
from ..queries import RangeQuery, WorkloadGenerator
from ..queries import answer_workload as true_answer_workload
from ..queries import evaluate_workload as true_evaluate_workload
from .config import ExperimentConfig

#: Bump when the cached cell schema or the cell computation changes
#: incompatibly; old entries then miss instead of being misread.
#: v2: cells carry query kinds and per-kind MAEs for mixed workloads.
CACHE_VERSION = 2

#: Config fields that do not affect what one cell computes.
EXECUTION_ONLY_FIELDS = frozenset({"n_jobs", "shard_workers", "n_repeats"})


def _canonical(value: Any) -> Any:
    """JSON-stable form of a config field value (tuples, numpy scalars...)."""
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def config_fingerprint(config: ExperimentConfig) -> dict:
    """Resolved, JSON-stable view of every result-affecting config field."""
    fingerprint = {}
    for field_info in fields(config):
        if field_info.name in EXECUTION_ONLY_FIELDS:
            continue
        fingerprint[field_info.name] = _canonical(getattr(config, field_info.name))
    return fingerprint


def cell_key(config: ExperimentConfig, repeat: int, method: str) -> str:
    """Stable cache key of one (config point, repetition, mechanism) cell."""
    payload = {
        "version": CACHE_VERSION,
        "config": config_fingerprint(config),
        "repeat": int(repeat),
        "method": method,
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass
class CellResult:
    """Outcome of one executed cell: the MAE and per-query errors.

    Mixed-kind workloads additionally record each query's kind (aligned
    with ``per_query_errors``) and the per-kind mean errors; pure range
    workloads leave both None.
    """

    method: str
    repeat: int
    mae: float
    per_query_errors: np.ndarray
    query_kinds: list[str] | None = None
    per_kind_mae: dict[str, float] | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form (what the on-disk cache stores)."""
        return {
            "method": self.method,
            "repeat": self.repeat,
            "mae": self.mae,
            "per_query_errors": self.per_query_errors.tolist(),
            "query_kinds": self.query_kinds,
            "per_kind_mae": self.per_kind_mae,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellResult":
        per_kind = payload.get("per_kind_mae")
        return cls(method=str(payload["method"]), repeat=int(payload["repeat"]),
                   mae=float(payload["mae"]),
                   per_query_errors=np.asarray(payload["per_query_errors"],
                                               dtype=float),
                   query_kinds=payload.get("query_kinds"),
                   per_kind_mae=({str(kind): float(value)
                                  for kind, value in per_kind.items()}
                                 if per_kind is not None else None))


class ResultCache:
    """Directory-backed cell cache with hit/miss accounting.

    Entries are written atomically (temp file + rename) so an
    interrupted run never leaves a truncated entry behind; unreadable or
    schema-mismatched entries count as misses and are overwritten.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> CellResult | None:
        """Cached cell for ``key``, or None (and a counted miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            result = CellResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: CellResult) -> None:
        """Persist one completed cell under its key (atomic write)."""
        path = self._path(key)
        # A fresh temp name per write keeps the rename atomic even when
        # concurrent sweeps share one cache directory and finish the
        # same cell; both then promote a complete file.
        descriptor, temporary = tempfile.mkstemp(dir=self.directory,
                                                 suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(json.dumps(result.to_dict()))
            os.replace(temporary, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> str:
        """Human-readable hit/miss summary (printed by the CLI)."""
        return f"{self.hits} hits, {self.misses} misses ({self.directory})"


# ----------------------------------------------------------------------
# Deterministic input builders (moved here from the runner so the
# executor's worker processes can construct inputs without importing the
# runner's mechanism registry).
# ----------------------------------------------------------------------
def build_dataset(config: ExperimentConfig, repeat: int) -> Dataset:
    """The repetition's dataset, derived from the config's data fields only."""
    rng = np.random.default_rng(config.seed + 1_000_003 * repeat)
    return make_dataset(config.dataset, config.n_users, config.n_attributes,
                        config.domain_size, rng=rng, **config.dataset_kwargs)


def build_workload(config: ExperimentConfig, repeat: int) -> list[RangeQuery]:
    """The repetition's default random workload.

    ``config.query_kinds == ("range",)`` (the paper's default) keeps the
    original pure range workload and RNG stream; any other tuple cycles
    the listed typed IR kinds round-robin.
    """
    rng = np.random.default_rng(config.seed + 7_000_003 * repeat + 17)
    generator = WorkloadGenerator(config.n_attributes, config.domain_size, rng=rng)
    if config.is_mixed_workload:
        return generator.mixed_workload(config.n_queries,
                                        config.query_dimension, config.volume,
                                        query_kinds=tuple(config.query_kinds),
                                        k=config.top_k)
    return generator.random_workload(config.n_queries, config.query_dimension,
                                     config.volume)


def dataset_memo_key(config: ExperimentConfig, repeat: int) -> str:
    """Key over exactly the fields :func:`build_dataset` reads."""
    payload = _canonical([config.dataset, config.n_users, config.n_attributes,
                          config.domain_size, config.seed,
                          config.dataset_kwargs, repeat])
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))

def workload_memo_key(config: ExperimentConfig, repeat: int) -> str:
    """Key over exactly the fields :func:`build_workload` reads."""
    payload = [config.n_attributes, config.domain_size, config.seed,
               config.n_queries, config.query_dimension, config.volume,
               list(config.query_kinds), config.top_k, repeat]
    return json.dumps(payload, separators=(",", ":"))


#: Every live memo store, so :func:`clear_memos` can reset them all.
_ALL_MEMO_STORES: list["_MemoStore"] = []


class _MemoStore:
    """Tiny FIFO-bounded memo; bounded because datasets can be tens of MB."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        _ALL_MEMO_STORES.append(self)

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key]
        value = builder()
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self._entries.clear()


_dataset_memo = _MemoStore(max_entries=3)
_workload_memo = _MemoStore(max_entries=8)
_truths_memo = _MemoStore(max_entries=8)


def memoized_dataset(config: ExperimentConfig, repeat: int) -> Dataset:
    """Dataset for (config, repeat), reused while its parameters repeat.

    Datasets are treated as immutable by every mechanism (collection only
    reads ``values``), so sharing one instance across sweep points is
    safe and exact.
    """
    return _dataset_memo.get_or_build(dataset_memo_key(config, repeat),
                                      lambda: build_dataset(config, repeat))


def memoized_workload(config: ExperimentConfig, repeat: int) -> list[RangeQuery]:
    return _workload_memo.get_or_build(workload_memo_key(config, repeat),
                                       lambda: build_workload(config, repeat))


def true_answers(dataset: Dataset, queries: list):
    """Exact answers of a workload: flat floats, or typed results if mixed.

    Dispatches on the workload's *content* — the same check the
    mechanisms' ``answer_workload`` applies — so truths and estimates
    always come back in matching shapes (a mixed ``query_kinds`` config
    can still generate an all-range workload when ``n_queries`` is
    smaller than the kind cycle).
    """
    if any(not isinstance(query, RangeQuery) for query in queries):
        return true_evaluate_workload(dataset, queries)
    return true_answer_workload(dataset, queries)


def memoized_truths(config: ExperimentConfig, repeat: int, dataset: Dataset,
                    queries: list):
    """Exact workload answers, reused across the mechanisms of one cell row.

    A float vector for pure range workloads; a list of typed
    :class:`~repro.queries.QueryResult` objects for mixed workloads.
    """
    key = dataset_memo_key(config, repeat) + "|" + workload_memo_key(config, repeat)
    return _truths_memo.get_or_build(key,
                                     lambda: true_answers(dataset, queries))


def clear_memos() -> None:
    """Drop every memoized input (tests and benchmarks)."""
    for store in _ALL_MEMO_STORES:
        store.clear()
