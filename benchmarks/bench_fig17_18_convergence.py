"""Figures 17-18: convergence rates of Algorithm 1 and Algorithm 2.

Paper shape: the per-sweep change of both Weighted Update instances drops
by many orders of magnitude within roughly twenty sweeps.
"""

from _scale import current_scale, report

from repro.experiments import appendix


def bench_figures_17_18(benchmark):
    scale = current_scale()
    epsilons = (0.2, 1.0, 1.8)

    def run():
        matrix = appendix.figure_17_convergence_matrix(
            datasets=scale.datasets[:2], epsilons=epsilons,
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            domain_size=scale.domain_size, max_iterations=50, seed=0)
        queries = appendix.figure_18_convergence_query(
            datasets=scale.datasets[:1], epsilons=epsilons, query_dimension=4,
            n_users=scale.n_users, n_attributes=scale.n_attributes,
            domain_size=scale.domain_size, volume=0.5,
            n_queries=max(5, scale.n_queries // 10), max_iterations=60, seed=0)
        return matrix, queries

    matrix, queries = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Figure 17: Algorithm 1 change per sweep =="]
    for dataset, per_epsilon in matrix.items():
        for epsilon, history in per_epsilon.items():
            lines.append(f"{dataset} eps={epsilon}: first={history[0]:.3e} "
                         f"sweep20={history[min(19, len(history) - 1)]:.3e} "
                         f"last={history[-1]:.3e}")
    lines.append("== Figure 18: Algorithm 2 change per sweep ==")
    for dataset, per_epsilon in queries.items():
        for epsilon, history in per_epsilon.items():
            lines.append(f"{dataset} eps={epsilon}: first={history[0]:.3e} "
                         f"last={history[-1]:.3e}")
    report("fig17_18_convergence", "\n".join(lines))
    for dataset, per_epsilon in matrix.items():
        for epsilon, history in per_epsilon.items():
            index20 = min(19, len(history) - 1)
            assert history[index20] < history[0]
