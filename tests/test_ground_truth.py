"""Tests for exact (non-private) query answering."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.queries import (RangeQuery, answer_query, answer_query_from_joint,
                           answer_workload)


@pytest.fixture
def dataset():
    values = np.array([
        [0, 0, 0],
        [1, 1, 1],
        [2, 2, 2],
        [3, 3, 3],
        [0, 3, 1],
    ])
    return Dataset(values, domain_size=4)


def test_single_attribute_query(dataset):
    query = RangeQuery.from_dict({0: (0, 1)})
    assert answer_query(dataset, query) == pytest.approx(3 / 5)


def test_two_attribute_query(dataset):
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1)})
    assert answer_query(dataset, query) == pytest.approx(2 / 5)


def test_full_domain_query_answers_one(dataset):
    query = RangeQuery.from_dict({0: (0, 3), 1: (0, 3), 2: (0, 3)})
    assert answer_query(dataset, query) == pytest.approx(1.0)


def test_empty_query_region(dataset):
    query = RangeQuery.from_dict({0: (3, 3), 1: (0, 0)})
    assert answer_query(dataset, query) == 0.0


def test_answer_workload_matches_individual_answers(dataset):
    queries = [RangeQuery.from_dict({0: (0, 1)}),
               RangeQuery.from_dict({1: (2, 3), 2: (1, 2)})]
    answers = answer_workload(dataset, queries)
    assert answers.shape == (2,)
    assert answers[0] == pytest.approx(answer_query(dataset, queries[0]))
    assert answers[1] == pytest.approx(answer_query(dataset, queries[1]))


def test_answer_from_joint_matches_record_level(dataset):
    # Full 3-D joint distribution of the toy dataset.
    joint = np.zeros((4, 4, 4))
    for row in dataset.values:
        joint[tuple(row)] += 1 / dataset.n_users
    query = RangeQuery.from_dict({0: (0, 1), 2: (1, 3)})
    expected = answer_query(dataset, query)
    via_joint = answer_query_from_joint(joint, query, attribute_order=(0, 1, 2))
    assert via_joint == pytest.approx(expected)


def test_consistency_with_marginals(small_dataset):
    # Summing a 1-D query over the whole domain must give 1.
    query = RangeQuery.from_dict({2: (0, small_dataset.domain_size - 1)})
    assert answer_query(small_dataset, query) == pytest.approx(1.0)
