"""Stdlib HTTP front-end for :class:`~repro.serving.QueryService`.

The API is a small JSON-over-HTTP surface on a worker-pool server — no
third-party dependencies.  Connections are accepted on the listener
thread and handed to a bounded :class:`~concurrent.futures.
ThreadPoolExecutor`, each worker serving its connection's requests
(HTTP/1.1 keep-alive) with the service's internal lock serializing
state changes:

=======  =============  ====================================================
Method   Path           Meaning
=======  =============  ====================================================
GET      ``/healthz``   Service status document + package version
POST     ``/ingest``    ``{"rows": [[...], ...], "domain_size"?: c}``
POST     ``/query``     ``{"queries": [...]}`` — one typed wire workload —
                        or ``{"workloads": [[...], ...]}`` — a batch of
                        workloads answered under one lock acquisition (see
                        :meth:`~repro.serving.QueryService.query_wire_batch`)
POST     ``/refinalize``  Force a re-finalize of the pending reports
POST     ``/snapshot``  Write a snapshot version (requires a store)
GET      ``/snapshot``  List stored snapshot versions
=======  =============  ====================================================

Errors return a structured body ``{"error": msg, "code": code}``:
400 ``bad-request`` for malformed payloads (including bodies that are
not valid JSON and unknown query ``"type"`` values), 404 ``not-found``
for unknown paths, 409 ``conflict`` for operations the service cannot
perform in its current state (not ready, static mode, no snapshot
store), and 500 ``internal`` for unexpected failures — never a raw
traceback on the wire.

Build a bound server with :func:`build_server` (``port=0`` picks a free
port — the tests and the in-process quickstart rely on that) and run it
with :func:`serve` or the server's own ``serve_forever``.  The CLI verb
``repro serve`` wraps exactly this module; docs/serving.md shows the
curl transcript.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, HTTPServer

from .._version import package_version
from .service import QueryService, ServiceError
from .snapshot import SnapshotStore

__all__ = ["ServingHTTPServer", "ServingRequestHandler", "build_server",
           "serve"]

#: Default size of the request worker pool.
DEFAULT_WORKERS = 8


class ServingHTTPServer(HTTPServer):
    """HTTP server dispatching connections onto a bounded worker pool.

    ``ThreadingHTTPServer`` spawns an unbounded thread per connection
    and (with daemon threads) may exit mid-response; with non-daemon
    threads every connection still pays thread start-up on the accept
    path.  This server keeps a fixed pool of warm workers instead: the
    listener thread only accepts and enqueues, a worker owns the
    connection for its whole keep-alive lifetime, and
    ``server_close()`` drains the pool so every started response is
    written before shutdown completes.
    """

    def __init__(self, server_address, RequestHandlerClass,
                 workers: int = DEFAULT_WORKERS):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serving-worker")
        super().__init__(server_address, RequestHandlerClass)

    def process_request(self, request, client_address) -> None:
        self._pool.submit(self._process_in_worker, request, client_address)

    def _process_in_worker(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def server_close(self) -> None:
        super().server_close()
        self._pool.shutdown(wait=True)


class ServingRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto one :class:`QueryService`.

    Subclasses produced by :func:`build_server` bind the ``service``,
    ``snapshot_store`` and ``verbose`` class attributes.
    """

    service: QueryService
    snapshot_store: SnapshotStore | None = None
    verbose: bool = False

    server_version = "repro-serving/1.0"
    #: HTTP/1.1 keeps connections alive across requests, so a client
    #: posting a stream of workloads pays the TCP/accept cost once.
    protocol_version = "HTTP/1.1"
    #: Socket timeout: an idle keep-alive connection releases its pool
    #: worker after this many seconds instead of pinning it forever.
    timeout = 5.0
    #: TCP_NODELAY: a response is written as two small sends (headers,
    #: body); with Nagle on, the second waits for the client's delayed
    #: ACK — a ~40 ms stall per keep-alive request.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        """Structured error body: ``error`` stays a plain string (the
        stable field clients match on), ``code`` is the machine tag."""
        self._send_json(status, {"error": message, "code": code})

    def _read_json(self) -> dict:
        """The request body as a JSON object.

        Always consumes the full ``Content-Length`` before raising, so
        a malformed body never desynchronizes a keep-alive connection.
        """
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        document = json.loads(raw)
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Read-only routes: ``/healthz`` and the snapshot listing."""
        try:
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok",
                                      "version": package_version(),
                                      **self.service.status()})
            elif self.path == "/snapshot":
                if self.snapshot_store is None:
                    self._send_error_json(
                        409, "conflict", "no snapshot store configured "
                        "(start with --snapshot-dir)")
                else:
                    self._send_json(200, {
                        "directory": str(self.snapshot_store.directory),
                        "versions": self.snapshot_store.versions(),
                        "latest": self.snapshot_store.latest_version(),
                    })
            else:
                self._send_error_json(404, "not-found",
                                      f"unknown path {self.path}")
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, "internal",
                                  f"internal error: "
                                  f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """State-changing routes: ingest, query, refinalize, snapshot."""
        # Read (and fully consume) the body before routing: a parse
        # failure must still leave the connection aligned on the next
        # request boundary, and must answer 400, not tear down the
        # connection with a traceback.
        try:
            payload = self._read_json()
        except ValueError as error:
            self._send_error_json(400, "bad-request",
                                  f"bad request: invalid JSON body ({error})")
            return
        try:
            if self.path == "/ingest":
                receipt = self.service.ingest(payload["rows"],
                                              payload.get("domain_size"))
                self._send_json(200, receipt)
            elif self.path == "/query":
                self._send_json(200, self._answer_query(payload))
            elif self.path == "/refinalize":
                self._send_json(200, self.service.refinalize())
            elif self.path == "/snapshot":
                if self.snapshot_store is None:
                    raise ServiceError("no snapshot store configured "
                                       "(start with --snapshot-dir)")
                info = self.service.save_snapshot(self.snapshot_store)
                self._send_json(200, {"version": info.version,
                                      "path": str(info.path)})
            else:
                self._send_error_json(404, "not-found",
                                      f"unknown path {self.path}")
        except ServiceError as error:
            self._send_error_json(409, "conflict", str(error))
        except (KeyError, ValueError, TypeError) as error:
            self._send_error_json(400, "bad-request",
                                  f"bad request: {error}")
        except Exception as error:
            self._send_error_json(500, "internal",
                                  f"internal error: "
                                  f"{type(error).__name__}: {error}")

    def _answer_query(self, payload: dict) -> dict:
        """Dispatch ``/query``: one workload or a batch of workloads."""
        if "workloads" in payload:
            if "queries" in payload:
                raise ValueError(
                    "pass either 'queries' or 'workloads', not both")
            return self.service.query_wire_batch(payload["workloads"])
        if "queries" not in payload:
            raise ValueError("payload needs 'queries' (one workload) or "
                             "'workloads' (a batch of workloads)")
        return self.service.query_wire(payload["queries"])


def build_server(service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, snapshot_store: SnapshotStore | None = None,
                 verbose: bool = False,
                 workers: int = DEFAULT_WORKERS) -> ServingHTTPServer:
    """A bound (not yet running) worker-pool HTTP server over ``service``.

    ``port=0`` binds any free port; read the result from
    ``server.server_address``.  ``workers`` sizes the request pool —
    each worker owns one keep-alive connection at a time.
    """
    handler = type("BoundServingRequestHandler", (ServingRequestHandler,),
                   {"service": service, "snapshot_store": snapshot_store,
                    "verbose": verbose})
    return ServingHTTPServer((host, port), handler, workers=workers)


def serve(server: ServingHTTPServer,
          max_requests: int | None = None) -> None:
    """Run the accept loop: forever, or for ``max_requests`` connections.

    The bounded form exists for smoke tests and scripted ops checks
    (``repro serve --max-requests N``); callers still own
    ``server.server_close()``, which drains the worker pool so every
    accepted connection finishes its responses.
    """
    if max_requests is None:
        server.serve_forever()
    else:
        for _ in range(max_requests):
            server.handle_request()
