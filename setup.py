"""Setuptools entry point.

Plain ``setup.py`` metadata (no pyproject) so that
``pip install -e . --no-build-isolation`` works in offline environments
where the ``wheel`` package is unavailable.  Installing provides the
``repro`` package (src layout) and the ``repro`` console command.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: src/repro/_version.py.
VERSION = re.search(r'__version__ = "([^"]+)"',
                    Path("src/repro/_version.py").read_text()).group(1)

setup(
    name="repro-ldp-range-queries",
    version=VERSION,
    description=(
        "Reproduction of 'Answering Multi-Dimensional Range Queries under "
        "Local Differential Privacy' (Yang et al., VLDB 2020): TDG/HDG "
        "mechanisms, baselines, a typed query IR with a workload planner "
        "(range/marginal/point/count/top-k), a shard-mergeable aggregation "
        "pipeline and an online query-serving subsystem with snapshot "
        "persistence"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        # The core library deliberately avoids scipy; it is only useful for
        # ad-hoc analysis next to the benchmarks.
        "benchmarks": ["pytest", "pytest-benchmark", "scipy"],
        "test": ["pytest"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: Security",
    ],
)
