"""Figure 2: MAE vs per-dimension query volume ω.

Paper shape: HDG consistently outperforms the other approaches; LDP
mechanisms (except HIO) show arch-like MAE trends caused by the
consistency step (answers near ω = 1 are pinned by the total mass).
"""

from _scale import current_scale, report

from repro.experiments import figures


def bench_figure_2(benchmark):
    scale = current_scale()

    def run():
        return figures.figure_2_vary_volume(
            datasets=scale.datasets, volumes=scale.volumes,
            query_dimensions=(2,), n_users=scale.n_users,
            n_attributes=scale.n_attributes, domain_size=scale.domain_size,
            epsilon=1.0, n_queries=scale.n_queries,
            n_repeats=scale.n_repeats, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig02_vary_volume",
           figures.format_figure_results(results, "Figure 2: MAE vs volume"))
    for (dataset, dimension), sweep in results.items():
        series = sweep.series()
        # HDG never loses to HIO and beats Uni on at least half the volumes.
        wins = sum(hdg < uni for hdg, uni in zip(series["HDG"], series["Uni"]))
        assert wins >= len(series["HDG"]) // 2
