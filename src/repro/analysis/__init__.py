"""Analytical error model backing the granularity guideline (Section 4.5/4.6)."""

from .error_model import (ErrorBreakdown, best_modelled_granularity,
                          cell_noise_variance, grid1d_squared_error,
                          grid2d_error_breakdown, grid2d_squared_error)

__all__ = [
    "ErrorBreakdown",
    "best_modelled_granularity",
    "cell_noise_variance",
    "grid1d_squared_error",
    "grid2d_error_breakdown",
    "grid2d_squared_error",
]
