"""Tests for Algorithm 1 (response-matrix construction)."""

import numpy as np
import pytest

from repro.core import Grid1D, Grid2D, build_response_matrix


def _exact_grids(joint: np.ndarray, g1: int, g2: int):
    """Build noise-free grids from an exact c x c joint distribution."""
    c = joint.shape[0]
    grid_row = Grid1D(0, c, g1)
    grid_col = Grid1D(1, c, g1)
    grid_pair = Grid2D((0, 1), c, g2)
    grid_row.set_frequencies(joint.sum(axis=1).reshape(g1, -1).sum(axis=1))
    grid_col.set_frequencies(joint.sum(axis=0).reshape(g1, -1).sum(axis=1))
    w = c // g2
    grid_pair.set_frequencies(joint.reshape(g2, w, g2, w).sum(axis=(1, 3)))
    return grid_row, grid_col, grid_pair


def test_matrix_shape_and_mass():
    c = 16
    joint = np.full((c, c), 1.0 / (c * c))
    grids = _exact_grids(joint, 8, 4)
    result = build_response_matrix(*grids, domain_size=c)
    assert result.matrix.shape == (c, c)
    assert result.matrix.sum() == pytest.approx(1.0, abs=1e-6)
    assert (result.matrix >= 0).all()


def test_uniform_joint_recovered_exactly():
    c = 16
    joint = np.full((c, c), 1.0 / (c * c))
    grids = _exact_grids(joint, 8, 4)
    result = build_response_matrix(*grids, domain_size=c)
    np.testing.assert_allclose(result.matrix, joint, atol=1e-9)
    assert result.converged


def test_matrix_respects_grid_constraints():
    rng = np.random.default_rng(0)
    c = 16
    joint = rng.random((c, c))
    joint /= joint.sum()
    grid_row, grid_col, grid_pair = _exact_grids(joint, 8, 4)
    result = build_response_matrix(grid_row, grid_col, grid_pair, c,
                                   max_iterations=200)
    matrix = result.matrix
    # Row-band sums must equal the row 1-D grid frequencies, and similarly
    # for columns and 2-D blocks.
    np.testing.assert_allclose(matrix.reshape(8, 2, c).sum(axis=(1, 2)),
                               grid_row.frequencies, atol=1e-4)
    np.testing.assert_allclose(matrix.reshape(c, 8, 2).sum(axis=(0, 2)),
                               grid_col.frequencies, atol=1e-4)
    np.testing.assert_allclose(matrix.reshape(4, 4, 4, 4).sum(axis=(1, 3)),
                               grid_pair.frequencies, atol=1e-4)


def test_matrix_improves_over_uniform_guess_on_skewed_data():
    rng = np.random.default_rng(1)
    c = 32
    # Strongly diagonal joint (highly correlated attributes).
    joint = np.eye(c) + 0.01
    joint /= joint.sum()
    grids = _exact_grids(joint, 16, 4)
    result = build_response_matrix(*grids, domain_size=c, max_iterations=200)
    uniform_guess = np.full((c, c), 1.0 / (c * c))
    error_matrix = np.abs(result.matrix - joint).sum()
    error_uniform = np.abs(uniform_guess - joint).sum()
    assert error_matrix < error_uniform


def test_convergence_history_is_decreasing_overall():
    rng = np.random.default_rng(2)
    c = 16
    joint = rng.random((c, c))
    joint /= joint.sum()
    grids = _exact_grids(joint, 8, 4)
    result = build_response_matrix(*grids, domain_size=c, threshold=0.0,
                                   max_iterations=30, track_history=True)
    history = result.change_history
    assert len(history) == result.iterations
    # The paper observes convergence within roughly twenty sweeps.
    assert history[-1] < history[0]


def test_zero_cells_leave_matrix_untouched():
    c = 8
    grid_row = Grid1D(0, c, 4)
    grid_col = Grid1D(1, c, 4)
    grid_pair = Grid2D((0, 1), c, 2)
    # All frequency in the first half of attribute 0.
    grid_row.set_frequencies(np.array([0.5, 0.5, 0.0, 0.0]))
    grid_col.set_frequencies(np.array([0.25, 0.25, 0.25, 0.25]))
    grid_pair.set_frequencies(np.array([[0.5, 0.5], [0.0, 0.0]]))
    result = build_response_matrix(grid_row, grid_col, grid_pair, c)
    # The lower half (rows 4..7) must carry ~no mass.
    assert result.matrix[4:, :].sum() == pytest.approx(0.0, abs=1e-9)
    assert result.matrix.sum() == pytest.approx(1.0, abs=1e-6)


def test_domain_mismatch_rejected():
    grid_row = Grid1D(0, 16, 4)
    grid_col = Grid1D(1, 16, 4)
    grid_pair = Grid2D((0, 1), 16, 4)
    with pytest.raises(ValueError):
        build_response_matrix(grid_row, grid_col, grid_pair, domain_size=32)
