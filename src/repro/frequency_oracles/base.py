"""Abstract interface shared by all LDP frequency oracles.

A frequency oracle estimates, under ε-LDP, the frequency (fraction of
users) of every value in a categorical domain ``[c]`` given one report per
user.  Every concrete oracle in this package implements
:class:`FrequencyOracle` and exposes a single high-level entry point,
:meth:`FrequencyOracle.estimate_frequencies`, so the grid approaches and
baselines can swap oracles freely.
"""

from __future__ import annotations

import abc
import math

import numpy as np


class FrequencyOracle(abc.ABC):
    """Base class for ε-LDP categorical frequency oracles.

    Parameters
    ----------
    epsilon:
        Privacy budget used by each user's single report.
    domain_size:
        Number of categories ``c``; user values are integers in ``[0, c)``.
    rng:
        Randomness source.  Passing an explicitly seeded generator makes the
        whole collection pipeline reproducible.
    """

    def __init__(self, epsilon: float, domain_size: int,
                 rng: np.random.Generator | None = None):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if domain_size < 2:
            raise ValueError(f"domain_size must be >= 2, got {domain_size}")
        self.epsilon = float(epsilon)
        self.domain_size = int(domain_size)
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Main API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate_frequencies(self, values: np.ndarray) -> np.ndarray:
        """Collect perturbed reports for ``values`` and estimate frequencies.

        Parameters
        ----------
        values:
            Integer array of true user values in ``[0, domain_size)``, one
            entry per reporting user.

        Returns
        -------
        numpy.ndarray
            Unbiased frequency estimates of length ``domain_size`` which sum
            to approximately 1 (they may be negative or exceed 1 before
            post-processing).
        """

    @abc.abstractmethod
    def variance(self, n: int, true_frequency: float = 0.0) -> float:
        """Theoretical per-value estimation variance for ``n`` users."""

    # ------------------------------------------------------------------
    # Helpers shared by implementations
    # ------------------------------------------------------------------
    def _validate_values(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("values must be a 1-D array of user reports")
        if values.size == 0:
            raise ValueError("cannot estimate frequencies from zero users")
        if values.min() < 0 or values.max() >= self.domain_size:
            raise ValueError(
                "user values must lie in [0, domain_size); got range "
                f"[{values.min()}, {values.max()}] for domain {self.domain_size}"
            )
        return values

    @property
    def e_eps(self) -> float:
        """Convenience accessor for ``e^epsilon``."""
        return math.exp(self.epsilon)


def grr_variance(epsilon: float, domain_size: int, n: int) -> float:
    """Equation (2): variance of Generalized Randomized Response."""
    e_eps = math.exp(epsilon)
    return (domain_size - 2 + e_eps) / ((e_eps - 1) ** 2 * n)


def olh_variance(epsilon: float, n: int) -> float:
    """Equation (3): variance of Optimized Local Hash."""
    e_eps = math.exp(epsilon)
    return 4.0 * e_eps / ((e_eps - 1) ** 2 * n)
