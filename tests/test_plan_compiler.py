"""Differential harness pinning the fused plan compiler to the planner.

The compiled execution path (:mod:`repro.queries.compiler`) must be a
pure performance change: for every mechanism and every query kind,
``answer_typed`` through the fused gather/reassembly pass has to
reproduce the interpreted :class:`~repro.queries.QueryPlan` path — and
the per-query planner path — **bitwise**.  Bitwise (not approximate)
equality is assertable because every layer the compiler regroups is
elementwise-independent: grid corner lookups answer each range from its
own four corners, scalar reassembly multiplies each primitive by its
own scale, and ``weighted_update_batch`` deactivates each row's
iteration independently of its batch-mates.  The single exception —
re-batching λ>2 estimation rows one query at a time reassociates
NumPy's pairwise axis-sums by one ulp — is confined to the per-query
reference and documented on :func:`assert_results_bitwise_equal`.

Also covers the :class:`~repro.queries.PlanCache` LRU/counter contract
and multi-threaded answering through a tiny cache under eviction
pressure (no cross-request result bleed).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import build_mechanism, make_dataset
from repro.queries import (CompiledPlan, PlanCache, WorkloadGenerator,
                           plan_cache_key, workload_fingerprint)
from repro.queries.ir import (DistributionResult, ScalarResult, TopKResult,
                              query_kind)

ALL_MECHANISMS = ("Uni", "MSW", "CALM", "HIO", "LHIO",
                  "TDG", "HDG", "ITDG", "IHDG")
N_USERS = 2_000
N_ATTRIBUTES = 3
DOMAIN_SIZE = 16
EPSILON = 1.0
SEED = 11


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(SEED)
    return make_dataset("normal", N_USERS, N_ATTRIBUTES, DOMAIN_SIZE, rng=rng)


def fitted(name: str, dataset, **kwargs):
    return build_mechanism(name, EPSILON, seed=SEED, **kwargs).fit(dataset)


def seeded_mixed_workload(n_queries: int, dimension: int, seed: int,
                          table_dimension: int | None = None) -> list:
    generator = WorkloadGenerator(N_ATTRIBUTES, DOMAIN_SIZE,
                                  rng=np.random.default_rng(seed))
    return generator.mixed_workload(n_queries, dimension, 0.5,
                                    table_dimension=table_dimension)


def assert_results_bitwise_equal(fused, reference, rtol: float = 0.0):
    """Typed results from the fused path == the reference path, bitwise.

    The default is exact (no tolerance): see the module docstring —
    every regrouped kernel is elementwise-independent, so there is no
    float reassociation to forgive.  The one exception is comparing a
    *batched* run against a *per-query* run of λ>2 estimation:
    ``weighted_update_batch`` sums constraint slices with
    ``ndarray.sum(axis=1)``, and NumPy's pairwise reduction splits an
    ``(n, k)`` batch differently from a ``(1, k)`` batch, so re-batching
    reassociates those float additions.  Observed divergence is one ulp
    (~1e-16); callers pass ``rtol=1e-9`` there, a bound a million times
    looser than the effect it forgives.
    """
    assert len(fused) == len(reference)

    def values_equal(left_values, right_values) -> bool:
        if rtol == 0.0:
            return np.array_equal(left_values, right_values)
        return np.allclose(left_values, right_values, rtol=rtol, atol=0.0)

    for left, right in zip(fused, reference):
        assert type(left) is type(right)
        assert left.query == right.query
        if isinstance(left, ScalarResult):
            assert values_equal(left.value, right.value)
            assert left.population == right.population
        elif isinstance(left, DistributionResult):
            assert left.values.shape == right.values.shape
            assert values_equal(left.values, right.values)
        elif isinstance(left, TopKResult):
            assert left.cells == right.cells
            assert values_equal(left.values, right.values)
        else:  # pragma: no cover - new result kinds must be added here
            raise AssertionError(f"unhandled result type {type(left)!r}")


def interpreted_reference(mechanism, queries):
    """The pre-compiler path: plan once, answer the flat list, assemble."""
    plan = mechanism.query_planner().plan(queries)
    return plan.assemble(mechanism._answer_ranges(plan.ranges))


def per_query_reference(mechanism, queries):
    """The strictest reference: each query planned and answered alone."""
    planner = mechanism.query_planner()
    results = []
    for query in queries:
        plan = planner.plan([query])
        results.extend(plan.assemble(mechanism._answer_ranges(plan.ranges)))
    return results


# ----------------------------------------------------------------------
# Differential: fused == interpreted == per-query, all nine mechanisms
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_MECHANISMS)
def test_fused_matches_planner_paths_all_mechanisms(name, dataset):
    mechanism = fitted(name, dataset)
    queries = seeded_mixed_workload(30, 2, seed=101)
    assert sorted({query_kind(query) for query in queries}) == [
        "count", "marginal", "point", "range", "topk"]

    fused = mechanism.answer_typed(queries)
    assert_results_bitwise_equal(fused, interpreted_reference(mechanism,
                                                              queries))
    assert_results_bitwise_equal(fused, per_query_reference(mechanism,
                                                            queries))
    # Answering again from the warm plan cache changes nothing.
    assert_results_bitwise_equal(fused, mechanism.answer_typed(queries))


@pytest.mark.parametrize("name", ["TDG", "HDG", "ITDG", "IHDG"])
def test_fused_matches_planner_paths_lambda3(name, dataset):
    # λ=3 ranges exercise the multi-dimensional weighted-update groups
    # (sub-answer gather matrix + one batched estimation call).
    mechanism = fitted(name, dataset)
    queries = seeded_mixed_workload(18, 3, seed=202)
    fused = mechanism.answer_typed(queries)
    assert_results_bitwise_equal(fused, interpreted_reference(mechanism,
                                                              queries))
    # Per-query answering re-batches the λ=3 weighted-update rows one at
    # a time; that reassociates NumPy's pairwise axis-sums (see the
    # helper's docstring), so this comparison — and only this one —
    # carries a tolerance.
    assert_results_bitwise_equal(fused,
                                 per_query_reference(mechanism, queries),
                                 rtol=1e-9)


def test_fused_matches_planner_paths_max_entropy(dataset):
    # λ>2 under max-entropy estimation takes the fallback (per-plan)
    # path inside _answer_compiled; the answers must still agree.
    mechanism = fitted("TDG", dataset, estimation_method="max_entropy",
                       estimation_iterations=50)
    queries = seeded_mixed_workload(12, 3, seed=303)
    fused = mechanism.answer_typed(queries)
    assert_results_bitwise_equal(fused, interpreted_reference(mechanism,
                                                              queries))


@pytest.mark.parametrize("name", ["TDG", "HDG"])
def test_fused_matches_legacy_toggle(name, dataset):
    # use_legacy_answering must bypass the fused kernels entirely and
    # still agree with the interpreted reference under the same toggle.
    mechanism = fitted(name, dataset)
    mechanism.use_legacy_answering = True
    queries = seeded_mixed_workload(12, 2, seed=404)
    fused = mechanism.answer_typed(queries)
    assert_results_bitwise_equal(fused, interpreted_reference(mechanism,
                                                              queries))
    mechanism.use_legacy_answering = False


def test_randomized_workloads_sweep(dataset):
    # Seeded randomized sweep: many small workloads with varying shape,
    # one fused-vs-interpreted check per draw.
    mechanism = fitted("HDG", dataset)
    for draw, seed in enumerate(range(500, 508)):
        dimension = 2 + (draw % 2)
        queries = seeded_mixed_workload(6 + draw, dimension, seed=seed)
        assert_results_bitwise_equal(
            mechanism.answer_typed(queries),
            interpreted_reference(mechanism, queries))


# ----------------------------------------------------------------------
# CompiledPlan structure
# ----------------------------------------------------------------------
def test_compiled_plan_counts_and_shape_check(dataset):
    mechanism = fitted("TDG", dataset)
    queries = seeded_mixed_workload(20, 2, seed=606)
    plan = mechanism.query_planner().plan(queries)
    compiled = CompiledPlan.from_plan(plan, DOMAIN_SIZE,
                                      population=N_USERS)
    assert compiled.n_queries == len(queries)
    assert compiled.n_primitives == plan.n_primitives
    assert len(compiled.flat_ranges) == plan.n_primitives
    with pytest.raises(ValueError, match="primitive answers"):
        compiled.assemble(np.zeros(compiled.n_primitives + 1))


# ----------------------------------------------------------------------
# PlanCache: keying, LRU order, counters
# ----------------------------------------------------------------------
def test_workload_fingerprint_is_stable_and_order_sensitive():
    first = seeded_mixed_workload(10, 2, seed=707)
    again = seeded_mixed_workload(10, 2, seed=707)
    other = seeded_mixed_workload(10, 2, seed=708)
    assert workload_fingerprint(first) == workload_fingerprint(again)
    assert workload_fingerprint(first) != workload_fingerprint(other)
    assert (workload_fingerprint(list(reversed(first)))
            != workload_fingerprint(first))


def test_plan_cache_key_includes_schema():
    queries = seeded_mixed_workload(5, 2, seed=808)
    key = plan_cache_key((3, 16, 1000), queries)
    assert key == plan_cache_key((3, 16, 1000), queries)
    assert key != plan_cache_key((3, 32, 1000), queries)
    assert key != plan_cache_key((4, 16, 1000), queries)
    assert key != plan_cache_key((3, 16, 2000), queries)


def test_plan_cache_lru_eviction_and_counters():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # hit; "a" becomes most recent
    cache.put("c", 3)                   # evicts "b" (least recent)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats["size"] == 2
    assert stats["capacity"] == 2
    assert stats["hits"] == 3
    assert stats["misses"] == 1
    assert stats["evictions"] == 1
    cache.clear()
    assert len(cache) == 0
    # Counters survive clear(): they describe the cache's lifetime.
    assert cache.stats()["evictions"] == 1


def test_mechanism_cache_hits_across_requests(dataset):
    mechanism = fitted("TDG", dataset)
    queries = seeded_mixed_workload(10, 2, seed=909)
    before = mechanism.plan_cache_stats()
    mechanism.answer_typed(queries)
    mechanism.answer_typed(queries)
    mechanism.answer_typed(list(queries))   # same queries, fresh list
    after = mechanism.plan_cache_stats()
    assert after["misses"] - before["misses"] == 1
    assert after["hits"] - before["hits"] == 2


# ----------------------------------------------------------------------
# Concurrency: overlapping workloads, tiny cache, no result bleed
# ----------------------------------------------------------------------
def hammer(mechanism, workloads, expected, n_threads=8, rounds=6):
    """Each thread answers its own workload repeatedly; every result
    must equal that workload's single-threaded reference."""
    failures: list[str] = []
    barrier = threading.Barrier(n_threads)

    def worker(index: int) -> None:
        workload = workloads[index % len(workloads)]
        reference = expected[index % len(workloads)]
        barrier.wait()
        for _ in range(rounds):
            try:
                assert_results_bitwise_equal(
                    mechanism.answer_typed(workload), reference)
            except AssertionError as error:
                failures.append(f"thread {index}: {error}")
                return

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]


def test_concurrent_answering_no_result_bleed(dataset):
    mechanism = fitted("HDG", dataset)
    workloads = [seeded_mixed_workload(8, 2, seed=1000 + index)
                 for index in range(4)]
    expected = [mechanism.answer_typed(workload) for workload in workloads]
    hammer(mechanism, workloads, expected)
    stats = mechanism.plan_cache_stats()
    # Every lookup is accounted exactly once, hit or miss.
    assert stats["hits"] + stats["misses"] == 4 + 8 * 6


def test_concurrent_answering_under_tiny_cache_eviction(dataset):
    # More distinct workloads than cache slots: constant eviction churn
    # must never mix one workload's compiled plan into another's answer.
    mechanism = fitted("TDG", dataset)
    mechanism._typed_plan_cache = PlanCache(capacity=2)
    workloads = [seeded_mixed_workload(6, 2, seed=2000 + index)
                 for index in range(6)]
    expected = [mechanism.answer_typed(workload) for workload in workloads]
    hammer(mechanism, workloads, expected, n_threads=6, rounds=4)
    stats = mechanism.plan_cache_stats()
    assert stats["size"] <= 2
    assert stats["evictions"] > 0
    assert stats["hits"] + stats["misses"] == 6 + 6 * 4
