"""Queries/sec of the legacy per-query loop vs the batch query engine.

Fits each mechanism once, generates a mixed-λ workload (λ = 1, 2, 3, 4 in
equal parts, shuffled) and times two answering paths over the identical
fitted state:

* **legacy** — ``use_legacy_answering=True``: the original Python
  cell-loop grid answering and one Weighted Update per λ-D query.
* **batch**  — the vectorised engine: prefix-sum/summed-area corner
  lookups grouped per grid plus one batched Weighted Update per distinct
  λ.

The two paths must agree to 1e-9 on every query (the script fails
otherwise), so this doubles as an end-to-end equivalence check.

Run directly::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py
    PYTHONPATH=src python benchmarks/bench_query_throughput.py --smoke

``--smoke`` shrinks the population and workload so CI can exercise the
fast path on every PR in a few seconds (no speedup assertion — shared
runners are too noisy for that; the full run asserts ≥ 10x on TDG/HDG).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _scale import report  # noqa: E402

from repro.baselines import CALM, LHIO, MSW, Uniform  # noqa: E402
from repro.core import HDG, TDG  # noqa: E402
from repro.datasets import make_dataset  # noqa: E402
from repro.queries import WorkloadGenerator  # noqa: E402

#: Mechanisms measured, in report order.  HIO is excluded: its answering
#: cost is dominated by the lazy noisy-node path, which the engine keeps.
MECHANISMS = ("Uni", "MSW", "CALM", "LHIO", "TDG", "HDG")

FACTORIES = {
    "Uni": lambda epsilon, seed: Uniform(epsilon, seed=seed),
    "MSW": lambda epsilon, seed: MSW(epsilon, seed=seed),
    "CALM": lambda epsilon, seed: CALM(epsilon, seed=seed),
    "LHIO": lambda epsilon, seed: LHIO(epsilon, seed=seed),
    "TDG": lambda epsilon, seed: TDG(epsilon, seed=seed),
    "HDG": lambda epsilon, seed: HDG(epsilon, seed=seed),
}


def mixed_workload(n_queries: int, n_attributes: int, domain_size: int,
                   seed: int):
    """Shuffled workload with λ = 1..4 in equal parts (the paper's range)."""
    generator = WorkloadGenerator(n_attributes, domain_size,
                                  rng=np.random.default_rng(seed))
    dimensions = [d for d in (1, 2, 3, 4) if d <= n_attributes]
    queries = []
    per_dimension = n_queries // len(dimensions)
    for dimension in dimensions:
        queries.extend(generator.random_workload(per_dimension, dimension, 0.5))
    while len(queries) < n_queries:
        queries.append(generator.random_query(dimensions[-1], 0.5))
    order = np.random.default_rng(seed + 1).permutation(len(queries))
    return [queries[index] for index in order]


def time_workload(mechanism, queries, legacy: bool,
                  min_seconds: float = 0.2) -> tuple[np.ndarray, float]:
    """Answers plus best-of-repeats seconds for one answering path."""
    mechanism.use_legacy_answering = legacy
    answers = mechanism.answer_workload(queries)  # warm any lazy indexes
    best = float("inf")
    elapsed_total = 0.0
    while elapsed_total < min_seconds:
        start = time.perf_counter()
        answers = mechanism.answer_workload(queries)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elapsed_total += elapsed
    mechanism.use_legacy_answering = False
    return answers, best


def run(n_users: int, n_queries: int, epsilon: float, n_attributes: int,
        domain_size: int, seed: int, smoke: bool) -> str:
    rng = np.random.default_rng(seed)
    dataset = make_dataset("normal", n_users, n_attributes, domain_size,
                           rng=rng)
    queries = mixed_workload(n_queries, n_attributes, domain_size, seed + 7)

    lines = [f"query throughput: n={n_users} d={n_attributes} c={domain_size} "
             f"eps={epsilon} |Q|={len(queries)} (mixed lambda 1-4)",
             f"{'mechanism':>10}  {'legacy q/s':>12}  {'batch q/s':>12}  "
             f"{'speedup':>8}"]
    failures = []
    for name in MECHANISMS:
        mechanism = FACTORIES[name](epsilon, seed).fit(dataset)
        legacy_answers, legacy_seconds = time_workload(mechanism, queries,
                                                       legacy=True)
        batch_answers, batch_seconds = time_workload(mechanism, queries,
                                                     legacy=False)
        worst = float(np.abs(legacy_answers - batch_answers).max())
        if worst > 1e-9:
            failures.append(f"{name}: legacy/batch answers differ by {worst:.3e}")
        legacy_qps = len(queries) / legacy_seconds
        batch_qps = len(queries) / batch_seconds
        speedup = legacy_seconds / batch_seconds
        lines.append(f"{name:>10}  {legacy_qps:>12.0f}  {batch_qps:>12.0f}  "
                     f"{speedup:>7.1f}x")
        if not smoke and name in ("TDG", "HDG") and speedup < 10.0:
            failures.append(
                f"{name}: batch engine only {speedup:.1f}x over the legacy "
                "loop (expected >= 10x)")
    text = "\n".join(lines)
    if failures:
        raise SystemExit(text + "\n\nFAILURES:\n" + "\n".join(failures))
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI: exercises both "
                             "paths and checks agreement, skips the "
                             "speedup assertion")
    parser.add_argument("--n-users", type=int, default=None)
    parser.add_argument("--n-queries", type=int, default=None)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--n-attributes", type=int, default=6)
    parser.add_argument("--domain-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n_users = args.n_users or (5_000 if args.smoke else 200_000)
    n_queries = args.n_queries or (200 if args.smoke else 2_000)
    text = run(n_users, n_queries, args.epsilon, args.n_attributes,
               args.domain_size, args.seed, smoke=args.smoke)
    report("query_throughput", text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
