"""Ablation: frequency-oracle choice for grid cell collection.

The grids report one cell out of g1 (1-D) or g2^2 (2-D) cells, and CALM's
marginals report one of c^2 cells.  This bench measures GRR vs OLH vs the
adaptive rule at those domain sizes, confirming the paper's reliance on
OLH for grids/marginals and quantifying what GRR would have cost.
"""

import numpy as np

from _scale import current_scale, report

from repro.frequency_oracles import (AdaptiveFrequencyOracle,
                                     GeneralizedRandomizedResponse,
                                     OptimizedLocalHash)


def bench_ablation_oracle(benchmark):
    scale = current_scale()
    epsilon = 1.0
    n_users = min(scale.n_users, 100_000)
    rng = np.random.default_rng(0)
    # Domains a grid mechanism actually uses: g1, g2^2 and c^2 cells.
    domains = {"1-D grid (g1=16)": 16, "2-D grid (g2=4)": 16,
               "2-D grid (g2=8)": 64, "CALM marginal (c=64)": 64 * 64}

    def run():
        outcomes = {}
        for label, domain in domains.items():
            probabilities = rng.dirichlet(np.ones(domain) * 2.0)
            values = rng.choice(domain, size=n_users, p=probabilities)
            row = {}
            for name, factory in (
                    ("GRR", lambda: GeneralizedRandomizedResponse(
                        epsilon, domain, rng=np.random.default_rng(1))),
                    ("OLH", lambda: OptimizedLocalHash(
                        epsilon, domain, rng=np.random.default_rng(1))),
                    ("Adaptive", lambda: AdaptiveFrequencyOracle(
                        epsilon, domain, rng=np.random.default_rng(1)))):
                estimates = factory().estimate_frequencies(values)
                row[name] = float(np.abs(estimates - probabilities).mean())
            outcomes[label] = row
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== Ablation: frequency oracle choice (per-cell MAE) =="]
    for label, row in outcomes.items():
        lines.append(f"{label:24s} " + "  ".join(f"{k}={v:.6f}"
                                                 for k, v in row.items()))
    report("ablation_oracle", "\n".join(lines))

    # For the large CALM-style domain OLH must beat GRR decisively, and the
    # adaptive rule should never be noticeably worse than the better of the two.
    large = outcomes["CALM marginal (c=64)"]
    assert large["OLH"] < large["GRR"]
    for row in outcomes.values():
        assert row["Adaptive"] <= min(row["GRR"], row["OLH"]) * 1.5 + 1e-4
