"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Grid1D, Grid2D, nearest_power_of_two
from repro.core.query_estimation import pair_constraint_indices
from repro.datasets import Dataset
from repro.estimation import Constraint, weighted_update
from repro.postprocess import norm_sub
from repro.protocol import partition_users
from repro.queries import Predicate, RangeQuery, answer_query


# ----------------------------------------------------------------------
# Norm-Sub invariants
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False,
                          allow_infinity=False), min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_norm_sub_always_projects_to_simplex(values):
    result = norm_sub(np.array(values))
    assert (result >= -1e-9).all()
    assert abs(result.sum() - 1.0) < 1e-6


@given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=2, max_size=30))
@settings(max_examples=50, deadline=None)
def test_norm_sub_identity_on_valid_distributions(values):
    array = np.array(values)
    total = array.sum()
    if total <= 0:
        return
    distribution = array / total
    result = norm_sub(distribution)
    np.testing.assert_allclose(result, distribution, atol=1e-9)


# ----------------------------------------------------------------------
# Grid geometry invariants
# ----------------------------------------------------------------------
@given(st.sampled_from([2, 4, 8, 16]), st.sampled_from([16, 32, 64]),
       st.integers(min_value=0, max_value=63))
@settings(max_examples=60, deadline=None)
def test_grid1d_cell_contains_its_value(granularity, domain_size, value):
    if value >= domain_size:
        value = value % domain_size
    grid = Grid1D(0, domain_size, granularity)
    cell = int(grid.cell_index(value))
    low, high = grid.cell_bounds(cell)
    assert low <= value <= high


@given(st.sampled_from([2, 4, 8]), st.sampled_from([16, 32]),
       st.data())
@settings(max_examples=60, deadline=None)
def test_grid1d_range_answer_additive(granularity, domain_size, data):
    grid = Grid1D(0, domain_size, granularity)
    rng = np.random.default_rng(0)
    frequencies = rng.random(granularity)
    frequencies /= frequencies.sum()
    grid.set_frequencies(frequencies)
    split = data.draw(st.integers(min_value=0, max_value=domain_size - 2))
    left = grid.answer_range(0, split)
    right = grid.answer_range(split + 1, domain_size - 1)
    # Disjoint adjacent ranges covering the domain sum to the total mass.
    assert abs(left + right - 1.0) < 1e-9


@given(st.sampled_from([2, 4, 8]), st.sampled_from([16, 32]), st.data())
@settings(max_examples=40, deadline=None)
def test_grid2d_full_domain_answer_is_total_mass(granularity, domain_size, data):
    grid = Grid2D((0, 1), domain_size, granularity)
    rng = np.random.default_rng(1)
    frequencies = rng.random((granularity, granularity))
    frequencies /= frequencies.sum()
    grid.set_frequencies(frequencies)
    answer = grid.answer_range((0, domain_size - 1), (0, domain_size - 1))
    assert abs(answer - 1.0) < 1e-9


@given(st.sampled_from([2, 4]), st.data())
@settings(max_examples=40, deadline=None)
def test_grid2d_monotone_in_query_size(granularity, data):
    domain_size = 16
    grid = Grid2D((0, 1), domain_size, granularity)
    rng = np.random.default_rng(2)
    frequencies = rng.random((granularity, granularity))
    frequencies /= frequencies.sum()
    grid.set_frequencies(frequencies)
    high_a = data.draw(st.integers(min_value=0, max_value=domain_size - 2))
    high_b = data.draw(st.integers(min_value=0, max_value=domain_size - 2))
    small = grid.answer_range((0, high_a), (0, high_b))
    large = grid.answer_range((0, high_a + 1), (0, high_b + 1))
    assert large >= small - 1e-12


# ----------------------------------------------------------------------
# Range query / ground truth invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=200), st.data())
@settings(max_examples=40, deadline=None)
def test_ground_truth_answer_in_unit_interval(n_users, data):
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    values = rng.integers(0, 8, size=(n_users, 3))
    dataset = Dataset(values, 8)
    low = data.draw(st.integers(min_value=0, max_value=7))
    high = data.draw(st.integers(min_value=low, max_value=7))
    query = RangeQuery((Predicate(0, low, high),))
    answer = answer_query(dataset, query)
    assert 0.0 <= answer <= 1.0


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_query_answer_monotone_in_interval(data):
    rng = np.random.default_rng(3)
    dataset = Dataset(rng.integers(0, 16, size=(500, 2)), 16)
    low = data.draw(st.integers(min_value=0, max_value=14))
    high = data.draw(st.integers(min_value=low, max_value=14))
    narrow = RangeQuery((Predicate(0, low, high), Predicate(1, 0, 7)))
    wide = RangeQuery((Predicate(0, low, high + 1), Predicate(1, 0, 7)))
    assert answer_query(dataset, wide) >= answer_query(dataset, narrow)


@given(st.integers(min_value=2, max_value=6), st.data())
@settings(max_examples=30, deadline=None)
def test_pairwise_subqueries_project_correctly(dimension, data):
    intervals = {}
    for attribute in range(dimension):
        low = data.draw(st.integers(min_value=0, max_value=6))
        high = data.draw(st.integers(min_value=low, max_value=7))
        intervals[attribute] = (low, high)
    query = RangeQuery.from_dict(intervals)
    subqueries = query.pairwise_subqueries()
    assert len(subqueries) == dimension * (dimension - 1) // 2
    for sub in subqueries:
        for attribute in sub.attributes:
            assert sub.interval(attribute) == intervals[attribute]


# ----------------------------------------------------------------------
# Partitioning invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=20), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_partition_users_is_a_partition(n_users, n_groups, seed):
    groups = partition_users(n_users, n_groups, np.random.default_rng(seed))
    combined = np.concatenate(groups) if groups else np.array([])
    assert len(combined) == n_users
    assert len(np.unique(combined)) == n_users
    sizes = [len(g) for g in groups]
    assert max(sizes) - min(sizes) <= 1


# ----------------------------------------------------------------------
# Weighted update invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=16), st.data())
@settings(max_examples=40, deadline=None)
def test_weighted_update_keeps_non_negative(size, data):
    n_constraints = data.draw(st.integers(min_value=1, max_value=5))
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    constraints = []
    for _ in range(n_constraints):
        k = int(rng.integers(1, size + 1))
        indices = rng.choice(size, size=k, replace=False)
        constraints.append(Constraint(indices=indices,
                                      target=float(rng.random())))
    result = weighted_update(size, constraints, max_iterations=30)
    assert (result.estimate >= 0).all()
    assert np.isfinite(result.estimate).all()


# ----------------------------------------------------------------------
# Misc invariants
# ----------------------------------------------------------------------
@given(st.floats(min_value=0.01, max_value=10_000, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_nearest_power_of_two_really_is_a_power(value):
    result = nearest_power_of_two(value, minimum=2, maximum=1024)
    assert result & (result - 1) == 0
    assert 2 <= result <= 1024


@given(st.integers(min_value=2, max_value=8), st.data())
@settings(max_examples=30, deadline=None)
def test_pair_constraint_indices_size(dimension, data):
    pos_a = data.draw(st.integers(min_value=0, max_value=dimension - 1))
    pos_b = data.draw(st.integers(min_value=0, max_value=dimension - 1))
    if pos_a == pos_b:
        return
    indices = pair_constraint_indices(dimension, pos_a, pos_b)
    assert len(indices) == 2 ** (dimension - 2)
    assert len(np.unique(indices)) == len(indices)
