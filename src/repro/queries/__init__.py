"""Range-query model, workload generation and exact answering."""

from .ground_truth import answer_query, answer_query_from_joint, answer_workload
from .range_query import Predicate, RangeQuery
from .workload import WorkloadGenerator

__all__ = [
    "Predicate",
    "RangeQuery",
    "WorkloadGenerator",
    "answer_query",
    "answer_query_from_joint",
    "answer_workload",
]
