"""Census-style analysis: demographic range queries over correlated attributes.

The paper's motivating scenario: an aggregator wants to answer analyst
questions like "what fraction of people are between 30 and 45 years old,
earn between 40k and 80k, and work more than 35 hours per week?" without
ever seeing raw records.  This example uses the census-like (Ipums-style)
synthetic dataset, fits HDG once, and then answers a batch of hand-written
analyst queries plus a drill-down sequence, reporting the estimation error
of each.

Run with:  python examples/census_range_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (HDG, RangeQuery, answer_query, make_dataset)

# Attribute layout of the census-like dataset (domain [0, 64) each, which an
# analyst would map back to real units).
AGE, INCOME, HOURS, EDUCATION, HOUSEHOLD, COMMUTE = range(6)
ATTRIBUTE_NAMES = ["age", "income", "hours", "education", "household", "commute"]


def describe(query: RangeQuery) -> str:
    parts = []
    for predicate in query.predicates:
        name = ATTRIBUTE_NAMES[predicate.attribute]
        parts.append(f"{name}∈[{predicate.low},{predicate.high}]")
    return " ∧ ".join(parts)


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = make_dataset("ipums", n_users=200_000, n_attributes=6,
                           domain_size=64, rng=rng)
    epsilon = 1.0
    mechanism = HDG(epsilon=epsilon, seed=7).fit(dataset)
    print(f"collected {dataset.n_users} census-like records under "
          f"epsilon={epsilon} LDP (g1={mechanism.chosen_g1}, "
          f"g2={mechanism.chosen_g2})\n")

    # ------------------------------------------------------------------
    # A batch of analyst questions of increasing dimensionality.
    # ------------------------------------------------------------------
    analyst_queries = [
        RangeQuery.from_dict({AGE: (16, 31)}),
        RangeQuery.from_dict({AGE: (16, 31), INCOME: (0, 15)}),
        RangeQuery.from_dict({AGE: (24, 47), INCOME: (16, 47), HOURS: (32, 63)}),
        RangeQuery.from_dict({AGE: (24, 47), INCOME: (16, 47),
                              EDUCATION: (32, 63), HOUSEHOLD: (0, 31)}),
    ]
    print("analyst questions:")
    for query in analyst_queries:
        estimate = mechanism.answer(query)
        truth = answer_query(dataset, query)
        print(f"  {describe(query)}")
        print(f"    estimate={estimate:.4f}  true={truth:.4f}  "
              f"error={abs(estimate - truth):.4f}")

    # ------------------------------------------------------------------
    # Drill-down: progressively narrow the income band for a fixed age range
    # — the kind of interactive exploration LDP answers for free once the
    # reports are collected.
    # ------------------------------------------------------------------
    print("\nincome drill-down for age∈[24,47]:")
    for width in (64, 32, 16, 8, 4):
        query = RangeQuery.from_dict({AGE: (24, 47), INCOME: (0, width - 1)})
        estimate = mechanism.answer(query)
        truth = answer_query(dataset, query)
        print(f"  income∈[0,{width - 1}]: estimate={estimate:.4f}  "
              f"true={truth:.4f}")


if __name__ == "__main__":
    main()
