"""Random query-workload generation matching the paper's methodology.

Section 5.1: "we randomly select a set Q of λ-D range queries ... with
different dimensional query volumes denoted by ω, which means the ratio of
the specified interval to the domain size for each queried attribute."
Each query therefore restricts λ randomly chosen attributes to an interval
of width ``round(ω * c)`` placed uniformly at random inside the domain.

The appendix additionally evaluates *full* workloads (every 2-D marginal
cell, every 2-D range with a given volume) and splits high-dimensional
workloads into 0-count and non-0-count queries; generators for all of
those live here as well.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..datasets import Dataset
from .ground_truth import answer_workload
from .ir import (QUERY_KINDS, MarginalQuery, PointQuery, PredicateCountQuery,
                 TopKQuery, validate_query_kinds)
from .range_query import Predicate, RangeQuery


class WorkloadGenerator:
    """Factory for random and exhaustive range-query workloads.

    Parameters
    ----------
    n_attributes:
        Total number of attributes ``d`` in the dataset.
    domain_size:
        Per-attribute domain size ``c``.
    rng:
        Randomness source; seed it for reproducible workloads.
    """

    def __init__(self, n_attributes: int, domain_size: int,
                 rng: np.random.Generator | None = None):
        if n_attributes < 1:
            raise ValueError("n_attributes must be >= 1")
        if domain_size < 2:
            raise ValueError("domain_size must be >= 2")
        self.n_attributes = int(n_attributes)
        self.domain_size = int(domain_size)
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Random workloads (main-body experiments)
    # ------------------------------------------------------------------
    def interval_width(self, volume: float) -> int:
        """Interval width corresponding to per-dimension volume ω."""
        if not 0.0 < volume <= 1.0:
            raise ValueError(f"volume must be in (0, 1], got {volume}")
        return max(1, min(self.domain_size, int(round(volume * self.domain_size))))

    def random_query(self, dimension: int, volume: float) -> RangeQuery:
        """One random λ-D query with per-dimension volume ω."""
        if not 1 <= dimension <= self.n_attributes:
            raise ValueError(
                f"query dimension must be in [1, {self.n_attributes}], got {dimension}")
        width = self.interval_width(volume)
        attributes = self.rng.choice(self.n_attributes, size=dimension, replace=False)
        predicates = []
        for attribute in sorted(attributes.tolist()):
            low = int(self.rng.integers(0, self.domain_size - width + 1))
            predicates.append(Predicate(attribute, low, low + width - 1))
        return RangeQuery(tuple(predicates))

    def random_workload(self, n_queries: int, dimension: int,
                        volume: float) -> list[RangeQuery]:
        """A workload of ``n_queries`` independent random λ-D queries."""
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        return [self.random_query(dimension, volume) for _ in range(n_queries)]

    # ------------------------------------------------------------------
    # Typed-IR workloads (mixed query kinds through one answering stack)
    # ------------------------------------------------------------------
    def _random_attributes(self, dimension: int) -> list[int]:
        """``dimension`` distinct random attribute indices, sorted."""
        if not 1 <= dimension <= self.n_attributes:
            raise ValueError(
                f"query dimension must be in [1, {self.n_attributes}], got "
                f"{dimension}")
        chosen = self.rng.choice(self.n_attributes, size=dimension,
                                 replace=False)
        return sorted(chosen.tolist())

    def random_point_query(self, dimension: int) -> PointQuery:
        """One random λ-D point query (uniform cell)."""
        assignment = tuple(
            (attribute, int(self.rng.integers(0, self.domain_size)))
            for attribute in self._random_attributes(dimension))
        return PointQuery(assignment)

    def random_marginal_query(self, dimension: int) -> MarginalQuery:
        """One random λ-attribute marginal (full group-by table)."""
        return MarginalQuery(tuple(self._random_attributes(dimension)))

    def random_count_query(self, dimension: int, volume: float,
                           population: int | None = None) -> PredicateCountQuery:
        """One random λ-D predicate-count query with per-dimension volume ω."""
        base = self.random_query(dimension, volume)
        return PredicateCountQuery(base.predicates, population=population)

    def random_topk_query(self, dimension: int, k: int = 5) -> TopKQuery:
        """One random λ-attribute top-k group-by query."""
        return TopKQuery(tuple(self._random_attributes(dimension)), k=k)

    def mixed_workload(self, n_queries: int, dimension: int, volume: float,
                       query_kinds: tuple[str, ...] = QUERY_KINDS,
                       k: int = 5,
                       table_dimension: int | None = None) -> list:
        """A workload cycling through several query kinds round-robin.

        Parameters
        ----------
        n_queries:
            Total number of queries (all kinds together).
        dimension, volume:
            λ and ω of the range-shaped kinds (range, point, count).
        query_kinds:
            Kinds to cycle through, from :data:`~repro.queries.QUERY_KINDS`.
        k:
            ``k`` of any generated top-k queries.
        table_dimension:
            Group-by arity of marginal/top-k queries.  Defaults to
            ``min(dimension, 2)`` — a λ-attribute marginal lowers to
            ``c^λ`` primitives, so full tables above two attributes are
            opt-in.
        """
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        query_kinds = validate_query_kinds(query_kinds)
        if table_dimension is None:
            table_dimension = min(dimension, 2)
        queries = []
        for index in range(n_queries):
            kind = query_kinds[index % len(query_kinds)]
            if kind == "range":
                queries.append(self.random_query(dimension, volume))
            elif kind == "marginal":
                queries.append(self.random_marginal_query(table_dimension))
            elif kind == "point":
                queries.append(self.random_point_query(dimension))
            elif kind == "count":
                queries.append(self.random_count_query(dimension, volume))
            else:  # "topk"
                queries.append(self.random_topk_query(table_dimension, k=k))
        return queries

    # ------------------------------------------------------------------
    # Exhaustive workloads (appendix experiments)
    # ------------------------------------------------------------------
    def full_marginal_workload(self) -> list[RangeQuery]:
        """Every point query of every attribute pair (Figure 11).

        This is ``C(d,2) * c^2`` queries, so callers typically use it with
        reduced domain sizes.
        """
        queries = []
        for a, b in combinations(range(self.n_attributes), 2):
            for va in range(self.domain_size):
                for vb in range(self.domain_size):
                    queries.append(RangeQuery((Predicate(a, va, va),
                                               Predicate(b, vb, vb))))
        return queries

    def full_2d_range_workload(self, volume: float) -> list[RangeQuery]:
        """Every 2-D range query of a given volume over every pair (Figure 12)."""
        width = self.interval_width(volume)
        max_low = self.domain_size - width
        queries = []
        for a, b in combinations(range(self.n_attributes), 2):
            for la in range(max_low + 1):
                for lb in range(max_low + 1):
                    queries.append(RangeQuery((
                        Predicate(a, la, la + width - 1),
                        Predicate(b, lb, lb + width - 1))))
        return queries

    # ------------------------------------------------------------------
    # Count-conditioned workloads (Figures 13-14)
    # ------------------------------------------------------------------
    def count_conditioned_workload(self, dataset: Dataset, n_queries: int,
                                   dimension: int, volume: float,
                                   zero_count: bool,
                                   max_attempts: int = 200) -> list[RangeQuery]:
        """Random queries filtered by whether their true answer is zero.

        ``zero_count=True`` keeps only queries with exact answer 0 (the
        paper's "0-count" workload, ω = 0.3); ``False`` keeps only queries
        with a strictly positive answer (ω = 0.7).  If the dataset cannot
        supply enough queries of the requested kind within
        ``max_attempts`` rounds, whatever was found is returned.
        """
        selected: list[RangeQuery] = []
        for _ in range(max_attempts):
            if len(selected) >= n_queries:
                break
            batch = self.random_workload(n_queries, dimension, volume)
            answers = answer_workload(dataset, batch)
            for query, answer in zip(batch, answers):
                wanted = (answer == 0.0) if zero_count else (answer > 0.0)
                if wanted:
                    selected.append(query)
                    if len(selected) >= n_queries:
                        break
        return selected[:n_queries]
