"""Adaptive selection between GRR and OLH.

Section 2.2 of the paper notes that GRR has lower variance than OLH when
the domain is small (``c - 2 < 3 e^eps``) and higher variance otherwise.
The grid approaches report one cell index out of ``g1`` or ``g2 * g2``
cells, so the better oracle depends on the chosen granularity; this helper
picks the winner automatically and is used by the ablation benchmark
comparing oracle choices inside the grids.
"""

from __future__ import annotations

import math

import numpy as np

from .base import FrequencyOracle, grr_variance, olh_variance
from .grr import GeneralizedRandomizedResponse
from .olh import OptimizedLocalHash


def choose_oracle_kind(epsilon: float, domain_size: int) -> str:
    """Return ``"grr"`` or ``"olh"`` depending on which has lower variance."""
    if domain_size < 2:
        raise ValueError("domain_size must be >= 2")
    # Compare the closed-form variances directly (n cancels out).
    if grr_variance(epsilon, domain_size, 1) <= olh_variance(epsilon, 1):
        return "grr"
    return "olh"


class AdaptiveFrequencyOracle(FrequencyOracle):
    """Frequency oracle that delegates to GRR or OLH, whichever is better."""

    def __init__(self, epsilon: float, domain_size: int,
                 rng: np.random.Generator | None = None,
                 olh_mode: str = "fast"):
        super().__init__(epsilon, domain_size, rng)
        self.kind = choose_oracle_kind(epsilon, domain_size)
        if self.kind == "grr":
            self._delegate: FrequencyOracle = GeneralizedRandomizedResponse(
                epsilon, domain_size, rng=self.rng)
        else:
            self._delegate = OptimizedLocalHash(
                epsilon, domain_size, rng=self.rng, mode=olh_mode)

    def estimate_frequencies(self, values: np.ndarray) -> np.ndarray:
        return self._delegate.estimate_frequencies(values)

    def accumulate(self, values: np.ndarray):
        return self._delegate.accumulate(values)

    def estimate_from_accumulator(self, accumulator) -> np.ndarray:
        return self._delegate.estimate_from_accumulator(accumulator)

    def variance(self, n: int, true_frequency: float = 0.0) -> float:
        return self._delegate.variance(n, true_frequency)

    @property
    def threshold_domain(self) -> float:
        """Domain size at which GRR and OLH variances cross (``3 e^eps + 2``)."""
        return 3.0 * math.exp(self.epsilon) + 2.0
