"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.core import HDG
from repro.experiments import (ExperimentConfig, build_mechanism,
                               run_experiment, sweep_parameter)


TINY = ExperimentConfig(dataset="normal", n_users=5_000, n_attributes=3,
                        domain_size=16, epsilon=1.0, query_dimension=2,
                        volume=0.5, n_queries=15, n_repeats=1,
                        methods=("Uni", "TDG", "HDG"), seed=0)


def test_build_mechanism_by_name():
    for name in ("Uni", "MSW", "CALM", "HIO", "LHIO", "TDG", "HDG", "ITDG", "IHDG"):
        mechanism = build_mechanism(name, 1.0, seed=0)
        assert mechanism.epsilon == 1.0


def test_build_mechanism_with_explicit_granularities():
    mechanism = build_mechanism("HDG(8,4)", 1.0, seed=0)
    assert isinstance(mechanism, HDG)
    assert mechanism.granularities == (8, 4)


def test_build_mechanism_unknown_name():
    with pytest.raises(ValueError):
        build_mechanism("NOPE", 1.0)


def test_run_experiment_returns_all_methods():
    result = run_experiment(TINY)
    assert set(result.methods) == {"Uni", "TDG", "HDG"}
    for method_result in result.methods.values():
        assert method_result.mae.mean >= 0
        assert method_result.per_query_errors.shape == (TINY.n_queries,)


def test_run_experiment_respects_mechanism_kwargs():
    config = TINY.with_overrides(methods=("HDG",),
                                 mechanism_kwargs={"HDG": {"granularities": (8, 2)}})
    result = run_experiment(config)
    assert "HDG" in result.methods


def test_run_experiment_with_repeats():
    config = TINY.with_overrides(n_repeats=2, methods=("Uni",))
    result = run_experiment(config)
    assert result.methods["Uni"].mae.n_runs == 2


def test_run_experiment_custom_workload_factory():
    calls = []

    def factory(config, dataset, repeat):
        calls.append(repeat)
        from repro.queries import WorkloadGenerator
        generator = WorkloadGenerator(config.n_attributes, config.domain_size,
                                      rng=np.random.default_rng(0))
        return generator.random_workload(5, 2, 0.5)

    config = TINY.with_overrides(methods=("Uni",))
    result = run_experiment(config, workload_factory=factory)
    assert calls == [0]
    assert result.methods["Uni"].per_query_errors.shape == (5,)


def test_sweep_parameter_series_and_table():
    sweep = sweep_parameter(TINY.with_overrides(methods=("Uni", "HDG")),
                            "epsilon", [0.5, 1.0])
    series = sweep.series()
    assert set(series) == {"Uni", "HDG"}
    assert len(series["HDG"]) == 2
    table = sweep.format_table()
    assert "epsilon" in table
    assert "HDG" in table


def test_sweep_parameter_with_transform():
    def transform(config, value):
        return config.with_overrides(dataset_kwargs={"covariance": value})

    sweep = sweep_parameter(TINY.with_overrides(methods=("Uni",)),
                            "covariance", [0.0, 0.5],
                            config_transform=transform)
    assert len(sweep.results) == 2


def test_results_are_deterministic_for_fixed_seed():
    first = run_experiment(TINY)
    second = run_experiment(TINY)
    for method in TINY.methods:
        assert first.mae_of(method) == pytest.approx(second.mae_of(method))
