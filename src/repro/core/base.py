"""Common interface for every multi-dimensional range-query mechanism.

TDG, HDG and all baselines (Uni, MSW, CALM, HIO, LHIO) implement
:class:`RangeQueryMechanism`: ``fit`` runs the one-shot LDP collection
protocol over a dataset, ``answer`` / ``answer_workload`` then answer
arbitrarily many queries from the collected (already private)
summaries without touching raw data again.

``answer_workload`` is the single answering stack for the whole typed
query IR (:mod:`repro.queries`): a workload may mix
:class:`~repro.queries.RangeQuery` with marginal, point,
predicate-count and top-k queries.  Non-range kinds are compiled by a
:class:`~repro.queries.QueryPlanner` onto the mechanism's range
primitives — subject to the mechanism's declared
:attr:`~RangeQueryMechanism.query_capabilities` — answered through the
same batch engine, and reassembled into typed
:class:`~repro.queries.QueryResult` objects.  Pure range workloads keep
the flat ``numpy`` answer vector they always had.

Mechanisms whose collection step is aggregation-based (TDG, HDG) also
support an incremental, shard-mergeable protocol:

* :meth:`RangeQueryMechanism.partial_fit` ingests one batch of user
  reports, maintaining additive per-grid support counts;
* :meth:`RangeQueryMechanism.merge` combines the accumulated state of
  independent shards (exactly — support counts simply add);
* :meth:`RangeQueryMechanism.finalize` runs the one-shot pipeline's
  Phase-2 consistency/estimation machinery on the merged counts.

``fit(data)`` is a thin wrapper equivalent to
``partial_fit(data); finalize()``.  Mechanisms that only implement the
one-shot protocol raise :class:`NotImplementedError` from the sharded
entry points and report ``supports_sharding == False``.

Fitted mechanisms additionally serialize to portable snapshot
documents: :meth:`RangeQueryMechanism.save_state` captures everything
Phase 3 reads — grids, response matrices, the RNG state of mechanisms
whose answering path still draws noise — and
:meth:`RangeQueryMechanism.load_state` restores it into a fresh
instance whose ``answer``/``answer_workload`` output is bitwise
identical to the live estimator's.  :mod:`repro.serving` builds the
versioned on-disk snapshot store and the query service on top of these
hooks.
"""

from __future__ import annotations

import abc

import numpy as np

from ..datasets import Dataset
from ..queries import (ALL_QUERY_KINDS, CompiledPlan, PlanCache, Query,
                       QueryPlanner, QueryResult, RangeQuery, plan_cache_key)

#: Format tag written into serialized fitted-mechanism states.
MECHANISM_STATE_FORMAT = "repro.mechanism-state"
MECHANISM_STATE_VERSION = 1


def check_state_document(state: dict, expected_format: str,
                         max_version: int) -> None:
    """Validate a serialized state's format tag and schema version.

    Shared by every deserialization entry point (mechanism states,
    service snapshots) so foreign documents and future schema versions
    fail with the same clear errors everywhere.
    """
    if state.get("format") != expected_format:
        raise ValueError(f"not a {expected_format} document "
                         f"(format={state.get('format')!r})")
    if int(state.get("version", 0)) > max_version:
        raise ValueError(
            f"state version {state['version']} is newer than supported "
            f"version {max_version}")


class RangeQueryMechanism(abc.ABC):
    """Base class for ε-LDP multi-dimensional range-query mechanisms.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.  Every user sends exactly one report
        produced by an ε-LDP frequency oracle, so the whole mechanism
        satisfies ε-LDP.
    seed:
        Optional seed for all randomness (user grouping, perturbation).
    """

    #: Short name used in experiment tables (overridden by subclasses).
    name: str = "mechanism"

    #: When True, ``answer``/``answer_workload`` bypass the vectorised
    #: prefix-sum engine and run the original per-query/per-cell code
    #: paths.  Exists for benchmarking and for property-testing the
    #: engine against its ground truth; production callers leave it off.
    use_legacy_answering: bool = False

    #: Query kinds this mechanism can answer (see
    #: :data:`repro.queries.QUERY_KINDS`).  Every kind lowers onto range
    #: primitives, so the default grants all of them; a subclass that
    #: cannot serve some kind narrows the set and the planner rejects
    #: such queries with a clear per-query error.
    query_capabilities: frozenset[str] = ALL_QUERY_KINDS

    #: Whether answering a fitted instance is free of side effects.
    #: Pure mechanisms may answer concurrently from many threads with
    #: no lock (the serving tier's epoch read path relies on this);
    #: mechanisms that draw noise lazily or memoize per-query state
    #: during answering (HIO, LHIO) override this to False and the
    #: epoch serializes their answering with a per-epoch lock.
    answering_is_pure: bool = True

    def __init__(self, epsilon: float, seed: int | None = None):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.rng = np.random.default_rng(seed)
        self._fitted = False
        self._n_attributes: int | None = None
        self._domain_size: int | None = None
        self._n_reports: int | None = None
        #: Bounded LRU of :class:`~repro.queries.CompiledPlan` keyed by a
        #: stable (schema, workload) hash; planning a marginal allocates
        #: c^λ range primitives and compiling freezes the fused gather
        #: layout, so a service answering the same typed workload
        #: repeatedly pays both once, not per request.
        self._typed_plan_cache = PlanCache(self._PLAN_CACHE_ENTRIES)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "RangeQueryMechanism":
        """Run the LDP collection protocol over ``dataset`` and return self."""
        self._n_attributes = dataset.n_attributes
        self._domain_size = dataset.domain_size
        self._n_reports = dataset.n_users
        self._fit(dataset)
        self._fitted = True
        return self

    @abc.abstractmethod
    def _fit(self, dataset: Dataset) -> None:
        """Mechanism-specific collection logic."""

    # ------------------------------------------------------------------
    # Sharded collection (incremental aggregation pipeline)
    # ------------------------------------------------------------------
    def partial_fit(self, dataset: Dataset,
                    total_users: int | None = None) -> "RangeQueryMechanism":
        """Ingest one batch (shard) of user reports without finalising.

        Parameters
        ----------
        dataset:
            The batch of user records to collect under ε-LDP.
        total_users:
            Expected total population across *all* shards.  Used on the
            first batch to derive guideline granularities; shards merged
            later must agree on the granularity, so pass the same value to
            every shard (or fix the granularity explicitly).  Defaults to
            the first batch's size.
        """
        if self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} is already finalised; create a fresh "
                "instance to collect new shards")
        if self._n_attributes is None:
            self._n_attributes = dataset.n_attributes
            self._domain_size = dataset.domain_size
        elif (dataset.n_attributes != self._n_attributes
              or dataset.domain_size != self._domain_size):
            raise ValueError(
                f"batch shape (d={dataset.n_attributes}, c={dataset.domain_size}) "
                f"does not match earlier batches (d={self._n_attributes}, "
                f"c={self._domain_size})")
        self._partial_fit(dataset, total_users)
        self._n_reports = (self._n_reports or 0) + dataset.n_users
        return self

    def merge(self, other: "RangeQueryMechanism") -> "RangeQueryMechanism":
        """Fold another shard's accumulated state into this one (exactly).

        Both sides must be un-finalised instances of the same mechanism
        with the same privacy budget, collected over the same schema.
        Support counts are summed, so the merged state is identical to
        having collected both shards' batches into a single instance.
        """
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}")
        if self._fitted or other._fitted:
            raise RuntimeError("merge must happen before finalize()")
        if other.epsilon != self.epsilon:
            raise ValueError(
                f"cannot merge shards with different privacy budgets "
                f"({self.epsilon} vs {other.epsilon})")
        if other._n_attributes is None:
            return self  # the other shard never collected anything
        if self._n_attributes is None:
            self._n_attributes = other._n_attributes
            self._domain_size = other._domain_size
        elif (other._n_attributes != self._n_attributes
              or other._domain_size != self._domain_size):
            raise ValueError(
                f"cannot merge shards over different schemas "
                f"(d={self._n_attributes}, c={self._domain_size}) vs "
                f"(d={other._n_attributes}, c={other._domain_size})")
        self._merge(other)
        if other._n_reports:
            self._n_reports = (self._n_reports or 0) + other._n_reports
        return self

    def finalize(self) -> "RangeQueryMechanism":
        """Run post-processing/estimation on the merged state; enable answering."""
        if self._fitted:
            raise RuntimeError(f"{type(self).__name__} is already finalised")
        if self._n_attributes is None:
            raise RuntimeError(
                "no batches ingested; call partial_fit at least once before "
                "finalize")
        self._finalize()
        self._fitted = True
        return self

    def _partial_fit(self, dataset: Dataset, total_users: int | None) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded aggregation")

    def _merge(self, other: "RangeQueryMechanism") -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded aggregation")

    def _finalize(self) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded aggregation")

    @property
    def supports_sharding(self) -> bool:
        """Whether partial_fit/merge/finalize are implemented."""
        return type(self)._partial_fit is not RangeQueryMechanism._partial_fit

    # ------------------------------------------------------------------
    # Shared-memory accumulator views (distributed ingest tier)
    # ------------------------------------------------------------------
    def prepare_aggregation(self, n_attributes: int, domain_size: int,
                            total_users: int | None = None
                            ) -> "RangeQueryMechanism":
        """Pin the aggregation layout without ingesting any data.

        Fixes the schema and the guideline granularities exactly as the
        first ``partial_fit`` batch would, so the accumulator slot layout
        (:meth:`accumulator_slots`) is known up front.  The distributed
        ingest tier (:mod:`repro.ingest`) calls this on a template
        instance to size shared-memory blocks before any worker starts.

        ``total_users`` feeds the granularity guideline; it is required
        when the mechanism has no explicit granularity configured,
        because there is no first batch to fall back on.
        """
        if not self.supports_sharding:
            raise NotImplementedError(
                f"{type(self).__name__} does not support sharded aggregation")
        if self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} is already finalised; create a fresh "
                "instance to collect new shards")
        n_attributes, domain_size = int(n_attributes), int(domain_size)
        if self._n_attributes is None:
            self._n_attributes = n_attributes
            self._domain_size = domain_size
        elif (n_attributes != self._n_attributes
              or domain_size != self._domain_size):
            raise ValueError(
                f"schema (d={n_attributes}, c={domain_size}) does not match "
                f"earlier batches (d={self._n_attributes}, "
                f"c={self._domain_size})")
        self._ensure_layout(total_users)
        return self

    def _ensure_layout(self, planning_users: int | None) -> None:
        """Create grids/accumulator slots once the schema is known."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an accumulator layout")

    def accumulator_slots(self) -> list[tuple[str, int]]:
        """Ordered ``(slot key, vector length)`` layout of the additive state.

        Requires a prepared layout (:meth:`prepare_aggregation` or at
        least one ingested batch).  The order is deterministic, so every
        process sizing buffers from the same configuration agrees on it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an accumulator layout")

    def _accumulator_ref(self, slot: str) -> tuple[dict, object]:
        """``(container, key)`` locating one slot's accumulator."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an accumulator layout")

    def bind_accumulator_views(self, views: dict) -> None:
        """Re-home every accumulator slot onto caller-provided buffers.

        ``views`` maps each slot key from :meth:`accumulator_slots` to a
        float64 vector of the slot's length — typically views over a
        ``multiprocessing.shared_memory`` block, so that ``partial_fit``
        updates become visible to a merge coordinator in another process
        without any serialization.  Existing counts are copied into the
        buffers first; empty slots become zero-count accumulators (adding
        zero supports is exact, so merge results are unchanged).
        """
        from ..frequency_oracles import SupportAccumulator
        for slot, length in self.accumulator_slots():
            view = np.asarray(views[slot])
            if view.shape != (length,) or view.dtype != np.float64:
                raise ValueError(
                    f"slot {slot!r} needs a float64 view of length {length}, "
                    f"got {view.dtype} with shape {view.shape}")
            container, key = self._accumulator_ref(slot)
            current = container[key]
            if current is None:
                view[:] = 0.0
                container[key] = SupportAccumulator(view, 0)
            else:
                np.copyto(view, current.supports)
                container[key] = SupportAccumulator(view, current.n_reports)

    def accumulator_counts(self) -> dict[str, int]:
        """Per-slot report counts (the header ingest workers publish)."""
        counts: dict[str, int] = {}
        for slot, _ in self.accumulator_slots():
            container, key = self._accumulator_ref(slot)
            accumulator = container[key]
            counts[slot] = 0 if accumulator is None else accumulator.n_reports
        return counts

    @property
    def supports_accumulator_views(self) -> bool:
        """Whether the shared-memory accumulator-view API is implemented."""
        return (type(self).accumulator_slots
                is not RangeQueryMechanism.accumulator_slots)

    # ------------------------------------------------------------------
    # Fitted-state serialization (snapshots)
    # ------------------------------------------------------------------
    def save_state(self) -> dict:
        """JSON-serialisable snapshot of the *fitted* estimator.

        The document captures everything the answering path reads —
        grid frequencies, response matrices, materialised hierarchy
        levels, lazy-noise caches — plus the mechanism's RNG state, so
        that a restored instance's ``answer_workload`` output is
        bitwise identical to this instance's from the snapshot point
        on.  Restore with :meth:`load_state` (same class, fresh
        instance) or :func:`repro.serving.restore_mechanism` (builds
        the instance from the document's ``config``).
        """
        self._require_fitted()
        return {
            "format": MECHANISM_STATE_FORMAT,
            "version": MECHANISM_STATE_VERSION,
            "mechanism": self.name,
            "epsilon": self.epsilon,
            "n_attributes": self._n_attributes,
            "domain_size": self._domain_size,
            "n_reports": self._n_reports,
            "config": self._snapshot_config(),
            "rng_state": self.rng.bit_generator.state,
            "payload": self._state_payload(),
        }

    def load_state(self, state: dict) -> "RangeQueryMechanism":
        """Restore a fitted state produced by :meth:`save_state`.

        The receiving instance must be fresh (never fitted) and of the
        same mechanism class and privacy budget the state was saved
        from; construction parameters that shape answering (estimation
        method, iteration caps, ...) travel in ``state["config"]`` and
        are applied by :func:`repro.serving.restore_mechanism`.
        """
        if self._fitted:
            raise RuntimeError("state can only be loaded into a fresh "
                               f"{type(self).__name__} instance")
        check_state_document(state, MECHANISM_STATE_FORMAT,
                             MECHANISM_STATE_VERSION)
        if state["mechanism"] != self.name:
            raise ValueError(f"state belongs to {state['mechanism']!r}, "
                             f"not {self.name!r}")
        if float(state["epsilon"]) != self.epsilon:
            raise ValueError("state was collected under a different epsilon")
        self._n_attributes = int(state["n_attributes"])
        self._domain_size = int(state["domain_size"])
        # Absent in pre-IR snapshots; count queries then need an explicit
        # per-query population (the planner raises a clear error).
        reports = state.get("n_reports")
        self._n_reports = int(reports) if reports is not None else None
        self.rng.bit_generator.state = state["rng_state"]
        self._restore_state_payload(state["payload"])
        self._fitted = True
        return self

    def _snapshot_config(self) -> dict:
        """Constructor keyword arguments needed to rebuild this instance."""
        return {}

    def _state_payload(self) -> dict:
        """Mechanism-specific fitted state (hook for :meth:`save_state`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots")

    def _restore_state_payload(self, payload: dict) -> None:
        """Rebuild the fitted state from :meth:`_state_payload` output."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots")

    @property
    def supports_snapshot(self) -> bool:
        """Whether save_state/load_state are implemented."""
        return (type(self)._state_payload
                is not RangeQueryMechanism._state_payload)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    @property
    def population(self) -> int | None:
        """Number of user reports collected (None before any collection).

        Scales :class:`~repro.queries.PredicateCountQuery` answers that
        carry no explicit population of their own.
        """
        return self._n_reports

    def query_planner(self) -> QueryPlanner:
        """A planner bound to this mechanism's fitted schema."""
        self._require_fitted()
        assert self._n_attributes is not None and self._domain_size is not None
        return QueryPlanner(self._domain_size, self._n_attributes,
                            population=self._n_reports)

    def answer(self, query) -> float | QueryResult:
        """Estimated answer of one query.

        A :class:`~repro.queries.RangeQuery` returns its float estimate
        (fraction in [0, 1] ideally) as it always has; any other IR kind
        is planned like a one-query workload and returns its typed
        :class:`~repro.queries.QueryResult`.
        """
        self._require_fitted()
        if isinstance(query, RangeQuery):
            self._validate_query(query)
            return float(self._answer(query))
        return self.answer_typed([query])[0]

    @abc.abstractmethod
    def _answer(self, query: RangeQuery) -> float:
        """Mechanism-specific answering logic."""

    def answer_workload(self, queries: list) -> np.ndarray | list[QueryResult]:
        """Estimated answers for a (possibly mixed-kind) workload.

        Pure range workloads are validated up front and handed to the
        mechanism's batch engine (``_answer_workload``), which groups
        them by dimension/attribute set and answers whole groups with
        vectorised prefix-sum lookups where the mechanism supports it;
        the return value is the flat float vector it always was.  A
        workload containing any other IR kind goes through
        :meth:`answer_typed` and returns one typed
        :class:`~repro.queries.QueryResult` per query instead.  With
        ``use_legacy_answering`` set, every primitive goes through the
        original one-at-a-time path.
        """
        self._require_fitted()
        queries = list(queries)
        if not queries:
            return np.empty(0)
        if any(not isinstance(query, RangeQuery) for query in queries):
            return self.answer_typed(queries)
        for query in queries:
            self._validate_query(query)
        return self._answer_ranges(queries)

    def answer_typed(self, queries: list) -> list[QueryResult]:
        """Answer a typed IR workload: compile, batch-answer, reassemble.

        The planner lowers every query onto range primitives (checking
        it against :attr:`query_capabilities` and the fitted schema),
        the compiler freezes the lowered plan into fused gather arrays,
        the primitives run through :meth:`_answer_compiled` — grouped
        vectorised lookups on mechanisms with fused hooks, the plain
        batch engine otherwise — and the compiled plan gathers the flat
        answers back into typed results in one vectorised pass, so
        marginal cells, point estimates, count scaling and top-k
        selection all ride the one answering stack.
        """
        self._require_fitted()
        compiled = self._plan_for(queries)
        # The planner validated every query against the fitted schema, and
        # lowering only emits primitives inside the validated bounds — no
        # per-primitive re-validation needed.
        answers = (self._answer_compiled(compiled) if compiled.n_primitives
                   else np.empty(0))
        return compiled.assemble(answers)

    #: Number of compiled plans kept per mechanism instance.
    _PLAN_CACHE_ENTRIES = 8

    def _plan_for(self, queries: list) -> CompiledPlan:
        """The workload's compiled plan, memoized per fitted schema.

        Keyed by :func:`~repro.queries.plan_cache_key` — a stable
        content hash of the workload plus the fitted ``(d, c,
        population)`` schema, so refits and population changes (which
        alter count scaling) miss instead of serving a stale plan.
        """
        key = plan_cache_key(
            (self._n_attributes, self._domain_size, self._n_reports), queries)
        compiled = self._typed_plan_cache.get(key)
        if compiled is None:
            plan = self.query_planner().plan(
                queries, capabilities=self.query_capabilities)
            assert self._domain_size is not None
            compiled = CompiledPlan.from_plan(plan, self._domain_size,
                                              population=self._n_reports)
            self._typed_plan_cache.put(key, compiled)
        return compiled

    def plan_cache_stats(self) -> dict:
        """Hit/miss/eviction counters of the compiled-plan cache."""
        return self._typed_plan_cache.stats()

    def set_plan_cache_capacity(self, capacity: int) -> None:
        """Rebound the compiled-plan LRU (``--plan-cache-entries``).

        A no-op when the cache already has that capacity; otherwise the
        cache is replaced (entries and counters reset), so shrinking
        actually releases the evicted plans.
        """
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        if int(capacity) != self._typed_plan_cache.capacity:
            self._typed_plan_cache = PlanCache(int(capacity))

    def _answer_compiled(self, compiled: CompiledPlan) -> np.ndarray:
        """Answer a compiled plan's primitives as one flat vector.

        The default replays the plan's primitive list through the
        ordinary (batch or legacy) range path — correct for every
        mechanism, and still cheaper than the interpreted typed path
        because the flat list is materialised once at compile time.
        :class:`~repro.core.query_estimation.PairwiseBatchAnswering`
        overrides this with the fused grouped execution.
        """
        return self._answer_ranges(compiled.flat_ranges)

    def _answer_ranges(self, queries: list[RangeQuery]) -> np.ndarray:
        """Validated range primitives through the batch or legacy path."""
        if self.use_legacy_answering:
            return np.array([float(self._answer(query)) for query in queries])
        return np.asarray(self._answer_workload(queries), dtype=float)

    def _answer_workload(self, queries: list[RangeQuery]) -> np.ndarray:
        """Batch answering hook; defaults to the per-query loop."""
        return np.array([float(self._answer(query)) for query in queries])

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether collection finished (``fit`` ran or ``finalize`` was called)."""
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before answering queries")

    def _validate_query(self, query: RangeQuery) -> None:
        assert self._n_attributes is not None and self._domain_size is not None
        for predicate in query.predicates:
            if predicate.attribute >= self._n_attributes:
                raise ValueError(
                    f"query restricts attribute {predicate.attribute} but the "
                    f"fitted dataset only has {self._n_attributes} attributes")
            if predicate.high >= self._domain_size:
                raise ValueError(
                    f"query interval [{predicate.low}, {predicate.high}] exceeds "
                    f"the fitted domain size {self._domain_size}")
