"""Chaos and unit tests for the resilience layer (repro.resilience).

Unit coverage: the error taxonomy, Deadline, RetryPolicy (seeded
backoff schedules, permanent short-circuit, deadline interaction),
CircuitBreaker state machine (fake clock, no sleeping) and the
FaultPlan DSL.

Chaos coverage, on both storage backends: a transient Nth-write fault
is retried transparently with no acknowledged-report loss (recovered
answers bitwise identical to an uninterrupted run); a locked-database
storm trips the tenant's breaker into degraded mode where queries keep
answering while ingest answers 503, and the half-open probe recovers;
a torn write-ahead-log append is quarantined on restart; a corrupt
snapshot quarantines one tenant without taking down the others; and
the HTTP surface exposes all of it (``Retry-After``, ``/readyz`` vs
``/healthz``, admission-queue shedding).
"""

from __future__ import annotations

import errno
import json
import sqlite3
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.resilience import (CircuitBreaker, Deadline, DeadlineExceededError,
                              DegradedServiceError, FaultInjectingBackend,
                              FaultPlan, FaultSpec, PermanentStorageError,
                              RetryPolicy, TransientStorageError,
                              classify_error, is_transient)
from repro.serving import TenantManager, build_server
from repro.storage import (BACKENDS, CorruptEntryError, DirectoryBackend,
                           SQLiteBackend, UnknownTenantError, open_backend)

DOMAIN = 8


class FakeClock:
    """A manually-advanced monotonic clock for breaker/deadline tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    if request.param == "json":
        built = DirectoryBackend(tmp_path / "store")
    else:
        built = SQLiteBackend(tmp_path / "store.db")
    yield built
    built.close()


def _rows(seed: int, n: int = 30) -> list:
    rng = np.random.default_rng(seed)
    return rng.integers(0, DOMAIN, size=(n, 2)).tolist()


def _tdg_config(**overrides) -> dict:
    config = {"mechanism": "TDG", "epsilon": 1.0, "seed": 11,
              "domain_size": DOMAIN}
    config.update(overrides)
    return config


def _workload() -> list:
    return [{"type": "point", "assignment": [[0, 1], [1, 2]]},
            {"type": "range", "predicates": [[0, 0, 3], [1, 0, 3]]}]


def _fast_policy(**overrides) -> RetryPolicy:
    kwargs = {"attempts": 3, "base_delay": 0.0, "jitter": 0.0,
              "sleep": lambda _s: None}
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
def test_classify_error_taxonomy():
    assert classify_error(sqlite3.OperationalError(
        "database is locked")) == "transient"
    assert classify_error(sqlite3.OperationalError(
        "no such table: tenants")) == "permanent"
    assert classify_error(OSError(errno.EINTR, "interrupted")) == "transient"
    assert classify_error(OSError(errno.ENOSPC, "full")) == "permanent"
    assert classify_error(TransientStorageError("x")) == "transient"
    assert classify_error(PermanentStorageError("x")) == "permanent"
    assert classify_error(CorruptEntryError("x")) == "permanent"
    assert classify_error(DeadlineExceededError("x")) == "permanent"
    assert classify_error(TimeoutError("x")) == "transient"
    assert classify_error(ValueError("x")) == "permanent"
    assert is_transient(TransientStorageError("x"))
    assert not is_transient(ValueError("x"))


def test_degraded_error_carries_retry_hint():
    error = DegradedServiceError("down", retry_after=2.5, tenant="acme")
    assert error.retry_after == 2.5
    assert error.tenant == "acme"
    assert DegradedServiceError("down", retry_after=-1).retry_after == 0.0


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_budget_and_check():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    assert deadline.remaining() == pytest.approx(1.0)
    assert not deadline.expired
    deadline.check("op")  # within budget: no raise
    clock.advance(1.5)
    assert deadline.expired
    assert deadline.remaining() == 0.0
    with pytest.raises(DeadlineExceededError, match="wal append"):
        deadline.check("wal append")
    with pytest.raises(ValueError):
        Deadline.after(-1.0, clock=clock)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_recovers_from_transient_errors():
    sleeps = []
    policy = RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0,
                         sleep=sleeps.append)
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise sqlite3.OperationalError("database is locked")
        return "ok"

    assert policy.call(flaky) == "ok"
    assert calls["n"] == 3
    assert policy.retries_performed == 2
    # Exponential schedule without jitter is exact.
    assert sleeps == pytest.approx([0.01, 0.02])


def test_retry_short_circuits_permanent_errors():
    policy = _fast_policy(attempts=5)
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise PermanentStorageError("gone")

    with pytest.raises(PermanentStorageError):
        policy.call(broken)
    assert calls["n"] == 1  # no retries burned on a permanent error


def test_retry_exhaustion_reraises_original_error():
    policy = _fast_policy(attempts=2)
    with pytest.raises(sqlite3.OperationalError, match="locked"):
        policy.call(lambda: (_ for _ in ()).throw(
            sqlite3.OperationalError("database is locked")))


def test_retry_schedule_is_seeded_and_reproducible():
    first = RetryPolicy(attempts=5, seed=42)
    second = RetryPolicy(attempts=5, seed=42)
    other = RetryPolicy(attempts=5, seed=43)
    schedule = [first.delay_for(k) for k in range(4)]
    assert schedule == [second.delay_for(k) for k in range(4)]
    assert schedule != [other.delay_for(k) for k in range(4)]
    # Backoff grows and respects the ceiling even with jitter.
    assert all(delay <= first.max_delay * (1 + first.jitter)
               for delay in schedule)


def test_retry_respects_deadline():
    clock = FakeClock()
    sleeps = []

    def sleeping(seconds):
        sleeps.append(seconds)
        clock.advance(seconds)

    policy = RetryPolicy(attempts=10, base_delay=0.4, jitter=0.0,
                         sleep=sleeping)
    deadline = Deadline.after(1.0, clock=clock)

    def always_locked():
        clock.advance(0.05)
        raise sqlite3.OperationalError("database is locked")

    with pytest.raises(DeadlineExceededError):
        policy.call(always_locked, deadline=deadline, operation="append")
    # Far fewer than 10 attempts fit in the one-second budget.
    assert 1 <= len(sleeps) <= 3
    assert all(s <= 1.0 for s in sleeps)


def test_no_retry_policy_fails_fast():
    policy = RetryPolicy.no_retry()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        raise sqlite3.OperationalError("database is locked")

    with pytest.raises(sqlite3.OperationalError):
        policy.call(flaky)
    assert calls["n"] == 1
    assert policy.describe()["attempts"] == 1


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_trips_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                             clock=clock)
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    breaker.record_success()  # success resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.retry_after() == pytest.approx(10.0)


def test_breaker_half_open_single_probe_and_recovery():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                             clock=clock)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(5.0)
    assert breaker.state == "half-open"
    assert breaker.allow()        # the probe
    assert not breaker.allow()    # concurrent callers refused
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow() and breaker.allow()  # closed admits everyone


def test_breaker_failed_probe_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0,
                             clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == "open"
    assert breaker.status()["open_count"] == 2
    assert not breaker.allow()


# ----------------------------------------------------------------------
# FaultPlan / FaultInjectingBackend
# ----------------------------------------------------------------------
def test_fault_plan_parse_and_nth_storm():
    plan = FaultPlan.parse("append_ingest:error=locked:nth=2:times=3,"
                           "save_snapshot:error=io:rate=1.0:times=1")
    assert len(plan.specs) == 2
    fires = [plan.next_fault("append_ingest", n) is not None
             for n in range(1, 7)]
    assert fires == [False, True, True, True, False, False]
    assert plan.next_fault("save_snapshot", 1).error == "io"
    assert plan.next_fault("save_snapshot", 2) is None  # times exhausted
    assert plan.total_fired == 4


def test_fault_plan_rate_is_seeded():
    def schedule(seed):
        plan = FaultPlan([FaultSpec(op="append_ingest", rate=0.5, times=0)],
                         seed=seed)
        return [plan.next_fault("append_ingest", n) is not None
                for n in range(1, 41)]

    assert schedule(7) == schedule(7)
    assert any(schedule(7))


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(op="append_ingest", error="nope", nth=1)
    with pytest.raises(ValueError):
        FaultSpec(op="append_ingest")  # neither nth nor rate
    with pytest.raises(ValueError):
        FaultSpec(op="append_ingest", nth=1, rate=0.5)
    with pytest.raises(ValueError):
        FaultPlan.parse("append_ingest:bogus=1:nth=1")


def test_fault_backend_passthrough_and_injection(backend):
    backend.create_tenant("t", _tdg_config())
    clean = FaultInjectingBackend(backend)  # empty plan: pure pass-through
    assert clean.append_ingest("t", [[1, 2]], DOMAIN) == 1
    assert clean.name == f"fault+{backend.name}"
    assert clean.describe()["faults_fired"] == 0

    plan = FaultPlan.parse("append_ingest:error=locked:nth=1")
    faulty = FaultInjectingBackend(backend, plan)
    with pytest.raises(sqlite3.OperationalError, match="locked"):
        faulty.append_ingest("t", [[3, 4]], DOMAIN)
    # The failed call persisted nothing; the next one succeeds.
    assert faulty.append_ingest("t", [[3, 4]], DOMAIN) == 2
    assert len(backend.pending_ingest("t")) == 2
    assert plan.total_fired == 1


# ----------------------------------------------------------------------
# Chaos: transparent retry, no acknowledged-report loss
# ----------------------------------------------------------------------
def test_nth_write_fault_is_retried_without_loss(backend, tmp_path):
    plan = FaultPlan.parse("append_ingest:error=locked:nth=2")
    faulty = FaultInjectingBackend(backend, plan)
    manager = TenantManager(faulty, default_config=_tdg_config(),
                            retry_policy=_fast_policy())
    for seed in (1, 2, 3):
        receipt = manager.ingest("default", _rows(seed))
        assert receipt["ingested"] == 30
    assert plan.total_fired == 1
    assert manager.retry_policy.retries_performed == 1
    assert manager.resilience_status()["breakers"]["default"][
        "state"] == "closed"

    # A restart over the raw backend answers bitwise-identically to an
    # uninterrupted run over a pristine backend.
    recovered = TenantManager(backend)
    mirror_backend = open_backend("json", str(tmp_path / "mirror"))
    mirror = TenantManager(mirror_backend, default_config=_tdg_config())
    for seed in (1, 2, 3):
        mirror.ingest("default", _rows(seed))
    recovered.refinalize("default")
    mirror.refinalize("default")
    assert (recovered.service("default").query_wire(_workload())["answers"]
            == mirror.service("default").query_wire(_workload())["answers"])
    mirror_backend.close()


def test_io_fault_on_snapshot_is_retried(backend):
    plan = FaultPlan.parse("save_snapshot:error=io:nth=1")
    faulty = FaultInjectingBackend(backend, plan)
    manager = TenantManager(faulty, default_config=_tdg_config(),
                            retry_policy=_fast_policy())
    manager.ingest("default", _rows(1))
    record = manager.save_snapshot("default")
    assert record.version == 1
    assert plan.total_fired == 1
    # The captured tail was pruned despite the first attempt failing.
    assert backend.ingest_log_depth("default") == 0


# ----------------------------------------------------------------------
# Chaos: degraded mode and breaker recovery
# ----------------------------------------------------------------------
def test_locked_storm_degrades_then_recovers(backend):
    clock = FakeClock()
    # 2 attempts per ingest; 6 consecutive failures = 3 failed ingests
    # trip a threshold-3 breaker.  Append #1 (the baseline) is clean.
    plan = FaultPlan.parse("append_ingest:error=locked:nth=2:times=6")
    faulty = FaultInjectingBackend(backend, plan)
    manager = TenantManager(faulty, default_config=_tdg_config(),
                            retry_policy=_fast_policy(attempts=2),
                            breaker_threshold=3, breaker_reset=10.0,
                            clock=clock)
    manager.ingest("default", _rows(0))  # pre-fault baseline
    manager.refinalize("default")
    baseline = manager.service("default").query_wire(_workload())["answers"]

    for _ in range(3):
        with pytest.raises(DegradedServiceError):
            manager.ingest("default", _rows(9))
    status = manager.resilience_status()
    assert status["breakers"]["default"]["state"] == "open"
    assert manager.degraded_tenants() == ["default"]
    ready, document = manager.readiness()
    assert not ready and document["degraded_tenants"] == ["default"]

    # Open breaker: ingest refused immediately, without a backend call.
    appends_before = faulty.call_counts["append_ingest"]
    with pytest.raises(DegradedServiceError) as info:
        manager.ingest("default", _rows(9))
    assert faulty.call_counts["append_ingest"] == appends_before
    assert 0.0 < info.value.retry_after <= 10.0

    # Queries keep answering from the last finalized estimator.
    assert manager.service("default").query_wire(
        _workload())["answers"] == baseline

    # After the reset timeout the half-open probe goes through (the
    # storm is exhausted) and the tenant recovers.
    clock.advance(10.0)
    receipt = manager.ingest("default", _rows(4))
    assert receipt["ingested"] == 30
    assert manager.resilience_status()["breakers"]["default"][
        "state"] == "closed"
    assert manager.readiness()[0]
    # Nothing acknowledged was lost: the log holds exactly the two
    # acknowledged batches.
    assert backend.ingest_log_depth("default") == 2


def test_degradation_is_per_tenant(backend):
    plan = FaultPlan.parse("append_ingest:error=permanent:nth=2:times=100")
    faulty = FaultInjectingBackend(backend, plan)
    manager = TenantManager(faulty, retry_policy=_fast_policy(),
                            breaker_threshold=1, breaker_reset=100.0)
    manager.create_tenant("healthy", _tdg_config())
    manager.create_tenant("sick", _tdg_config(seed=5))
    manager.ingest("healthy", _rows(1))  # append #1: clean
    with pytest.raises(DegradedServiceError):
        manager.ingest("sick", _rows(2))  # append #2: permanent fault
    assert manager.degraded_tenants() == ["sick"]
    # The healthy tenant's breaker is untouched... but the storm is
    # still firing, so its next append degrades it too — faults are
    # per-backend, breakers per-tenant.
    assert manager.resilience_status()["breakers"]["healthy"][
        "state"] == "closed"


# ----------------------------------------------------------------------
# Chaos: torn write-ahead append and quarantine
# ----------------------------------------------------------------------
def test_torn_wal_append_is_quarantined_on_restart(tmp_path):
    backend = DirectoryBackend(tmp_path / "store")
    plan = FaultPlan.parse("append_ingest:error=torn:nth=3")
    faulty = FaultInjectingBackend(backend, plan)
    manager = TenantManager(faulty, default_config=_tdg_config(),
                            retry_policy=_fast_policy())
    manager.ingest("default", _rows(1))
    manager.ingest("default", _rows(2))
    with pytest.raises(DegradedServiceError):  # torn: never acknowledged
        manager.ingest("default", _rows(3))

    # Restart over the raw backend: the torn tail is quarantined and
    # recovery replays exactly the acknowledged batches.
    recovered = TenantManager(backend)
    assert recovered.quarantined_tenants() == {}
    torn_files = list((tmp_path / "store").rglob("*.torn"))
    assert len(torn_files) == 1

    mirror_backend = DirectoryBackend(tmp_path / "mirror")
    mirror = TenantManager(mirror_backend, default_config=_tdg_config())
    mirror.ingest("default", _rows(1))
    mirror.ingest("default", _rows(2))
    recovered.refinalize("default")
    mirror.refinalize("default")
    assert (recovered.service("default").query_wire(_workload())["answers"]
            == mirror.service("default").query_wire(_workload())["answers"])
    backend.close()
    mirror_backend.close()


def test_mid_sequence_corruption_refuses_recovery(tmp_path):
    backend = DirectoryBackend(tmp_path / "store")
    manager = TenantManager(backend, default_config=_tdg_config())
    manager.ingest("default", _rows(1))
    manager.ingest("default", _rows(2))
    entry = next((tmp_path / "store").rglob("entry-00000001.json"))
    entry.write_text('{"seq": 1, "rows": [[1,')  # corrupt, NOT the tail
    with pytest.raises(CorruptEntryError):
        backend.pending_ingest("default")
    backend.close()


def test_corrupt_snapshot_quarantines_one_tenant_not_all(backend):
    manager = TenantManager(backend)
    manager.create_tenant("good", _tdg_config())
    manager.create_tenant("bad", _tdg_config(seed=5))
    manager.ingest("good", _rows(1))
    manager.ingest("bad", _rows(2))
    manager.save_snapshot("bad")
    # Corrupt the stored snapshot document out from under the backend.
    document, record = backend.load_snapshot("bad")
    document["estimator"] = {"broken": True}
    document.pop("mechanism", None)
    backend.save_snapshot("bad", document, wal_seq=record.wal_seq)

    restarted = TenantManager(backend)
    assert "bad" in restarted.quarantined_tenants()
    assert restarted.tenant_names() == ["good"]
    # The healthy tenant recovered fully and answers.
    restarted.refinalize("good")
    assert restarted.service("good").query_wire(_workload())["answers"]
    # Requests for the quarantined tenant answer degraded, not a crash.
    with pytest.raises(DegradedServiceError):
        restarted.service("bad")
    doc = restarted.describe_tenant("bad")
    assert doc["state"] == "quarantined"
    assert "recovery failed" in doc["quarantine"]["reason"]
    rows = {row["name"]: row for row in restarted.list_tenants()}
    assert rows["bad"]["state"] == "quarantined"
    assert rows["good"]["state"] == "serving"
    ready, document = restarted.readiness()
    assert not ready and document["quarantined_tenants"] == ["bad"]
    # Deleting the quarantined tenant is the operator's way out.
    restarted.delete_tenant("bad")
    assert restarted.readiness()[0]


def test_retry_recovery_after_repair(backend):
    manager = TenantManager(backend)
    manager.create_tenant("t", _tdg_config())
    manager.ingest("t", _rows(1))
    manager.save_snapshot("t")
    document, record = backend.load_snapshot("t")
    broken = dict(document)
    broken["estimator"] = {"broken": True}
    broken.pop("mechanism", None)
    backend.save_snapshot("t", broken, wal_seq=record.wal_seq)

    restarted = TenantManager(backend)
    assert "t" in restarted.quarantined_tenants()
    with pytest.raises(UnknownTenantError):
        restarted.retry_recovery("absent")
    assert not restarted.retry_recovery("t")  # still broken
    # Repair: write a good snapshot version on top.
    backend.save_snapshot("t", document, wal_seq=record.wal_seq)
    assert restarted.retry_recovery("t")
    assert restarted.quarantined_tenants() == {}
    restarted.refinalize("t")
    assert restarted.service("t").query_wire(_workload())["answers"]


# ----------------------------------------------------------------------
# HTTP surface: 503s, Retry-After, /readyz, shedding, busy timeout
# ----------------------------------------------------------------------
def _http(port, path, payload=None, method=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                     data=data, method=method)
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _http_error(port, path, payload=None, method=None):
    try:
        _http(port, path, payload, method)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())
    raise AssertionError("expected an HTTP error")


@pytest.fixture()
def chaos_server(tmp_path):
    clock = FakeClock()
    inner = SQLiteBackend(tmp_path / "serving.db")
    plan = FaultPlan.parse("append_ingest:error=permanent:nth=2:times=1")
    faulty = FaultInjectingBackend(inner, plan)
    manager = TenantManager(faulty, default_config=_tdg_config(),
                            retry_policy=_fast_policy(),
                            breaker_threshold=1, breaker_reset=30.0,
                            clock=clock)
    server = build_server(tenant_manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield manager, clock, server.server_address[1]
    server.shutdown()
    server.server_close()
    inner.close()


def test_http_degraded_503_with_retry_after(chaos_server):
    manager, clock, port = chaos_server
    rows = _rows(1)
    assert _http(port, "/ingest", {"rows": rows})["ingested"] == 30
    _http(port, "/refinalize", {})
    status, headers, body = _http_error(port, "/ingest", {"rows": rows})
    assert status == 503
    assert body["code"] == "degraded"
    assert body["tenant"] == "default"
    assert int(headers["Retry-After"]) >= 1

    # Liveness stays 200 and reports the open breaker; readiness flips.
    health = _http(port, "/healthz")
    assert health["status"] == "ok"
    assert health["resilience"]["breakers"]["default"]["state"] == "open"
    assert health["load"]["workers"] >= 1
    status, _, ready_body = _http_error(port, "/readyz")
    assert status == 503 and ready_body["degraded_tenants"] == ["default"]

    # Queries still answer while degraded.
    answers = _http(port, "/query", {"queries": _workload()})["answers"]
    assert len(answers) == 2

    # Past the reset window the probe succeeds (the single-fire fault
    # is exhausted) and readiness recovers.
    clock.advance(30.0)
    assert _http(port, "/ingest", {"rows": rows})["ingested"] == 30
    assert _http(port, "/readyz")["ready"] is True


def test_http_readyz_single_service(tmp_path):
    from repro.serving import QueryService
    service = QueryService("TDG", 1.0, seed=3, domain_size=DOMAIN,
                           total_users=100)
    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        port = server.server_address[1]
        status, _, body = _http_error(port, "/readyz")
        assert status == 503 and body == {"ready": False}
        _http(port, "/ingest", {"rows": _rows(1)})
        _http(port, "/refinalize", {})
        assert _http(port, "/readyz") == {"ready": True}
    finally:
        server.shutdown()
        server.server_close()


def test_admission_queue_sheds_with_503(tmp_path):
    import socket

    from repro.serving import QueryService
    service = QueryService("TDG", 1.0, seed=3, domain_size=DOMAIN,
                           total_users=100)
    server = build_server(service, workers=1, queue_depth=0,
                          handler_timeout=30.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        # One idle keep-alive connection occupies the only capacity slot.
        holder = socket.create_connection(("127.0.0.1", port), timeout=10)
        deadline = [None]

        def _wait_busy():
            for _ in range(200):
                if server.load_status()["in_flight"] >= 1:
                    return True
                threading.Event().wait(0.01)
            return False

        assert _wait_busy()
        # The next connection is shed on the listener thread.
        probe = socket.create_connection(("127.0.0.1", port), timeout=10)
        probe.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        response = b""
        while b"}" not in response:
            chunk = probe.recv(4096)
            if not chunk:
                break
            response += chunk
        assert b"503" in response.split(b"\r\n", 1)[0]
        assert b"Retry-After" in response
        assert b"overloaded" in response
        probe.close()
        holder.close()
        assert server.load_status()["shed_connections"] >= 1
    finally:
        server.shutdown()
        server.server_close()


def test_busy_timeout_configurable_end_to_end(tmp_path):
    backend = open_backend("sqlite", str(tmp_path / "a.db"),
                           busy_timeout_ms=1234)
    assert backend.busy_timeout_ms == 1234
    assert backend._connection.execute(
        "PRAGMA busy_timeout").fetchone()[0] == 1234
    backend.close()
    with pytest.raises(ValueError, match="sqlite"):
        open_backend("json", str(tmp_path / "store"), busy_timeout_ms=10)
    with pytest.raises(ValueError):
        SQLiteBackend(tmp_path / "b.db", busy_timeout_ms=-1)


def test_cli_serve_resilience_flags(tmp_path, capsys):
    from repro.cli import main
    code = main(["serve", "--backend", "sqlite",
                 "--store", str(tmp_path / "serve.db"),
                 "--busy-timeout", "500", "--queue-depth", "4",
                 "--retry-attempts", "2", "--op-deadline", "5",
                 "--breaker-threshold", "2", "--port", "0",
                 "--max-requests", "0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "/readyz" in out


def test_cli_busy_timeout_requires_sqlite(tmp_path, capsys):
    from repro.cli import main
    assert main(["serve", "--busy-timeout", "10", "--port", "0",
                 "--max-requests", "0"]) == 2
    assert "sqlite" in capsys.readouterr().err
    assert main(["serve", "--backend", "json",
                 "--store", str(tmp_path / "s"),
                 "--busy-timeout", "10", "--port", "0",
                 "--max-requests", "0"]) == 2

