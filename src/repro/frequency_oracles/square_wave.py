"""Square Wave (SW) mechanism for ordinal/numerical distribution estimation.

SW (Li et al., SIGMOD 2020; Section 3.5 of the paper) exploits the ordinal
nature of the domain: a value is reported as a point close to the truth
with high probability ``p`` (within distance ``delta``) and as any other
point in the padded output domain ``[-delta, 1 + delta]`` with low
probability ``p'``.  The aggregator reconstructs the input distribution
with Expectation Maximization, optionally followed by a smoothing step.

This module provides the discretised version used by the MSW baseline: the
input domain ``[c]`` is normalised to ``[0, 1]``, the padded output domain
is discretised into ``output_bins`` buckets, and EM runs on the resulting
``output_bins x c`` transition matrix.
"""

from __future__ import annotations

import math

import numpy as np

from .base import FrequencyOracle, SupportAccumulator


def squarewave_parameters(epsilon: float) -> tuple[float, float, float]:
    """Return ``(delta, p, p_prime)`` for the SW mechanism.

    ``delta`` is the closeness threshold from the paper:
    ``delta = (eps * e^eps - e^eps + 1) / (2 e^eps (e^eps - 1 - eps))``.
    ``p`` applies inside the window ``|v - y| <= delta`` and ``p'`` outside.
    """
    e_eps = math.exp(epsilon)
    delta = (epsilon * e_eps - e_eps + 1.0) / (2.0 * e_eps * (e_eps - 1.0 - epsilon))
    p = e_eps / (2.0 * delta * e_eps + 1.0)
    p_prime = 1.0 / (2.0 * delta * e_eps + 1.0)
    return delta, p, p_prime


class SquareWave(FrequencyOracle):
    """Discretised Square Wave mechanism with EM reconstruction.

    Parameters
    ----------
    epsilon:
        Per-report privacy budget.
    domain_size:
        Ordinal domain size ``c``; true values are integers in ``[0, c)``
        and are mapped to bin centres in ``[0, 1]``.
    output_bins:
        Number of buckets used to discretise the padded report domain.
        Defaults to ``domain_size`` (plus padding), which matches the
        reference implementation's granularity.
    em_iterations:
        Maximum number of EM iterations.
    em_tolerance:
        EM stops once the L1 change of the estimate drops below this.
    smoothing:
        If True, apply a binomial smoothing between EM iterations (the
        "EMS" variant).  Smoothing trades sharpness for stability on very
        small populations; the default (False) is plain EM, which is what
        the range-query experiments want.
    """

    def __init__(self, epsilon: float, domain_size: int,
                 rng: np.random.Generator | None = None,
                 output_bins: int | None = None,
                 em_iterations: int = 200, em_tolerance: float = 1e-6,
                 smoothing: bool = False):
        super().__init__(epsilon, domain_size, rng)
        self.delta, self.p, self.p_prime = squarewave_parameters(epsilon)
        self.output_bins = int(output_bins) if output_bins else int(domain_size)
        self.em_iterations = int(em_iterations)
        self.em_tolerance = float(em_tolerance)
        self.smoothing = bool(smoothing)
        self._transition = self._build_transition_matrix()

    # ------------------------------------------------------------------
    # Mechanism definition
    # ------------------------------------------------------------------
    def _input_positions(self) -> np.ndarray:
        """Map each discrete value to the centre of its bin in [0, 1]."""
        return (np.arange(self.domain_size) + 0.5) / self.domain_size

    def _output_edges(self) -> np.ndarray:
        """Bucket edges of the padded output domain [-delta, 1 + delta]."""
        return np.linspace(-self.delta, 1.0 + self.delta, self.output_bins + 1)

    def _build_transition_matrix(self) -> np.ndarray:
        """Matrix ``T[j, v] = Pr[report lands in output bucket j | value v]``.

        Probability mass is ``p`` per unit length within ``delta`` of the
        true position and ``p'`` per unit length elsewhere; integrating the
        density over each output bucket yields the discrete transition
        probabilities.  All ``output_bins x c`` bucket/window overlaps are
        computed in one broadcast, element-for-element identical to the
        per-column loop kept as :meth:`_build_transition_matrix_loop`.
        """
        positions = self._input_positions()[None, :]
        edges = self._output_edges()
        lows, highs = edges[:-1, None], edges[1:, None]
        # Length of each bucket that falls inside each value's
        # high-probability window, and the remaining length outside it.
        inside = np.clip(np.minimum(highs, positions + self.delta)
                         - np.maximum(lows, positions - self.delta), 0.0, None)
        outside = (highs - lows) - inside
        matrix = inside * self.p + outside * self.p_prime
        # Normalise columns: tiny numerical drift aside, each column already
        # integrates to 1 because p and p' were chosen that way.
        matrix /= matrix.sum(axis=0, keepdims=True)
        return matrix

    def _build_transition_matrix_loop(self) -> np.ndarray:
        """Original one-column-at-a-time construction (equivalence reference)."""
        positions = self._input_positions()
        edges = self._output_edges()
        lows, highs = edges[:-1], edges[1:]
        matrix = np.empty((self.output_bins, self.domain_size))
        for col, v in enumerate(positions):
            win_lo, win_hi = v - self.delta, v + self.delta
            inside = np.clip(np.minimum(highs, win_hi) - np.maximum(lows, win_lo),
                             0.0, None)
            total = highs - lows
            outside = total - inside
            matrix[:, col] = inside * self.p + outside * self.p_prime
        matrix /= matrix.sum(axis=0, keepdims=True)
        return matrix

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def perturb(self, values: np.ndarray) -> np.ndarray:
        """Report a perturbed position in ``[-delta, 1 + delta]`` per user."""
        values = self._validate_values(values)
        positions = self._input_positions()[values]
        n = values.size
        window_mass = 2.0 * self.delta * self.p
        in_window = self.rng.random(n) < window_mass
        # Inside the window: uniform within [v - delta, v + delta].
        within = positions + self.rng.uniform(-self.delta, self.delta, size=n)
        # Outside: uniform over the complement of the window in the padded
        # domain, realised by rejection-free stitching of the two segments.
        domain_lo, domain_hi = -self.delta, 1.0 + self.delta
        left_len = np.clip(positions - self.delta - domain_lo, 0.0, None)
        right_len = np.clip(domain_hi - (positions + self.delta), 0.0, None)
        u = self.rng.random(n) * (left_len + right_len)
        outside = np.where(u < left_len,
                           domain_lo + u,
                           positions + self.delta + (u - left_len))
        return np.where(in_window, within, outside)

    def perturb_loop(self, values: np.ndarray) -> np.ndarray:
        """Per-user reference for :meth:`perturb` (equivalence testing).

        Draws the same three uniform batches from the same stream, then
        evaluates the piecewise report position one user at a time with
        scalar arithmetic; with equal generator state the reports match
        the vectorised path bit-for-bit.
        """
        values = self._validate_values(values)
        positions = self._input_positions()[values]
        n = values.size
        window_mass = 2.0 * self.delta * self.p
        window_draws = self.rng.random(n)
        within_offsets = self.rng.uniform(-self.delta, self.delta, size=n)
        outside_draws = self.rng.random(n)
        domain_lo, domain_hi = -self.delta, 1.0 + self.delta
        reports = np.empty(n)
        for i in range(n):
            position = positions[i]
            left_len = max(position - self.delta - domain_lo, 0.0)
            right_len = max(domain_hi - (position + self.delta), 0.0)
            u = outside_draws[i] * (left_len + right_len)
            if u < left_len:
                outside = domain_lo + u
            else:
                outside = position + self.delta + (u - left_len)
            if window_draws[i] < window_mass:
                reports[i] = position + within_offsets[i]
            else:
                reports[i] = outside
        return reports

    def _bucketise(self, reports: np.ndarray) -> np.ndarray:
        edges = self._output_edges()
        idx = np.searchsorted(edges, reports, side="right") - 1
        return np.clip(idx, 0, self.output_bins - 1)

    # ------------------------------------------------------------------
    # Server side: Expectation Maximization
    # ------------------------------------------------------------------
    def reconstruct(self, report_counts: np.ndarray) -> np.ndarray:
        """Run EM on bucketised report counts to estimate the distribution."""
        counts = np.asarray(report_counts, dtype=float)
        if counts.shape != (self.output_bins,):
            raise ValueError(
                f"expected {self.output_bins} report-bucket counts, got shape "
                f"{counts.shape}"
            )
        total = counts.sum()
        if total <= 0:
            raise ValueError("cannot reconstruct a distribution from zero reports")
        observed = counts / total
        estimate = np.full(self.domain_size, 1.0 / self.domain_size)
        transition = self._transition
        for _ in range(self.em_iterations):
            # E-step: probability of each output bucket under the estimate.
            predicted = transition @ estimate
            predicted = np.clip(predicted, 1e-12, None)
            # M-step: reweight the estimate by the responsibility of each
            # input value for the observed buckets.
            responsibility = transition * estimate[None, :] / predicted[:, None]
            new_estimate = responsibility.T @ observed
            new_estimate = np.clip(new_estimate, 0.0, None)
            s = new_estimate.sum()
            if s > 0:
                new_estimate /= s
            if self.smoothing and self.domain_size >= 3:
                smoothed = new_estimate.copy()
                smoothed[1:-1] = (new_estimate[:-2]
                                  + 2.0 * new_estimate[1:-1]
                                  + new_estimate[2:]) / 4.0
                smoothed[0] = (2.0 * new_estimate[0] + new_estimate[1]) / 3.0
                smoothed[-1] = (2.0 * new_estimate[-1] + new_estimate[-2]) / 3.0
                new_estimate = smoothed / smoothed.sum()
            change = np.abs(new_estimate - estimate).sum()
            estimate = new_estimate
            if change < self.em_tolerance:
                break
        return estimate

    # ------------------------------------------------------------------
    # FrequencyOracle API
    # ------------------------------------------------------------------
    def accumulate(self, values: np.ndarray) -> SupportAccumulator:
        """Bucketised report counts — additive across batches; EM runs once
        on the merged counts at estimation time."""
        reports = self.perturb(values)
        buckets = self._bucketise(reports)
        counts = np.bincount(buckets, minlength=self.output_bins).astype(float)
        return SupportAccumulator(counts, values.size)

    def estimate_from_accumulator(self,
                                  accumulator: SupportAccumulator) -> np.ndarray:
        return self.reconstruct(accumulator.supports)

    def estimate_frequencies(self, values: np.ndarray) -> np.ndarray:
        return self.estimate_from_accumulator(self.accumulate(values))

    def variance(self, n: int, true_frequency: float = 0.0) -> float:
        """Approximate per-value variance; SW has no closed form, so we use
        the randomized-response-style bound over the effective window."""
        e_eps = self.e_eps
        return 4.0 * e_eps / ((e_eps - 1.0) ** 2 * n)
