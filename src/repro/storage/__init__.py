"""Durable storage backends for the serving tier.

The serving stack persists three concerns — tenant configurations,
versioned service snapshots, and a write-ahead ingest log — behind one
:class:`StorageBackend` contract with two implementations:

:class:`DirectoryBackend` (``"json"``)
    The original directory-of-JSON snapshot layout, kept as the
    default.  Human-inspectable files, one directory per store,
    durable writes (fsync'd temp file + atomic rename + directory
    fsync).
:class:`SQLiteBackend` (``"sqlite"``)
    One WAL-mode SQLite file with schema-per-concern tables and a
    trigger-materialized listing view; listings and log scans never
    touch snapshot blobs.

:func:`open_backend` builds either from CLI-style arguments.  See
docs/storage.md for the backend matrix, durability guarantees and
recovery semantics.
"""

from .base import (DEFAULT_TENANT, CorruptEntryError, IngestLogEntry,
                   SnapshotRecord, StorageBackend, StorageError,
                   TenantExistsError, TenantRecord, UnknownTenantError,
                   validate_tenant_name)
from .directory import DirectoryBackend
from .sqlite import SQLiteBackend

#: Backend constructors by CLI name.
BACKENDS = {
    "json": DirectoryBackend,
    "sqlite": SQLiteBackend,
}


def open_backend(backend: str, location: str, *,
                 busy_timeout_ms: int | None = None) -> StorageBackend:
    """Build a storage backend by name.

    ``location`` is the store directory for ``"json"`` and the
    database file path for ``"sqlite"``.  ``busy_timeout_ms``
    configures the SQLite lock-wait budget (``repro serve
    --busy-timeout``); setting it for a backend without lock waiting
    is an error rather than a silent no-op.
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown storage backend {backend!r}; "
                         f"known: {sorted(BACKENDS)}") from None
    if busy_timeout_ms is not None:
        if backend != "sqlite":
            raise ValueError(
                f"busy_timeout_ms only applies to the sqlite backend, "
                f"not {backend!r}")
        return factory(location, busy_timeout_ms=busy_timeout_ms)
    return factory(location)


__all__ = [
    "BACKENDS",
    "CorruptEntryError",
    "DEFAULT_TENANT",
    "DirectoryBackend",
    "IngestLogEntry",
    "SQLiteBackend",
    "SnapshotRecord",
    "StorageBackend",
    "StorageError",
    "TenantExistsError",
    "TenantRecord",
    "UnknownTenantError",
    "open_backend",
    "validate_tenant_name",
]
