"""Tests for Algorithm 2 (λ-D query estimation from 2-D answers)."""

import numpy as np
import pytest

from repro.core import estimate_lambda_query
from repro.core.query_estimation import (build_constraints, orthant_index,
                                          pair_constraint_indices)
from repro.datasets import generate_normal
from repro.queries import RangeQuery, answer_query


def test_orthant_index_bit_layout():
    assert orthant_index((True, True, True)) == 7
    assert orthant_index((False, False, False)) == 0
    assert orthant_index((True, False, True)) == 5


def test_pair_constraint_indices_include_both_bits_set():
    indices = pair_constraint_indices(3, 0, 2)
    # Orthants with bits 0 and 2 set: 101 (5) and 111 (7).
    assert sorted(indices.tolist()) == [5, 7]
    indices4 = pair_constraint_indices(4, 1, 3)
    assert len(indices4) == 4
    for index in indices4:
        assert (index >> 1) & 1 and (index >> 3) & 1


def test_build_constraints_clips_negative_targets():
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1), 2: (0, 1)})
    constraints = build_constraints(query, {(0, 1): -0.2, (0, 2): 0.5,
                                            (1, 2): 0.1})
    targets = sorted(c.target for c in constraints)
    assert targets[0] == 0.0


def test_two_dimensional_query_passes_through():
    query = RangeQuery.from_dict({0: (0, 3), 1: (0, 3)})
    answer = estimate_lambda_query(query, lambda q: 0.42)
    assert answer == pytest.approx(0.42)


def test_one_dimensional_query_rejected():
    query = RangeQuery.from_dict({0: (0, 3)})
    with pytest.raises(ValueError):
        estimate_lambda_query(query, lambda q: 0.1)


def test_independent_attributes_give_product():
    # If the 2-D answers factorise as products of per-attribute answers,
    # the λ-D estimate should land close to the product of all of them.
    # (The pairwise-AND constraints plus normalisation do not pin the
    # solution to the exact independent coupling, so only approximate
    # agreement is expected — the same estimation error the paper's
    # Section 4.5 describes.)
    marginals = {0: 0.5, 1: 0.4, 2: 0.25}
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1), 2: (0, 1)})

    def answer_pair(sub_query):
        a, b = sub_query.attributes
        return marginals[a] * marginals[b]

    estimate = estimate_lambda_query(query, answer_pair, max_iterations=300)
    expected = marginals[0] * marginals[1] * marginals[2]
    assert estimate == pytest.approx(expected, abs=0.025)
    assert estimate > 0.0


def test_exact_pairwise_answers_give_accurate_estimate_on_real_data():
    dataset = generate_normal(30_000, 4, 16, covariance=0.8,
                              rng=np.random.default_rng(0))
    query = RangeQuery.from_dict({0: (0, 7), 1: (0, 7), 2: (0, 7), 3: (0, 7)})
    true_answer = answer_query(dataset, query)

    def answer_pair(sub_query):
        return answer_query(dataset, sub_query)

    estimate = estimate_lambda_query(query, answer_pair, max_iterations=300)
    # With exact 2-D inputs only the estimation error of Section 4.5 remains:
    # the pairwise model cannot capture the 4-way dependence exactly, but the
    # estimate must sit much closer to the truth than the independence
    # product (0.5^4 = 0.0625) and err on the correct side of it.
    independence_product = 0.5 ** 4
    assert abs(estimate - true_answer) < abs(independence_product - true_answer)
    assert estimate > independence_product
    assert estimate <= true_answer + 0.05


def test_weighted_update_and_max_entropy_agree():
    marginals = {0: 0.6, 1: 0.3, 2: 0.5}
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1), 2: (0, 1)})

    def answer_pair(sub_query):
        a, b = sub_query.attributes
        return marginals[a] * marginals[b]

    wu = estimate_lambda_query(query, answer_pair, method="weighted_update",
                               max_iterations=300)
    me = estimate_lambda_query(query, answer_pair, method="max_entropy",
                               max_iterations=300)
    assert wu == pytest.approx(me, abs=0.02)


def test_history_tracking_returns_changes():
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1), 2: (0, 1)})
    answer, history = estimate_lambda_query(query, lambda q: 0.25,
                                            track_history=True)
    assert isinstance(answer, float)
    assert len(history) >= 1


def test_unknown_method_rejected():
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1), 2: (0, 1)})
    with pytest.raises(ValueError):
        estimate_lambda_query(query, lambda q: 0.25, method="bogus")


def test_estimate_bounded_by_pairwise_answers():
    # The λ-D answer cannot exceed any of its 2-D projections' answers when
    # the inputs are consistent; the multiplicative update respects this.
    query = RangeQuery.from_dict({0: (0, 1), 1: (0, 1), 2: (0, 1)})
    estimate = estimate_lambda_query(query, lambda q: 0.2, max_iterations=300)
    assert estimate <= 0.2 + 1e-6
    assert estimate >= 0.0
