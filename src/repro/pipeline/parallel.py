"""Parallel sharded fitting via :mod:`concurrent.futures`.

:func:`parallel_fit` splits a dataset into disjoint user shards, runs the
per-shard LDP collection (``partial_fit``) concurrently — one mechanism
instance per shard, each with its own seeded randomness — then merges
the shard accumulators in deterministic order and finalises once.  With
a fixed seed the result does not depend on thread scheduling: merging is
exact count addition applied in shard order.

The default executor uses threads: the hot collection path is numpy
(binomial sampling, bincount, hash-matrix comparison), which releases
the GIL for the bulk of its work.  A ``"process"`` executor is also
available for user-mode OLH at very large scale; everything shipped
between processes (datasets, mechanisms, accumulators) is picklable.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core import RangeQueryMechanism
from ..datasets import Dataset

#: Seed stride between shard mechanisms, so shards draw independent noise.
SHARD_SEED_STRIDE = 977


def shard_seed(base_seed: int, shard_index: int) -> int:
    """Seed for one shard's mechanism, distinct from ``base_seed`` itself.

    Shard 0 is offset too, so a sharded run never shares its perturbation
    noise with the single-shot mechanism built from ``base_seed``.
    """
    return base_seed + SHARD_SEED_STRIDE * (shard_index + 1)


def shard_dataset(dataset: Dataset, n_shards: int,
                  rng: np.random.Generator | None = None) -> list[Dataset]:
    """Split a dataset into ``n_shards`` near-equal disjoint user shards.

    Rows are split contiguously by default (users are exchangeable in all
    generators used here); pass ``rng`` to shuffle first, e.g. when the
    input file is sorted by an attribute.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    if n_shards > dataset.n_users:
        raise ValueError(
            f"cannot split {dataset.n_users} users into {n_shards} shards")
    values = dataset.values
    if rng is not None:
        values = values[rng.permutation(dataset.n_users)]
    return [Dataset(part, dataset.domain_size, name=dataset.name,
                    attribute_names=list(dataset.attribute_names))
            for part in np.array_split(values, n_shards)]


@dataclass
class ParallelFitReport:
    """What :func:`parallel_fit` actually did (inspected by tests/demos)."""

    n_shards: int
    max_workers: int
    shard_sizes: list[int] = field(default_factory=list)
    #: ``pid/thread-name`` of the worker that collected each shard.
    worker_names: set[str] = field(default_factory=set)
    #: Per-shard pre-merge accumulator states (see ``shard_state()``), in
    #: shard order — exactly what was merged into the returned mechanism.
    shard_states: list[dict] = field(default_factory=list)

    @property
    def n_workers_used(self) -> int:
        """Number of distinct executor workers that fitted shards."""
        return len(self.worker_names)


def _fit_shard(mechanism: RangeQueryMechanism, shard: Dataset,
               total_users: int) -> tuple[RangeQueryMechanism, str]:
    mechanism.partial_fit(shard, total_users=total_users)
    worker = f"{os.getpid()}/{threading.current_thread().name}"
    return mechanism, worker


def parallel_fit(mechanism_factory: Callable[[int], RangeQueryMechanism],
                 dataset: Dataset, n_shards: int = 2,
                 max_workers: int | None = None, executor: str = "thread",
                 rng: np.random.Generator | None = None,
                 report: ParallelFitReport | None = None
                 ) -> RangeQueryMechanism:
    """Fit a shardable mechanism over ``n_shards`` parallel shards.

    Parameters
    ----------
    mechanism_factory:
        Callable mapping a shard index to a fresh un-fitted mechanism.
        Give every shard a distinct seed — :func:`shard_seed` is the
        convention used throughout — so their perturbation noise is
        independent.
    dataset:
        Full dataset; split into disjoint user shards internally.
    n_shards:
        Number of shards (and mechanism instances).
    max_workers:
        Concurrency cap for the executor; defaults to ``n_shards``.
    executor:
        ``"thread"`` (default) or ``"process"``.
    rng:
        Optional generator used to shuffle users before sharding.
    report:
        Optional :class:`ParallelFitReport` filled in with shard sizes,
        the ``pid/thread`` workers that executed them, and each shard's
        pre-merge accumulator state (so callers can persist exactly what
        was merged without re-collecting).

    Returns
    -------
    RangeQueryMechanism
        The finalised (query-answering) merged mechanism.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
    shards = shard_dataset(dataset, n_shards, rng=rng)
    mechanisms = [mechanism_factory(index) for index in range(n_shards)]
    for mechanism in mechanisms:
        if not mechanism.supports_sharding:
            raise ValueError(
                f"{type(mechanism).__name__} does not support sharded "
                "aggregation; use fit() instead")
    capture_states = report is not None
    if report is None:
        report = ParallelFitReport(n_shards=n_shards,
                                   max_workers=max_workers or n_shards)
    else:
        report.n_shards = n_shards
        report.max_workers = max_workers or n_shards
    report.shard_sizes = [shard.n_users for shard in shards]

    total = dataset.n_users
    if n_shards == 1:
        outcomes = [_fit_shard(mechanisms[0], shards[0], total)]
    else:
        pool_cls = (concurrent.futures.ThreadPoolExecutor if executor == "thread"
                    else concurrent.futures.ProcessPoolExecutor)
        with pool_cls(max_workers=max_workers or n_shards) as pool:
            outcomes = list(pool.map(_fit_shard, mechanisms, shards,
                                     [total] * n_shards))

    fitted = [mechanism for mechanism, _ in outcomes]
    report.worker_names = {worker for _, worker in outcomes}
    if capture_states:
        report.shard_states = [mechanism.shard_state() for mechanism in fitted]
    merged = fitted[0]
    for shard_mechanism in fitted[1:]:
        merged.merge(shard_mechanism)
    return merged.finalize()
