"""Uni: the uniform-guess benchmark (Section 5.1).

Uni never looks at the data: a λ-D range query is answered by the fraction
of the λ-D domain it covers (the answer an aggregator would give if every
attribute were uniformly and independently distributed).  It serves as the
"free" baseline — any LDP mechanism performing worse than Uni is adding
noise without adding information.
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..queries import RangeQuery
from ..core.base import RangeQueryMechanism


class Uniform(RangeQueryMechanism):
    """Uniform-guess baseline (no data collection at all)."""

    name = "Uni"

    def __init__(self, epsilon: float = 1.0, seed: int | None = None):
        # epsilon is accepted for interface compatibility; no reports are sent.
        super().__init__(epsilon, seed)

    def _fit(self, dataset: Dataset) -> None:
        # Only the domain metadata captured by the base class is needed.
        return None

    def _state_payload(self) -> dict:
        # Uni's whole fitted state is the (d, c) metadata the base
        # class serializes; the payload is empty on purpose.
        return {}

    def _restore_state_payload(self, payload: dict) -> None:
        return None

    def _answer(self, query: RangeQuery) -> float:
        assert self._domain_size is not None
        return query.volume(self._domain_size)

    def _answer_workload(self, queries: list[RangeQuery]) -> np.ndarray:
        """All volumes in one vectorised pass over the flattened predicates."""
        assert self._domain_size is not None
        widths = np.array([predicate.width for query in queries
                           for predicate in query.predicates], dtype=float)
        counts = np.array([query.dimension for query in queries])
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        return np.multiply.reduceat(widths / self._domain_size, offsets)
