"""Tests for the query-workload generators."""

import numpy as np
import pytest

from repro.datasets import generate_uniform
from repro.queries import WorkloadGenerator, answer_workload


@pytest.fixture
def generator():
    return WorkloadGenerator(5, 32, rng=np.random.default_rng(0))


def test_interval_width(generator):
    assert generator.interval_width(0.5) == 16
    assert generator.interval_width(1.0) == 32
    assert generator.interval_width(0.01) == 1


def test_random_query_shape(generator):
    query = generator.random_query(3, 0.5)
    assert query.dimension == 3
    for attribute in query.attributes:
        low, high = query.interval(attribute)
        assert high - low + 1 == 16
        assert 0 <= low <= high < 32


def test_random_workload_size_and_dimension(generator):
    workload = generator.random_workload(50, 2, 0.25)
    assert len(workload) == 50
    assert all(query.dimension == 2 for query in workload)


def test_random_workload_uses_distinct_attributes(generator):
    for query in generator.random_workload(30, 4, 0.5):
        assert len(set(query.attributes)) == 4


def test_invalid_parameters(generator):
    with pytest.raises(ValueError):
        generator.random_query(0, 0.5)
    with pytest.raises(ValueError):
        generator.random_query(6, 0.5)
    with pytest.raises(ValueError):
        generator.random_query(2, 0.0)
    with pytest.raises(ValueError):
        generator.random_workload(0, 2, 0.5)


def test_full_marginal_workload_counts():
    generator = WorkloadGenerator(3, 4, rng=np.random.default_rng(1))
    workload = generator.full_marginal_workload()
    # C(3,2) pairs x 4^2 cells.
    assert len(workload) == 3 * 16
    assert all(query.dimension == 2 for query in workload)
    assert all(query.volume(4) == pytest.approx(1 / 16) for query in workload)


def test_full_2d_range_workload_counts():
    generator = WorkloadGenerator(3, 8, rng=np.random.default_rng(1))
    workload = generator.full_2d_range_workload(0.5)
    # width 4 -> 5 starting positions per axis, per pair.
    assert len(workload) == 3 * 5 * 5
    widths = {query.interval(query.attributes[0])[1]
              - query.interval(query.attributes[0])[0] + 1 for query in workload}
    assert widths == {4}


def test_count_conditioned_workloads():
    rng = np.random.default_rng(2)
    dataset = generate_uniform(5_000, 4, 16, rng=rng)
    generator = WorkloadGenerator(4, 16, rng=np.random.default_rng(3))
    non_zero = generator.count_conditioned_workload(dataset, 10, 3, 0.7,
                                                    zero_count=False)
    answers = answer_workload(dataset, non_zero)
    assert len(non_zero) == 10
    assert (answers > 0).all()
    zero = generator.count_conditioned_workload(dataset, 5, 4, 0.1,
                                                zero_count=True,
                                                max_attempts=50)
    if zero:  # zero-count queries may be rare on uniform data
        assert (answer_workload(dataset, zero) == 0).all()


def test_reproducible_with_seed():
    first = WorkloadGenerator(4, 16, rng=np.random.default_rng(9)).random_workload(5, 2, 0.5)
    second = WorkloadGenerator(4, 16, rng=np.random.default_rng(9)).random_workload(5, 2, 0.5)
    assert first == second
