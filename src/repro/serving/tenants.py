"""Multi-tenant registry over one storage backend.

A :class:`TenantManager` turns a single serving process into a host
for many independent estimators: each *tenant* is one named
(mechanism, epsilon, schema) :class:`~repro.serving.QueryService`
with its own snapshot lineage, ingest quota and locks, all persisted
through one :class:`~repro.storage.StorageBackend`.

Concurrency
-----------
Each tenant runtime owns a re-entrant lock that serializes its
*durability-coupled* operations — write-ahead-log append + in-memory
apply, and state capture + log-position record — so the recorded WAL
position can never drift from what a snapshot actually captured.
Queries and re-finalizes go straight to the tenant's
:class:`QueryService`, whose internal locks already let one tenant's
re-finalize run while its own queries keep answering — and nothing a
tenant does ever holds another tenant's lock, so one tenant's
re-finalize never blocks another's queries
(``tests/test_multi_tenant.py`` pins this).  The registry lock guards
only the name → runtime map.

Durability
----------
``ingest`` appends the raw batch to the backend's write-ahead ingest
log *before* applying it in memory.  ``save_snapshot`` stores the
service document together with the last appended log sequence and
prunes the entries the snapshot captured.  Recovery (automatic at
construction) restores each tenant from its newest snapshot — or a
fresh service from the tenant's stored config — and replays the
pending log tail in order.  Because both ingest paths are
deterministic in (restored state, replayed rows), a recovered
tenant's answers are bitwise identical to an uninterrupted run
(``tests/test_crash_recovery.py`` pins this for TDG, HDG and LHIO).

Resilience
----------
Storage calls on the ingest path run under the manager's
:class:`~repro.resilience.RetryPolicy` (transient errors — locked
database, ``EINTR`` I/O — retried with seeded exponential backoff)
and, when ``op_deadline`` is set, a per-operation
:class:`~repro.resilience.Deadline`.  Persistent write-ahead-log
failure trips the tenant's :class:`~repro.resilience.CircuitBreaker`:
the tenant enters *degraded* mode — queries keep answering from the
last finalized estimator while ingest raises
:class:`~repro.resilience.DegradedServiceError` (503 +
``Retry-After`` on the wire) — and the breaker's half-open state
gates one recovery probe per reset period.  Tenants whose recovery
fails at construction are *quarantined* (with the failure reason)
instead of refusing to start the whole server; ``retry_recovery``
re-attempts them.  ``tests/test_resilience.py`` is the chaos suite
pinning all of this on both backends.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..resilience import (CircuitBreaker, Deadline, DegradedServiceError,
                          RetryPolicy)
from ..storage.base import (DEFAULT_TENANT, StorageBackend,
                            TenantExistsError, TenantRecord,
                            UnknownTenantError)
from .service import QueryService, ServiceError

logger = logging.getLogger("repro.serving")

#: Tenant-config keys forwarded to the QueryService constructor.
_SERVICE_CONFIG_KEYS = ("mechanism", "epsilon", "seed", "refinalize_every",
                        "total_users", "domain_size", "ingest_mode",
                        "ingest_workers", "plan_cache_entries",
                        "answer_cache_entries")


class QuotaExceededError(ServiceError):
    """An ingest batch would push a tenant past its report quota."""


@dataclass
class _TenantRuntime:
    """In-memory state of one hosted tenant."""

    record: TenantRecord
    service: QueryService
    #: Gates the tenant's degraded-mode recovery probes.
    breaker: CircuitBreaker
    #: Serializes WAL-append+apply and capture+record (see module doc).
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: Last write-ahead-log sequence applied to the in-memory service.
    last_seq: int = 0

    @property
    def degraded(self) -> bool:
        """Whether ingest is currently gated by the breaker."""
        return self.breaker.state != "closed"


def service_from_config(config: dict) -> QueryService:
    """Build the tenant's :class:`QueryService` from its stored config."""
    kwargs = {key: config[key] for key in _SERVICE_CONFIG_KEYS
              if config.get(key) is not None}
    kwargs.setdefault("mechanism", "HDG")
    kwargs.setdefault("epsilon", 1.0)
    mechanism = kwargs.pop("mechanism")
    epsilon = kwargs.pop("epsilon")
    extra = dict(config.get("mechanism_kwargs") or {})
    return QueryService(mechanism, float(epsilon), **kwargs, **extra)


class TenantManager:
    """Hosts one :class:`QueryService` per tenant over a storage backend.

    Parameters
    ----------
    backend:
        The durable home of tenant configs, snapshots and the
        write-ahead ingest log.  Tenants already present are recovered
        (snapshot restore + log replay) at construction.
    default_config:
        When given and no ``"default"`` tenant exists yet, one is
        created with this config — the tenant every request without an
        explicit tenant name routes to, which is what keeps the
        single-tenant wire format working.
    retry_policy:
        Retry schedule for storage calls on the ingest/snapshot path
        (default: 3 attempts, exponential backoff with seeded jitter).
        Pass :meth:`RetryPolicy.no_retry` to fail fast.
    breaker_threshold / breaker_reset:
        Consecutive write-ahead-log failures that trip a tenant's
        circuit breaker, and the open-state duration before one
        recovery probe is allowed through.
    op_deadline:
        Wall-clock budget in seconds for one storage operation
        including its retries (``None`` = unbounded).
    clock:
        Time source for breakers and deadlines; injectable for tests.
    """

    def __init__(self, backend: StorageBackend,
                 default_config: dict | None = None, *,
                 retry_policy: RetryPolicy | None = None,
                 breaker_threshold: int = 3,
                 breaker_reset: float = 30.0,
                 op_deadline: float | None = None,
                 clock=time.monotonic):
        self.backend = backend
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.op_deadline = op_deadline
        self._clock = clock
        self._registry_lock = threading.RLock()
        self._runtimes: dict[str, _TenantRuntime] = {}
        #: Tenants whose recovery failed: name -> failure document.
        self._quarantined: dict[str, dict] = {}
        for record in backend.list_tenants():
            self._try_recover(record)
        if default_config is not None and not (
                DEFAULT_TENANT in self._runtimes
                or DEFAULT_TENANT in self._quarantined):
            self.create_tenant(DEFAULT_TENANT, default_config)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(failure_threshold=self.breaker_threshold,
                              reset_timeout=self.breaker_reset,
                              clock=self._clock)

    def _op_deadline(self) -> Deadline | None:
        if self.op_deadline is None:
            return None
        return Deadline.after(self.op_deadline, clock=self._clock)

    def _try_recover(self, record: TenantRecord) -> bool:
        """Recover one tenant, quarantining it on failure.

        A tenant whose snapshot is unreadable or whose log replay
        raises must not take the whole server down with it: the
        failure is recorded (name, error, reason) and every request
        for that tenant answers 503 until ``retry_recovery`` succeeds
        or an operator deletes the tenant.
        """
        try:
            self._runtimes[record.name] = self._recover(record)
        except Exception as error:
            logger.error("quarantining tenant %r: recovery failed: %s: %s",
                         record.name, type(error).__name__, error)
            self._quarantined[record.name] = {
                "error": f"{type(error).__name__}: {error}",
                "reason": "recovery failed",
            }
            return False
        return True

    def _recover(self, record: TenantRecord) -> _TenantRuntime:
        """Newest snapshot (if any) + write-ahead-log tail replay."""
        try:
            document, snapshot = self.backend.load_snapshot(record.name)
            service = QueryService.from_state_dict(
                document, seed=record.config.get("seed"))
            replay_after = snapshot.wal_seq
        except FileNotFoundError:
            service = service_from_config(record.config)
            replay_after = 0
        last_seq = max(replay_after,
                       self.backend.last_ingest_seq(record.name))
        for entry in self.backend.pending_ingest(record.name,
                                                 after_seq=replay_after):
            service.ingest(entry.rows, entry.domain_size)
            last_seq = max(last_seq, entry.seq)
        return _TenantRuntime(record=record, service=service,
                              breaker=self._new_breaker(),
                              last_seq=last_seq)

    def retry_recovery(self, name: str) -> bool:
        """Re-attempt a quarantined tenant's recovery; True on success."""
        with self._registry_lock:
            if name not in self._quarantined:
                raise UnknownTenantError(
                    f"tenant {name!r} is not quarantined")
            record = self.backend.get_tenant(name)
            if self._try_recover(record):
                del self._quarantined[name]
                return True
            return False

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def _runtime(self, tenant: str) -> _TenantRuntime:
        # Fast path: a plain dict read is atomic under the GIL, so the
        # (overwhelmingly common) hit on a hosted tenant resolves
        # lock-free — query threads never contend on the registry lock.
        runtime = self._runtimes.get(tenant)
        if runtime is not None:
            return runtime
        with self._registry_lock:
            runtime = self._runtimes.get(tenant)
            quarantined = self._quarantined.get(tenant)
        if runtime is None:
            if quarantined is not None:
                raise DegradedServiceError(
                    f"tenant {tenant!r} is quarantined "
                    f"({quarantined['error']}); retry recovery or delete "
                    "the tenant", retry_after=self.breaker_reset,
                    tenant=tenant)
            raise UnknownTenantError(f"unknown tenant {tenant!r}")
        return runtime

    def service(self, tenant: str = DEFAULT_TENANT) -> QueryService:
        """The named tenant's live :class:`QueryService`."""
        return self._runtime(tenant).service

    def tenant_names(self) -> list[str]:
        """Hosted tenant names, sorted."""
        with self._registry_lock:
            return sorted(self._runtimes)

    def has_tenant(self, tenant: str) -> bool:
        """Whether the named tenant is hosted."""
        with self._registry_lock:
            return tenant in self._runtimes

    def create_tenant(self, name: str, config: dict) -> TenantRecord:
        """Validate, persist and start a new tenant.

        The service is constructed *before* the record is persisted so
        a bad config (unknown mechanism, bad epsilon) never leaves a
        half-created tenant in the backend.
        """
        config = dict(config)
        service = service_from_config(config)  # validates the config
        with self._registry_lock:
            if name in self._runtimes or name in self._quarantined:
                raise TenantExistsError(f"tenant {name!r} already exists")
            record = self.backend.create_tenant(name, config)
            self._runtimes[name] = _TenantRuntime(
                record=record, service=service,
                breaker=self._new_breaker())
        return record

    def delete_tenant(self, name: str) -> None:
        """Drop a tenant: its service, snapshots and log entries.

        Deleting a *quarantined* tenant is allowed — it is the
        operator's way out when recovery cannot be repaired.
        """
        runtime = None
        with self._registry_lock:
            if name in self._quarantined:
                del self._quarantined[name]
            elif name in self._runtimes:
                runtime = self._runtimes.pop(name)
            else:
                raise UnknownTenantError(f"unknown tenant {name!r}")
        if runtime is not None:
            runtime.service.close()
        self.backend.delete_tenant(name)

    def quarantined_tenants(self) -> dict[str, dict]:
        """Quarantined tenant names with their failure documents."""
        with self._registry_lock:
            return {name: dict(info)
                    for name, info in sorted(self._quarantined.items())}

    def degraded_tenants(self) -> list[str]:
        """Live tenants whose breaker is currently open or half-open."""
        with self._registry_lock:
            runtimes = dict(self._runtimes)
        return sorted(name for name, runtime in runtimes.items()
                      if runtime.degraded)

    def describe_tenant(self, name: str) -> dict:
        """Admin document for one tenant (``GET /tenants/<name>``)."""
        with self._registry_lock:
            quarantined = self._quarantined.get(name)
        if quarantined is not None:
            record = self.backend.get_tenant(name)
            return {
                "name": name,
                "created_at": record.created_at,
                "config": dict(record.config),
                "state": "quarantined",
                "quarantine": dict(quarantined),
            }
        runtime = self._runtime(name)
        config = dict(runtime.record.config)
        quota = config.get("quota")
        return {
            "name": name,
            "created_at": runtime.record.created_at,
            "config": config,
            "state": "degraded" if runtime.degraded else "serving",
            "status": runtime.service.status(),
            "breaker": runtime.breaker.status(),
            "quota": quota,
            "quota_remaining": (None if quota is None else
                                max(0, int(quota)
                                    - runtime.service.reports_ingested)),
            "pending_ingest_log": self.backend.ingest_log_depth(name),
            "snapshots": [record.version
                          for record in self.backend.list_snapshots(name)],
        }

    def list_tenants(self) -> list[dict]:
        """Summary rows for ``GET /tenants`` (quarantined ones included)."""
        rows = []
        for name in self.tenant_names():
            runtime = self._runtime(name)
            status = runtime.service.status()
            rows.append({
                "name": name,
                "state": "degraded" if runtime.degraded else "serving",
                "mechanism": status["mechanism"],
                "epsilon": status["epsilon"],
                "mode": status["mode"],
                "ready": status["ready"],
                "reports_ingested": status["reports_ingested"],
                "quota": runtime.record.config.get("quota"),
                "pending_ingest_log": self.backend.ingest_log_depth(name),
            })
        for name, info in self.quarantined_tenants().items():
            rows.append({"name": name, "state": "quarantined",
                         "quarantine": info})
        rows.sort(key=lambda row: row["name"])
        return rows

    # ------------------------------------------------------------------
    # Tenant-routed serving operations
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, rows, domain_size: int | None = None) -> dict:
        """Quota check → WAL append → in-memory apply, atomically.

        ``rows`` must be a JSON-shaped nested list (or array) of
        integer rows; it is validated *before* the write-ahead append
        so a malformed batch can never poison the log.
        """
        runtime = self._runtime(tenant)
        batch = np.asarray(rows, dtype=np.int64)
        if batch.ndim != 2:
            raise ValueError(f"rows must be a 2-D batch of user records; "
                             f"got shape {tuple(batch.shape)}")
        with runtime.lock:
            quota = runtime.record.config.get("quota")
            if quota is not None and (runtime.service.reports_ingested
                                      + len(batch) > int(quota)):
                raise QuotaExceededError(
                    f"tenant {tenant!r} quota exceeded: "
                    f"{runtime.service.reports_ingested} ingested + "
                    f"{len(batch)} in batch > quota {int(quota)}")
            if not runtime.breaker.allow():
                raise DegradedServiceError(
                    f"tenant {tenant!r} is degraded: write-ahead log "
                    "unavailable; queries still answer from the last "
                    "finalized estimator",
                    retry_after=runtime.breaker.retry_after() or 1.0,
                    tenant=tenant)
            payload = batch.tolist()
            try:
                seq = self.retry_policy.call(
                    lambda: self.backend.append_ingest(tenant, payload,
                                                       domain_size),
                    deadline=self._op_deadline(),
                    operation=f"WAL append for tenant {tenant!r}")
            except Exception as error:
                runtime.breaker.record_failure()
                logger.warning(
                    "WAL append failed for tenant %r (breaker %s): %s: %s",
                    tenant, runtime.breaker.state,
                    type(error).__name__, error)
                raise DegradedServiceError(
                    f"tenant {tenant!r}: write-ahead append failed "
                    f"({type(error).__name__}: {error}); batch not "
                    "ingested",
                    retry_after=runtime.breaker.retry_after() or 1.0,
                    tenant=tenant) from error
            runtime.breaker.record_success()
            try:
                receipt = runtime.service.ingest(batch, domain_size)
            except BaseException:
                # The apply failed after the durable append: drop the
                # entry so recovery does not replay a batch the live
                # service never absorbed.
                self.backend.discard_ingest(tenant, seq)
                raise
            runtime.last_seq = seq
        receipt["tenant"] = tenant
        receipt["wal_seq"] = seq
        return receipt

    def refinalize(self, tenant: str) -> dict:
        """Re-finalize one tenant (its own locks only)."""
        status = self._runtime(tenant).service.refinalize()
        status["tenant"] = tenant
        return status

    def save_snapshot(self, tenant: str):
        """Capture the tenant's state and prune the captured log tail."""
        runtime = self._runtime(tenant)
        with runtime.lock:
            document = runtime.service.state_dict()
            wal_seq = runtime.last_seq
        record = self.retry_policy.call(
            lambda: self.backend.save_snapshot(tenant, document,
                                               wal_seq=wal_seq),
            deadline=self._op_deadline(),
            operation=f"snapshot save for tenant {tenant!r}")
        self.backend.prune_ingest(tenant, record.wal_seq)
        keep_last = runtime.record.config.get("keep_last")
        if keep_last is not None:
            self.backend.prune_snapshots(tenant, int(keep_last))
        return record

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def storage_status(self) -> dict:
        """The ``/healthz`` storage section."""
        description = self.backend.describe()
        description["tenants"] = len(self.tenant_names())
        return description

    def resilience_status(self) -> dict:
        """The ``/healthz`` resilience section."""
        with self._registry_lock:
            runtimes = dict(self._runtimes)
        return {
            "retry_policy": self.retry_policy.describe(),
            "op_deadline": self.op_deadline,
            "degraded_tenants": self.degraded_tenants(),
            "quarantined_tenants": self.quarantined_tenants(),
            "breakers": {name: runtime.breaker.status()
                         for name, runtime in sorted(runtimes.items())},
        }

    def readiness(self) -> tuple[bool, dict]:
        """The ``/readyz`` verdict: ready only when no tenant is
        quarantined and every breaker is closed."""
        degraded = self.degraded_tenants()
        quarantined = sorted(self.quarantined_tenants())
        ready = not degraded and not quarantined
        return ready, {
            "ready": ready,
            "degraded_tenants": degraded,
            "quarantined_tenants": quarantined,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every tenant's service (distributed ingest tiers).

        Tenants with in-process ingest are unaffected; the manager
        itself stays usable for queries, but closed tenants reject
        further ingest until the process restarts and recovers them.
        """
        with self._registry_lock:
            runtimes = list(self._runtimes.values())
        for runtime in runtimes:
            runtime.service.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TenantManager({self.backend.name}: "
                f"{', '.join(self.tenant_names()) or 'no tenants'})")
