"""Property tests: vectorised collection/answering paths == legacy loops.

Every vectorised path introduced for the fit-throughput work keeps its
original loop implementation as an equivalence reference; these tests
pin the two to each other — bit-for-bit where the paths consume the
same RNG draws, to 1e-9 where only the floating-point summation order
differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HIO, LHIO
from repro.core import HDG
from repro.core import phase2 as phase2_module
from repro.datasets import make_dataset
from repro.frequency_oracles import GeneralizedRandomizedResponse, SquareWave
from repro.postprocess import (GridView, enforce_attribute_consistency,
                               enforce_attribute_consistency_loop)
from repro.queries import WorkloadGenerator


def mixed_workload(n_attributes, domain_size, n_queries=30, seed=11):
    generator = WorkloadGenerator(n_attributes, domain_size,
                                  rng=np.random.default_rng(seed))
    queries = []
    for dimension in (1, 2, 3):
        if dimension <= n_attributes:
            queries.extend(generator.random_workload(n_queries // 3,
                                                     dimension, 0.5))
    return queries


# ----------------------------------------------------------------------
# Square Wave
# ----------------------------------------------------------------------
@pytest.mark.parametrize("epsilon,domain_size", [(0.5, 16), (1.0, 64),
                                                 (2.0, 37)])
def test_sw_transition_matrix_vectorized_equals_loop(epsilon, domain_size):
    oracle = SquareWave(epsilon, domain_size)
    vectorized = oracle._build_transition_matrix()
    loop = oracle._build_transition_matrix_loop()
    np.testing.assert_array_equal(vectorized, loop)
    np.testing.assert_allclose(vectorized.sum(axis=0), 1.0, atol=1e-9)


def test_sw_perturb_vectorized_equals_loop_bitwise():
    values = np.random.default_rng(0).integers(0, 32, size=2_000)
    vectorized = SquareWave(1.0, 32, rng=np.random.default_rng(42))
    loop = SquareWave(1.0, 32, rng=np.random.default_rng(42))
    np.testing.assert_array_equal(vectorized.perturb(values),
                                  loop.perturb_loop(values))


# ----------------------------------------------------------------------
# GRR
# ----------------------------------------------------------------------
def test_grr_perturb_vectorized_equals_loop_bitwise():
    values = np.random.default_rng(1).integers(0, 16, size=2_000)
    vectorized = GeneralizedRandomizedResponse(1.0, 16,
                                               rng=np.random.default_rng(9))
    loop = GeneralizedRandomizedResponse(1.0, 16,
                                         rng=np.random.default_rng(9))
    np.testing.assert_array_equal(vectorized.perturb(values),
                                  loop.perturb_loop(values))


# ----------------------------------------------------------------------
# HIO: vectorised combination gathers
# ----------------------------------------------------------------------
def test_hio_vectorized_answers_equal_legacy_loop():
    dataset = make_dataset("normal", 3_000, 3, 16,
                           rng=np.random.default_rng(5))
    queries = mixed_workload(3, 16)
    legacy = HIO(1.0, seed=7).fit(dataset)
    legacy.use_legacy_answering = True
    engine = HIO(1.0, seed=7).fit(dataset)
    np.testing.assert_allclose(engine.answer_workload(queries),
                               legacy.answer_workload(queries), atol=1e-9)


def test_hio_vectorized_with_lazy_levels_falls_back_consistently():
    dataset = make_dataset("normal", 2_000, 3, 16,
                           rng=np.random.default_rng(6))
    queries = mixed_workload(3, 16, n_queries=18, seed=13)
    legacy = HIO(1.0, seed=3, materialize_limit=16).fit(dataset)
    legacy.use_legacy_answering = True
    engine = HIO(1.0, seed=3, materialize_limit=16).fit(dataset)
    np.testing.assert_allclose(engine.answer_workload(queries),
                               legacy.answer_workload(queries), atol=1e-9)


# ----------------------------------------------------------------------
# LHIO: grouped cross-query gathers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("materialize_limit", [1 << 16, 4])
def test_lhio_batched_answers_equal_legacy_loop(materialize_limit):
    dataset = make_dataset("normal", 3_000, 4, 16,
                           rng=np.random.default_rng(8))
    queries = mixed_workload(4, 16)
    legacy = LHIO(1.0, seed=21, materialize_limit=materialize_limit).fit(dataset)
    legacy.use_legacy_answering = True
    engine = LHIO(1.0, seed=21, materialize_limit=materialize_limit).fit(dataset)
    np.testing.assert_allclose(engine.answer_workload(queries),
                               legacy.answer_workload(queries), atol=1e-9)


def test_lhio_four_dimensional_queries_through_batched_gathers():
    dataset = make_dataset("normal", 3_000, 5, 16,
                           rng=np.random.default_rng(14))
    generator = WorkloadGenerator(5, 16, rng=np.random.default_rng(15))
    queries = generator.random_workload(10, 4, 0.5)
    legacy = LHIO(1.0, seed=2).fit(dataset)
    legacy.use_legacy_answering = True
    engine = LHIO(1.0, seed=2).fit(dataset)
    np.testing.assert_allclose(engine.answer_workload(queries),
                               legacy.answer_workload(queries), atol=1e-9)


# ----------------------------------------------------------------------
# Phase 2: stacked consistency views
# ----------------------------------------------------------------------
def build_views(arrays):
    views = []
    for array, axis, cells_per_bucket in arrays:
        views.append(GridView(frequencies=array, axis=axis,
                              cells_per_bucket=cells_per_bucket))
    return views


def test_consistency_stacked_equals_loop_on_mixed_views():
    rng = np.random.default_rng(3)
    n_buckets = 4
    one_d = rng.normal(size=8)
    two_d_a = rng.normal(size=(4, 4))
    two_d_b = rng.normal(size=(4, 4))
    loop_arrays = [one_d.copy(), two_d_a.copy(), two_d_b.copy()]
    stacked_arrays = [one_d.copy(), two_d_a.copy(), two_d_b.copy()]
    specs = [(0, 2), (0, 1), (1, 1)]
    loop_views = build_views([(array, axis, cells)
                              for array, (axis, cells)
                              in zip(loop_arrays, specs)])
    stacked_views = build_views([(array, axis, cells)
                                 for array, (axis, cells)
                                 in zip(stacked_arrays, specs)])
    consensus_loop = enforce_attribute_consistency_loop(loop_views, n_buckets)
    consensus_stacked = enforce_attribute_consistency(stacked_views, n_buckets)
    np.testing.assert_allclose(consensus_stacked, consensus_loop, atol=1e-9)
    for loop_array, stacked_array in zip(loop_arrays, stacked_arrays):
        np.testing.assert_allclose(stacked_array, loop_array, atol=1e-9)


def test_consistency_stacked_agrees_after_adjustment():
    rng = np.random.default_rng(4)
    views = build_views([(rng.normal(size=(4, 4)), 0, 1),
                         (rng.normal(size=(4, 4)), 1, 1),
                         (rng.normal(size=12).reshape(12), 0, 3)])
    consensus = enforce_attribute_consistency(views, 4)
    for view in views:
        np.testing.assert_allclose(view.bucket_totals(4), consensus,
                                   atol=1e-9)


def test_hdg_phase2_stacked_equals_loop_end_to_end(monkeypatch):
    dataset = make_dataset("normal", 5_000, 3, 16,
                           rng=np.random.default_rng(10))
    stacked = HDG(1.0, seed=17).fit(dataset)

    monkeypatch.setattr(phase2_module, "enforce_attribute_consistency",
                        enforce_attribute_consistency_loop)
    loop = HDG(1.0, seed=17).fit(dataset)

    for attribute in stacked.grids_1d:
        np.testing.assert_allclose(stacked.grids_1d[attribute].frequencies,
                                   loop.grids_1d[attribute].frequencies,
                                   atol=1e-9)
    for pair in stacked.grids_2d:
        np.testing.assert_allclose(stacked.grids_2d[pair].frequencies,
                                   loop.grids_2d[pair].frequencies,
                                   atol=1e-9)
    queries = mixed_workload(3, 16, n_queries=15, seed=19)
    np.testing.assert_allclose(stacked.answer_workload(queries),
                               loop.answer_workload(queries), atol=1e-9)
