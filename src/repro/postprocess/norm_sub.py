"""Norm-Sub non-negativity post-processing.

Phase 2 of TDG/HDG (Section 4.2) removes negative noisy frequencies with
Norm-Sub (Wang et al., NDSS 2020): repeatedly set negative estimates to
zero and subtract the average surplus from the positive estimates until
every estimate is non-negative and the vector sums to the target total
(1 for a full distribution).
"""

from __future__ import annotations

import numpy as np


def norm_sub(estimates: np.ndarray, total: float = 1.0,
             max_iterations: int = 1000, tolerance: float = 1e-12) -> np.ndarray:
    """Project noisy frequency estimates onto the simplex of sum ``total``.

    Parameters
    ----------
    estimates:
        Array of noisy frequencies of any shape (flattened internally).
    total:
        Target sum after projection (1.0 for a probability distribution).
    max_iterations:
        Safety cap on the fix-up loop; the procedure converges in at most
        ``len(estimates)`` iterations because each round zeroes at least
        one more entry.
    tolerance:
        Values within ``tolerance`` of zero are treated as zero.

    Returns
    -------
    numpy.ndarray
        Array of the same shape, entry-wise non-negative, summing to
        ``total`` (when ``total > 0``).
    """
    values = np.asarray(estimates, dtype=float)
    original_shape = values.shape
    flat = values.ravel().copy()
    if total < 0:
        raise ValueError("total must be non-negative")
    if flat.size == 0:
        return flat.reshape(original_shape)

    for _ in range(max_iterations):
        flat[flat < 0.0] = 0.0
        positive = flat > tolerance
        n_positive = int(positive.sum())
        if n_positive == 0:
            # Everything was clipped away: fall back to a uniform split.
            flat[:] = total / flat.size
            break
        deficit = flat[positive].sum() - total
        if abs(deficit) <= tolerance:
            break
        flat[positive] -= deficit / n_positive
        if (flat >= -tolerance).all():
            flat[flat < 0.0] = 0.0
            break
    return flat.reshape(original_shape)


def clip_to_zero(estimates: np.ndarray) -> np.ndarray:
    """Simple alternative post-processor: clip negatives without rescaling.

    Provided for ablations; Norm-Sub is what the paper (and TDG/HDG) use.
    """
    values = np.asarray(estimates, dtype=float).copy()
    values[values < 0.0] = 0.0
    return values
