"""Statistical agreement between OLH's faithful and fast execution modes.

The fast mode replaces the per-user hashing protocol by an aggregate
binomial simulation; the two must agree in mean and, up to the ignored
hash-collision correlation, in spread.
"""

import numpy as np
import pytest

from repro.frequency_oracles import OptimizedLocalHash


@pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
def test_modes_agree_in_expectation(epsilon):
    rng = np.random.default_rng(0)
    values = rng.choice(6, size=3_000, p=[0.35, 0.25, 0.15, 0.1, 0.1, 0.05])
    true = np.bincount(values, minlength=6) / values.size

    def mean_estimate(mode: str) -> np.ndarray:
        runs = []
        for seed in range(8):
            oracle = OptimizedLocalHash(epsilon, 6, rng=np.random.default_rng(seed),
                                        mode=mode)
            runs.append(oracle.estimate_frequencies(values))
        return np.mean(runs, axis=0)

    fast_mean = mean_estimate("fast")
    user_mean = mean_estimate("user")
    # Both modes are unbiased, so their averaged estimates should agree with
    # the truth and with each other within a few standard errors
    # (std of an 8-run mean is ~0.026 per value at epsilon = 0.5).
    assert np.abs(fast_mean - true).max() < 0.1
    assert np.abs(user_mean - true).max() < 0.1
    assert np.abs(fast_mean - user_mean).max() < 0.12


def test_modes_have_comparable_spread():
    epsilon = 1.0
    rng = np.random.default_rng(3)
    values = rng.integers(0, 4, size=4_000)

    def spread(mode: str) -> float:
        estimates = []
        for seed in range(12):
            oracle = OptimizedLocalHash(epsilon, 4, rng=np.random.default_rng(seed),
                                        mode=mode)
            estimates.append(oracle.estimate_frequencies(values)[0])
        return float(np.std(estimates))

    fast_spread = spread("fast")
    user_spread = spread("user")
    # Same order of magnitude (factor-of-two agreement is plenty for 12 runs).
    assert 0.4 < fast_spread / user_spread < 2.5
