"""Tests for the interval hierarchy used by HIO/LHIO."""

import pytest

from repro.baselines import IntervalHierarchy, effective_branching


def test_effective_branching_powers_of_four():
    assert effective_branching(64, 4) == 4
    assert effective_branching(256, 4) == 4
    assert effective_branching(16, 4) == 4


def test_effective_branching_falls_back_to_two():
    assert effective_branching(32, 4) == 2
    assert effective_branching(128, 4) == 2


def test_effective_branching_invalid_domain():
    with pytest.raises(ValueError):
        effective_branching(1, 4)


def test_hierarchy_levels_and_widths():
    hierarchy = IntervalHierarchy(64, branching=4)
    assert hierarchy.branching == 4
    assert hierarchy.height == 3
    assert hierarchy.n_levels == 4
    assert hierarchy.nodes_at_level(0) == 1
    assert hierarchy.nodes_at_level(3) == 64
    assert hierarchy.node_width(0) == 64
    assert hierarchy.node_width(3) == 1


def test_node_bounds():
    hierarchy = IntervalHierarchy(16, branching=4)
    root = hierarchy.node(0, 0)
    assert (root.low, root.high) == (0, 15)
    node = hierarchy.node(1, 2)
    assert (node.low, node.high) == (8, 11)
    with pytest.raises(ValueError):
        hierarchy.node(1, 4)
    with pytest.raises(ValueError):
        hierarchy.node(5, 0)


def test_node_containing():
    hierarchy = IntervalHierarchy(16, branching=2)
    assert hierarchy.node_containing(0, 5) == 0
    assert hierarchy.node_containing(1, 5) == 0
    assert hierarchy.node_containing(4, 5) == 5
    with pytest.raises(ValueError):
        hierarchy.node_containing(1, 16)


def test_decompose_full_domain_is_root():
    hierarchy = IntervalHierarchy(64, branching=4)
    nodes = hierarchy.decompose(0, 63)
    assert len(nodes) == 1
    assert nodes[0].level == 0


def test_decompose_single_value_is_leaf():
    hierarchy = IntervalHierarchy(64, branching=4)
    nodes = hierarchy.decompose(17, 17)
    assert len(nodes) == 1
    assert nodes[0].level == hierarchy.height
    assert nodes[0].low == nodes[0].high == 17


def test_decompose_covers_interval_exactly():
    hierarchy = IntervalHierarchy(64, branching=4)
    for low, high in [(0, 31), (5, 40), (13, 13), (1, 62), (16, 47)]:
        nodes = hierarchy.decompose(low, high)
        covered = sorted(value for node in nodes
                         for value in range(node.low, node.high + 1))
        assert covered == list(range(low, high + 1))


def test_decompose_nodes_are_disjoint():
    hierarchy = IntervalHierarchy(64, branching=2)
    nodes = hierarchy.decompose(3, 57)
    covered = [value for node in nodes for value in range(node.low, node.high + 1)]
    assert len(covered) == len(set(covered))


def test_decompose_uses_few_nodes():
    hierarchy = IntervalHierarchy(64, branching=4)
    # A canonical cover uses at most ~2*(b-1)*h nodes.
    bound = 2 * (hierarchy.branching - 1) * hierarchy.height + 2
    for low, high in [(0, 31), (5, 40), (1, 62), (10, 53)]:
        assert len(hierarchy.decompose(low, high)) <= bound


def test_decompose_aligned_interval_single_node():
    hierarchy = IntervalHierarchy(64, branching=4)
    nodes = hierarchy.decompose(16, 31)
    assert len(nodes) == 1
    assert nodes[0].level == 1


def test_decompose_invalid_interval():
    hierarchy = IntervalHierarchy(16, branching=2)
    with pytest.raises(ValueError):
        hierarchy.decompose(4, 2)
    with pytest.raises(ValueError):
        hierarchy.decompose(0, 16)
