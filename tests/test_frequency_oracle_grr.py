"""Tests for Generalized Randomized Response."""

import math

import numpy as np
import pytest

from repro.frequency_oracles import GeneralizedRandomizedResponse, grr_variance


@pytest.fixture
def values(rng):
    # A skewed distribution over a small domain.
    return rng.choice(8, size=50_000, p=[0.4, 0.2, 0.1, 0.1, 0.08, 0.06, 0.04, 0.02])


def test_perturbation_probabilities():
    oracle = GeneralizedRandomizedResponse(1.0, 10, rng=np.random.default_rng(0))
    e = math.exp(1.0)
    assert oracle.p == pytest.approx(e / (e + 9))
    assert oracle.q == pytest.approx(1 / (e + 9))
    # The ratio p/q must equal e^eps (the LDP guarantee).
    assert oracle.p / oracle.q == pytest.approx(e)


def test_perturb_keeps_value_with_probability_p(rng):
    oracle = GeneralizedRandomizedResponse(2.0, 6, rng=rng)
    values = np.full(40_000, 3)
    reports = oracle.perturb(values)
    kept_fraction = float((reports == 3).mean())
    assert kept_fraction == pytest.approx(oracle.p, abs=0.02)


def test_perturb_output_stays_in_domain(rng):
    oracle = GeneralizedRandomizedResponse(0.5, 12, rng=rng)
    reports = oracle.perturb(rng.integers(0, 12, size=5_000))
    assert reports.min() >= 0
    assert reports.max() < 12


def test_estimates_are_unbiased(values, rng):
    oracle = GeneralizedRandomizedResponse(1.5, 8, rng=rng)
    estimates = oracle.estimate_frequencies(values)
    true = np.bincount(values, minlength=8) / values.size
    assert np.abs(estimates - true).max() < 0.03


def test_estimates_sum_to_one(values, rng):
    oracle = GeneralizedRandomizedResponse(1.0, 8, rng=rng)
    estimates = oracle.estimate_frequencies(values)
    assert estimates.sum() == pytest.approx(1.0, abs=1e-9)


def test_higher_epsilon_reduces_error(values):
    errors = []
    true = np.bincount(values, minlength=8) / values.size
    for epsilon in (0.2, 2.0):
        maes = []
        for seed in range(5):
            oracle = GeneralizedRandomizedResponse(epsilon, 8,
                                                   rng=np.random.default_rng(seed))
            maes.append(np.abs(oracle.estimate_frequencies(values) - true).mean())
        errors.append(np.mean(maes))
    assert errors[1] < errors[0]


def test_variance_formula_matches_equation_2():
    assert grr_variance(1.0, 16, 1000) == pytest.approx(
        (16 - 2 + math.e) / ((math.e - 1) ** 2 * 1000))
    oracle = GeneralizedRandomizedResponse(1.0, 16)
    assert oracle.variance(1000) == pytest.approx(grr_variance(1.0, 16, 1000))


def test_empirical_variance_close_to_theory():
    epsilon, c, n = 1.0, 5, 20_000
    rng = np.random.default_rng(0)
    values = rng.integers(0, c, size=n)
    true = np.bincount(values, minlength=c) / n
    estimates = []
    for seed in range(30):
        oracle = GeneralizedRandomizedResponse(epsilon, c,
                                               rng=np.random.default_rng(seed))
        estimates.append(oracle.estimate_frequencies(values)[0])
    empirical = np.var(estimates)
    theoretical = grr_variance(epsilon, c, n)
    assert empirical == pytest.approx(theoretical, rel=0.6)


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        GeneralizedRandomizedResponse(0.0, 8)
    with pytest.raises(ValueError):
        GeneralizedRandomizedResponse(1.0, 1)
    oracle = GeneralizedRandomizedResponse(1.0, 4)
    with pytest.raises(ValueError):
        oracle.perturb(np.array([4]))
    with pytest.raises(ValueError):
        oracle.perturb(np.array([[1, 2]]))
    with pytest.raises(ValueError):
        oracle.perturb(np.array([], dtype=int))
